//! Cross-crate integration: full-system frames over calibrated Table II
//! workloads, asserting the paper's qualitative results hold end to end.

use tcor_common::TileGrid;
use tcor_energy::EnergyModel;
use tcor_sim::suite::run_benchmark;
use tcor_workloads::suite;

/// Runs two contrasting benchmarks: SoD (small PB, high re-use — large
/// TCOR wins) and DDS (PB far exceeding every cache — modest wins).
fn runs() -> Vec<tcor_sim::suite::BenchmarkRun> {
    let grid = TileGrid::new(1960, 768, 32);
    let all = suite();
    ["SoD", "DDS"]
        .iter()
        .map(|a| {
            let p = all.iter().find(|b| &b.alias == a).unwrap();
            run_benchmark(p, &grid)
        })
        .collect()
}

#[test]
fn tcor_reduces_every_traffic_metric() {
    for r in runs() {
        let alias = r.profile.alias;
        assert!(
            r.tcor64.pb_l2_accesses() < r.base64.pb_l2_accesses(),
            "{alias}: PB->L2"
        );
        assert!(
            r.tcor64.pb_mm_accesses() < r.base64.pb_mm_accesses(),
            "{alias}: PB->MM"
        );
        assert!(
            r.tcor64.total_mm_accesses() < r.base64.total_mm_accesses(),
            "{alias}: total MM"
        );
        assert!(
            r.tcor128.pb_l2_accesses() < r.base128.pb_l2_accesses(),
            "{alias}: PB->L2 (128K)"
        );
    }
}

#[test]
fn small_pb_benchmarks_eliminate_mm_traffic_like_the_paper() {
    let rs = runs();
    let sod = &rs[0];
    let dds = &rs[1];
    // Fig. 16: SoD's PB main-memory accesses go to zero; DDS's (1.8 MiB
    // PB vs a 1 MiB L2) cannot, but still drop by roughly half.
    assert_eq!(
        sod.tcor64.pb_mm_accesses(),
        0,
        "SoD eliminates PB MM traffic"
    );
    let dds_norm = dds.tcor64.pb_mm_accesses() as f64 / dds.base64.pb_mm_accesses() as f64;
    assert!(
        (0.25..0.85).contains(&dds_norm),
        "DDS normalized PB MM {dds_norm:.2} out of the paper's band (~0.5)"
    );
}

#[test]
fn tiling_engine_speedup_in_paper_band() {
    for r in runs() {
        let sp = r.tcor64.primitives_per_cycle() / r.base64.primitives_per_cycle();
        assert!(
            (1.5..12.0).contains(&sp),
            "{}: speedup {sp:.1} outside the paper's 3.0-9.6x band (loose)",
            r.profile.alias
        );
    }
}

#[test]
fn energy_ordering_baseline_ge_nol2_ge_tcor() {
    let model = EnergyModel::default();
    for r in runs() {
        let eb = model.evaluate(&r.base64).memory_hierarchy_pj();
        let en = model.evaluate(&r.tcor_nol2_64).memory_hierarchy_pj();
        let et = model.evaluate(&r.tcor64).memory_hierarchy_pj();
        assert!(
            et <= en && en <= eb,
            "{}: energy ordering violated ({eb:.3e} -> {en:.3e} -> {et:.3e})",
            r.profile.alias
        );
    }
}

#[test]
fn dead_drops_happen_only_with_the_l2_enhancement() {
    for r in runs() {
        assert_eq!(r.base64.dead_drops, 0);
        assert_eq!(r.tcor_nol2_64.dead_drops, 0);
        assert!(r.tcor64.dead_drops > 0, "{}", r.profile.alias);
    }
}

#[test]
fn traffic_conservation_across_levels() {
    // Main-memory reads of a region can never exceed the L2 read
    // accesses for it (reads reach MM only through L2 misses), and MM
    // writes cannot exceed L2 writes arriving plus L2 write-backs.
    use tcor_pbuf::Region;
    for r in runs() {
        for rep in [&r.base64, &r.tcor64] {
            for region in [Region::PbLists, Region::PbAttributes, Region::Textures] {
                let l2 = rep.l2_traffic.region(region);
                let mm = rep.mm_traffic.region(region);
                assert!(
                    mm.mm_reads <= l2.l2_reads,
                    "{} {:?} {:?}: mm reads {} > l2 reads {}",
                    r.profile.alias,
                    rep.system,
                    region,
                    mm.mm_reads,
                    l2.l2_reads
                );
            }
        }
    }
}

#[test]
fn identical_streams_identical_fetch_counts() {
    for r in runs() {
        let counts = [
            r.base64.prims_fetched,
            r.tcor_nol2_64.prims_fetched,
            r.tcor64.prims_fetched,
            r.base128.prims_fetched,
            r.tcor_nol2_128.prims_fetched,
            r.tcor128.prims_fetched,
        ];
        assert!(
            counts.iter().all(|&c| c == counts[0]),
            "{}: {counts:?}",
            r.profile.alias
        );
    }
}
