//! Integration test: the paper's worked example (§III.C.7, Figures 9–10)
//! reproduced state by state.
//!
//! 3 primitives, 9 tiles, a Tile Cache holding two primitives, scanline
//! traversal. The paper's narrative, asserted:
//!
//! 1. the first L2 write happens at the *third* PLB write — a dirty
//!    write-back for LRU, a **bypass** for OPT;
//! 2. OPT retains both early-use primitives through the writes, so the
//!    tile-0/1/2 reads hit where LRU misses;
//! 3. at the blue primitive's first read both miss, but OPT evicts the
//!    primitive that will never be used again.

use tcor::{AttributeCache, AttributeCacheConfig, ReadResult, WriteResult};
use tcor_cache::policy::Lru;
use tcor_cache::{AccessKind, AccessMeta, Cache, Indexing};
use tcor_common::{BlockAddr, CacheParams, PrimitiveId, TileGrid, TileId, Traversal};
use tcor_pbuf::BinnedFrame;

fn example_frame() -> (BinnedFrame, tcor_common::TraversalOrder) {
    let grid = TileGrid::new(96, 96, 32);
    let order = Traversal::Scanline.order(&grid);
    let t = |i: u32| TileId(i);
    let frame = BinnedFrame::new(
        &[
            (3, vec![t(0), t(3), t(6)]),
            (3, vec![t(1), t(2)]),
            (3, vec![t(4), t(5), t(7), t(8)]),
        ],
        &order,
    );
    (frame, order)
}

#[test]
fn third_write_is_writeback_for_lru_but_bypass_for_opt() {
    let (frame, _) = example_frame();
    let mut lru = Cache::new(
        CacheParams::new(128, 64, 0, 1),
        Indexing::Modulo,
        Lru::new(),
    );
    let mut opt = AttributeCache::new(AttributeCacheConfig {
        ways: 2,
        pb_lines: 2,
        ab_entries: 6,
        indexing: tcor_cache::Indexing::Xor,
        write_bypass: true,
    });

    for (i, p) in frame.primitives().iter().enumerate() {
        let lru_out = lru.access(
            BlockAddr(p.id.0 as u64),
            AccessKind::Write,
            AccessMeta::NONE,
        );
        let opt_out = opt.write(p.id, p.attr_count, p.first_use());
        if i < 2 {
            assert!(lru_out.evicted.is_none());
            assert_eq!(opt_out, WriteResult::Allocated { evicted: vec![] });
        } else {
            // Third write: LRU evicts a dirty line (L2 write-back)...
            let ev = lru_out.evicted.expect("LRU evicts on the third write");
            assert!(ev.dirty, "the evicted primitive was dirty");
            // ...whereas OPT bypasses because prim 2's first use (tile 4)
            // is later than both residents' (tiles 0 and 1).
            assert_eq!(opt_out, WriteResult::Bypassed);
        }
    }
    // OPT retained both early primitives.
    assert!(opt.contains(PrimitiveId(0)));
    assert!(opt.contains(PrimitiveId(1)));
}

#[test]
fn opt_avoids_lru_rereads_and_evicts_dead_primitives() {
    let (frame, order) = example_frame();
    let mut lru = Cache::new(
        CacheParams::new(128, 64, 0, 1),
        Indexing::Modulo,
        Lru::new(),
    );
    let mut opt = AttributeCache::new(AttributeCacheConfig {
        ways: 2,
        pb_lines: 2,
        ab_entries: 6,
        indexing: tcor_cache::Indexing::Xor,
        write_bypass: true,
    });
    for p in frame.primitives() {
        lru.access(
            BlockAddr(p.id.0 as u64),
            AccessKind::Write,
            AccessMeta::NONE,
        );
        let _ = opt.write(p.id, p.attr_count, p.first_use());
    }

    let mut lru_read_misses = 0u32;
    let mut opt_read_misses = 0u32;
    let mut opt_dead_evictions = 0u32;
    for tile in order.iter() {
        for &prim in frame.tile_list(tile) {
            let p = frame.primitive(prim);
            if !lru
                .access(BlockAddr(prim.0 as u64), AccessKind::Read, AccessMeta::NONE)
                .hit
            {
                lru_read_misses += 1;
            }
            match opt.read(prim, p.attr_count, p.next_use_after(order.rank_of(tile))) {
                ReadResult::Hit => {}
                ReadResult::Miss { evicted } => {
                    opt_read_misses += 1;
                    // Fig. 10: OPT evicts the yellow primitive (P1),
                    // "which will never be accessed again".
                    for e in &evicted {
                        if frame.primitive(e.prim).last_use() < order.rank_of(tile) {
                            opt_dead_evictions += 1;
                        }
                    }
                }
                ReadResult::Stalled => panic!("no stalls in the example"),
            }
            opt.unlock(prim);
        }
    }

    // The paper's example: OPT misses only the blue primitive's first
    // read (a compulsory miss after the bypass); LRU re-misses the
    // primitives it threw away.
    assert_eq!(opt_read_misses, 1);
    assert!(lru_read_misses > opt_read_misses);
    assert_eq!(opt_dead_evictions, 1, "OPT evicted the dead primitive");
}

#[test]
fn opt_numbers_in_the_example_match_the_figure() {
    let (frame, order) = example_frame();
    let p0 = frame.primitive(PrimitiveId(0));
    let p2 = frame.primitive(PrimitiveId(2));
    // Fig. 10's OPT column: after tile 0 reads P0, its OPT number is 3;
    // after tile 3 it is 6; after tile 6 it is "." (never).
    assert_eq!(p0.next_use_after(order.rank_of(TileId(0))).value(), 3);
    assert_eq!(p0.next_use_after(order.rank_of(TileId(3))).value(), 6);
    assert!(p0.next_use_after(order.rank_of(TileId(6))).is_never());
    // P2's write carries OPT number 4 (its first tile).
    assert_eq!(p2.first_use().value(), 4);
}
