//! Multi-frame steady-state sessions: the persistent-L2 ground truth the
//! one-shot `warm_l2` approximation stands in for.
//!
//! An animated sequence runs through [`BaselineSession`] /
//! [`TcorSession`]; after the cold first frame, each report covers one
//! steady-state frame. The paper's qualitative results must hold frame
//! after frame, and the one-shot model must agree with the steady state
//! on the headline directions.

use tcor::{BaselineSession, BaselineSystem, SystemConfig, TcorSession, TcorSystem};
use tcor_common::TileGrid;
use tcor_workloads::{suite, Animation};

fn profile(alias: &str) -> tcor_workloads::BenchmarkProfile {
    suite().into_iter().find(|b| b.alias == alias).unwrap()
}

#[test]
fn steady_state_preserves_the_paper_orderings() {
    let grid = TileGrid::new(1960, 768, 32);
    let p = profile("SoD");
    let anim = Animation::new(&p, &grid);
    let rp = p.raster_params();
    let mut base = BaselineSession::new(SystemConfig::paper_baseline_64k().with_raster(rp));
    let mut tcor = TcorSession::new(SystemConfig::paper_tcor_64k().with_raster(rp));

    for f in 0..4 {
        let scene = anim.frame(&grid, f as f64);
        let rb = base.run_frame(&scene);
        let rt = tcor.run_frame(&scene);
        if f == 0 {
            continue; // cold frame: both systems warm up
        }
        assert!(
            rt.pb_l2_accesses() < rb.pb_l2_accesses(),
            "frame {f}: PB L2 {} vs {}",
            rt.pb_l2_accesses(),
            rb.pb_l2_accesses()
        );
        assert!(
            rt.pb_mm_accesses() <= rb.pb_mm_accesses(),
            "frame {f}: PB MM {} vs {}",
            rt.pb_mm_accesses(),
            rb.pb_mm_accesses()
        );
        assert!(
            rt.primitives_per_cycle() > rb.primitives_per_cycle(),
            "frame {f}: throughput"
        );
    }
}

#[test]
fn warm_start_approximates_steady_state_fills() {
    // The one-shot model's warm L2 exists to approximate the steady
    // state's "previous frame still resident" effect. Compare PB L2 reads
    // (which include partial-write fills) between (a) the second frame of
    // a static-scene session and (b) a one-shot warm run.
    let grid = TileGrid::new(1960, 768, 32);
    let p = profile("CCS");
    let anim = Animation::new(&p, &grid);
    let scene = anim.frame(&grid, 0.0);
    let rp = p.raster_params();

    let mut session = TcorSession::new(SystemConfig::paper_tcor_64k().with_raster(rp));
    session.run_frame(&scene); // cold
    let steady = session.run_frame(&scene); // steady state, same scene
    let oneshot = TcorSystem::new(SystemConfig::paper_tcor_64k().with_raster(rp)).run_frame(&scene);

    // The one-shot warm model fully absorbs PB fills; the steady state
    // keeps a small residue — partial-write fills of blocks whose dead
    // lines were evicted by texture traffic during the previous frame
    // (reads of dead data the write then overwrites; see DESIGN.md).
    assert_eq!(
        oneshot.pb_mm_reads(),
        0,
        "warm one-shot PB fills hit the L2"
    );
    let base_ref =
        BaselineSystem::new(SystemConfig::paper_baseline_64k().with_raster(rp)).run_frame(&scene);
    assert!(
        steady.pb_mm_accesses() * 5 < base_ref.pb_mm_accesses(),
        "steady-state residue {} should stay far below baseline {}",
        steady.pb_mm_accesses(),
        base_ref.pb_mm_accesses()
    );
    // And the PB L2 access counts should agree within 25%.
    let a = steady.pb_l2_accesses() as f64;
    let b = oneshot.pb_l2_accesses() as f64;
    let rel = (a - b).abs() / a.max(b);
    assert!(rel < 0.25, "steady {a} vs one-shot {b}: {rel:.2} apart");
}

#[test]
fn session_counters_cover_exactly_one_frame() {
    let grid = TileGrid::new(1960, 768, 32);
    let p = profile("GTr");
    let anim = Animation::new(&p, &grid);
    let scene = anim.frame(&grid, 0.0);
    let rp = p.raster_params();
    let mut session = BaselineSession::new(SystemConfig::paper_baseline_64k().with_raster(rp));
    let first = session.run_frame(&scene);
    let second = session.run_frame(&scene);
    // Same work per frame...
    assert_eq!(first.prims_fetched, second.prims_fetched);
    // ...but the steady frame sees fewer misses than the cold one, and
    // counters were reset (not accumulated).
    assert!(second.total_mm_accesses() < first.total_mm_accesses());
    assert!(second.pb_l2_accesses() <= first.pb_l2_accesses());
}

#[test]
fn steady_state_tcor_still_eliminates_pb_dram_traffic() {
    let grid = TileGrid::new(1960, 768, 32);
    // Small-PB benchmarks: the paper's Fig. 16 "100%" rows must persist
    // in the steady state.
    for alias in ["SoD", "GTr"] {
        let p = profile(alias);
        let anim = Animation::new(&p, &grid);
        let rp = p.raster_params();
        let mut tcor = TcorSession::new(SystemConfig::paper_tcor_64k().with_raster(rp));
        let mut base = BaselineSession::new(SystemConfig::paper_baseline_64k().with_raster(rp));
        for f in 0..3 {
            let scene = anim.frame(&grid, f as f64);
            let r = tcor.run_frame(&scene);
            let b = base.run_frame(&scene);
            if f > 0 {
                // Near-elimination: only the dead-line fill residue
                // remains (no PB *write* ever reaches DRAM).
                assert_eq!(r.pb_mm_writes(), 0, "{alias} frame {f}");
                assert!(
                    r.pb_mm_accesses() * 4 < b.pb_mm_accesses(),
                    "{alias} frame {f}: {} vs baseline {}",
                    r.pb_mm_accesses(),
                    b.pb_mm_accesses()
                );
            }
        }
    }
}

#[test]
fn one_shot_equals_first_session_frame_when_warm_disabled() {
    let grid = TileGrid::new(1960, 768, 32);
    let p = profile("GTr");
    let scene = Animation::new(&p, &grid).frame(&grid, 0.0);
    let mut cfg = SystemConfig::paper_baseline_64k().with_raster(p.raster_params());
    cfg.warm_l2 = false;
    let oneshot = BaselineSystem::new(cfg.clone()).run_frame(&scene);
    let mut session = BaselineSession::new(cfg);
    let first = session.run_frame(&scene);
    // Identical inputs, identical cold state -> identical L2-level
    // traffic (the one-shot end-of-frame drain differs only at DRAM).
    assert_eq!(oneshot.pb_l2_accesses(), first.pb_l2_accesses());
    assert_eq!(oneshot.l2_stats.misses(), first.l2_stats.misses());
    assert_eq!(oneshot.fetch_cycles, first.fetch_cycles);
}
