//! End-to-end over the full 3D path: world-space geometry through the
//! Vertex Stage transform, exact SAT binning, and both Tile Cache
//! organizations.

use tcor::{BaselineSystem, SystemConfig, TcorSystem};
use tcor_common::{TileGrid, Traversal};
use tcor_gpu::{bin_scene_with, transform_scene, Mat4, OverlapTest, Scene, Vec3, WorldPrimitive};

/// A grid of ground-plane quads receding toward the horizon.
fn world() -> Vec<WorldPrimitive> {
    let mut prims = Vec::new();
    for gz in 0..20 {
        for gx in -10..10 {
            let (x0, z0) = (gx as f32, -(gz as f32) - 1.0);
            let quad = [
                Vec3::new(x0, 0.0, z0),
                Vec3::new(x0 + 1.0, 0.0, z0),
                Vec3::new(x0 + 1.0, 0.0, z0 - 1.0),
                Vec3::new(x0, 0.0, z0 - 1.0),
            ];
            prims.push(WorldPrimitive {
                v: [quad[0], quad[1], quad[2]],
                attr_count: 3,
            });
            prims.push(WorldPrimitive {
                v: [quad[0], quad[2], quad[3]],
                attr_count: 3,
            });
        }
    }
    prims
}

fn camera(w: f32, h: f32) -> Mat4 {
    let proj = Mat4::perspective(std::f32::consts::FRAC_PI_3, w / h, 0.1, 200.0);
    let view = Mat4::look_at(
        Vec3::new(0.0, 2.0, 2.0),
        Vec3::new(0.0, 0.0, -10.0),
        Vec3::new(0.0, 1.0, 0.0),
    );
    proj.mul(&view)
}

fn screen_scene() -> Scene {
    let (w, h) = (1960.0, 768.0);
    transform_scene(&world(), &camera(w, h), w, h)
}

#[test]
fn transform_produces_perspective_structure() {
    let scene = screen_scene();
    assert!(scene.len() > 100, "most of the ground plane is visible");
    assert!(scene.len() <= world().len());
    // Perspective: triangles vary in size (near ones much larger).
    let mut areas: Vec<f32> = scene.primitives().iter().map(|p| p.tri.area()).collect();
    areas.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(
        areas[areas.len() - 1] > 10.0 * areas[0].max(1e-3),
        "no perspective size variation"
    );
}

#[test]
fn exact_binning_reduces_pmds_on_projected_geometry() {
    let grid = TileGrid::new(1960, 768, 32);
    let order = Traversal::ZOrder.order(&grid);
    let scene = screen_scene();
    let bbox = bin_scene_with(&scene, &grid, &order, OverlapTest::BoundingBox);
    let exact = bin_scene_with(&scene, &grid, &order, OverlapTest::Exact);
    // Projected ground quads are skewed triangles: the exact test must
    // strictly reduce the binned pairs.
    assert!(exact.binned.total_pmds() < bbox.binned.total_pmds());
    assert_eq!(exact.binned.num_primitives(), bbox.binned.num_primitives());
}

#[test]
fn tcor_wins_on_projected_3d_geometry_with_exact_binning() {
    let scene = screen_scene();
    let mut base_cfg = SystemConfig::paper_baseline_64k();
    base_cfg.overlap_test = OverlapTest::Exact;
    let mut tcor_cfg = SystemConfig::paper_tcor_64k();
    tcor_cfg.overlap_test = OverlapTest::Exact;
    let base = BaselineSystem::new(base_cfg).run_frame(&scene);
    let tcor = TcorSystem::new(tcor_cfg).run_frame(&scene);
    assert_eq!(base.prims_fetched, tcor.prims_fetched);
    assert!(tcor.pb_l2_accesses() < base.pb_l2_accesses());
    assert!(tcor.primitives_per_cycle() > base.primitives_per_cycle());
}
