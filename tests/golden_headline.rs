//! Golden-result regression, tier 1: the abstract's headline numbers
//! must match the committed goldens bit-for-bit.
//!
//! The goldens live under `results/golden/` with an fxhash64 manifest;
//! re-record them (after an intentional change) with
//! `cargo run --release -p tcor-sim -- all --update-golden`.

use tcor_runner::{ArtifactStore, GoldenStatus, GoldenStore, Telemetry};
use tcor_sim::orchestrate::ExecMode;
use tcor_sim::run_experiments_strict;

#[test]
fn headline_matches_committed_golden() {
    let golden = GoldenStore::new(concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden"));
    let store = ArtifactStore::new();
    let telemetry = Telemetry::new();
    let ids = vec!["headline".to_string()];
    let workers = tcor_runner::default_workers();
    let results = run_experiments_strict(&ids, ExecMode::Parallel(workers), &store, &telemetry)
        .expect("headline is a valid id and must complete");
    let table = &results[0].1[0];
    match golden.check("headline", &table.to_csv()) {
        GoldenStatus::Match => {}
        GoldenStatus::Missing => panic!(
            "no golden recorded; run `cargo run --release -p tcor-sim -- all --update-golden`"
        ),
        GoldenStatus::Corrupt => {
            panic!(
                "results/golden/headline.csv does not match MANIFEST.txt — golden edited by hand?"
            )
        }
        GoldenStatus::Mismatch { diffs, total } => {
            let first = &diffs[0];
            panic!(
                "headline drifted from the golden on {total} line(s); first at line {}:\n  \
                 golden:  {}\n  current: {}",
                first.line, first.expected, first.actual
            )
        }
    }
}
