//! Cross-crate property tests: the paper's analytical invariants must
//! hold on arbitrary generated frames, not just the calibrated suite.

use tcor_cache::profile::{opt_misses, LruStackProfiler};
use tcor_common::{SmallRng, TileGrid, TileId, Traversal};
use tcor_pbuf::BinnedFrame;
use tcor_workloads::trace::{lower_bound_misses, primitive_trace};

const CASES: usize = 128;

/// A random binned frame on an 8x8-tile screen (seeded local PRNG — the
/// retired proptest strategy, deterministic).
fn random_frame(rng: &mut SmallRng) -> BinnedFrame {
    let grid = TileGrid::new(256, 256, 32);
    let order = Traversal::ZOrder.order(&grid);
    let prims: Vec<(u8, Vec<TileId>)> = (0..rng.random_range(1..40usize))
        .map(|_| {
            let attrs = rng.random_range(1..6u32) as u8;
            let tiles: Vec<TileId> = (0..rng.random_range(1..6usize))
                .map(|_| TileId(rng.random_range(0..64u32)))
                .collect();
            (attrs, tiles)
        })
        .collect();
    BinnedFrame::new(&prims, &order)
}

/// §V.A's lower bound really lower-bounds OPT (hence every policy)
/// at every capacity, on every frame.
#[test]
fn lower_bound_holds() {
    let mut rng = SmallRng::seed_from_u64(0xF00D_0001);
    for _case in 0..CASES {
        let frame = random_frame(&mut rng);
        let cap = rng.random_range(1..64usize);
        let grid = TileGrid::new(256, 256, 32);
        let order = Traversal::ZOrder.order(&grid);
        let trace = primitive_trace(&frame, &order);
        let lb = lower_bound_misses(frame.num_primitives(), cap);
        let opt = opt_misses(&trace, cap);
        assert!(lb <= opt, "LB {lb} > OPT {opt} at capacity {cap}");
    }
}

/// Belady's optimality over the PB stream: OPT ≤ LRU at every
/// capacity (fully associative).
#[test]
fn opt_never_worse_than_lru() {
    let mut rng = SmallRng::seed_from_u64(0xF00D_0002);
    for _case in 0..CASES {
        let frame = random_frame(&mut rng);
        let grid = TileGrid::new(256, 256, 32);
        let order = Traversal::ZOrder.order(&grid);
        let trace = primitive_trace(&frame, &order);
        let mut prof = LruStackProfiler::new();
        for a in &trace {
            prof.record(a.addr);
        }
        for cap in [1usize, 2, 4, 8, 16, 32] {
            assert!(opt_misses(&trace, cap) <= prof.misses_at(cap));
        }
    }
}

/// With capacity for every primitive, misses are exactly the
/// compulsory writes (TP) under OPT — the LB's flat region.
#[test]
fn compulsory_only_at_full_capacity() {
    let mut rng = SmallRng::seed_from_u64(0xF00D_0003);
    for _case in 0..CASES {
        let frame = random_frame(&mut rng);
        let grid = TileGrid::new(256, 256, 32);
        let order = Traversal::ZOrder.order(&grid);
        let trace = primitive_trace(&frame, &order);
        let tp = frame.num_primitives();
        assert_eq!(opt_misses(&trace, tp.max(1)), tp as u64);
    }
}

/// Every PMD the Polygon List Builder writes is read exactly once by
/// the Tile Fetcher: reads in the trace equal total binned pairs.
#[test]
fn trace_access_counts() {
    let mut rng = SmallRng::seed_from_u64(0xF00D_0004);
    for _case in 0..CASES {
        let frame = random_frame(&mut rng);
        let grid = TileGrid::new(256, 256, 32);
        let order = Traversal::ZOrder.order(&grid);
        let trace = primitive_trace(&frame, &order);
        let writes = trace.iter().filter(|a| a.kind.is_write()).count();
        let reads = trace.len() - writes;
        assert_eq!(writes, frame.num_primitives());
        assert_eq!(reads, frame.total_pmds());
    }
}

/// OPT numbers are consistent: walking a primitive's uses through
/// `next_use_after` visits exactly its tile ranks in order.
#[test]
fn opt_number_chain_visits_all_uses() {
    let mut rng = SmallRng::seed_from_u64(0xF00D_0005);
    for _case in 0..CASES {
        let frame = random_frame(&mut rng);
        for p in frame.primitives() {
            let mut visited = vec![p.first_use()];
            loop {
                let next = p.next_use_after(*visited.last().unwrap());
                if next.is_never() {
                    break;
                }
                visited.push(next);
            }
            assert_eq!(&visited, &p.tile_ranks);
        }
    }
}

/// The TCOR attribute cache never reports more resident attributes than
/// its buffer holds, across random operation sequences.
#[test]
fn attribute_cache_capacity_respected_under_churn() {
    use tcor::{AttributeCache, AttributeCacheConfig, ReadResult};
    use tcor_common::{PrimitiveId, TileRank};

    let cfg = AttributeCacheConfig {
        ways: 4,
        pb_lines: 16,
        ab_entries: 32,
        indexing: tcor_cache::Indexing::Xor,
        write_bypass: true,
    };
    let mut c = AttributeCache::new(cfg);
    let mut queued: Vec<PrimitiveId> = Vec::new();
    for i in 0..500u32 {
        let prim = PrimitiveId(i % 97);
        let attrs = 1 + (i % 5) as u8;
        if i % 3 == 0 && !c.contains(prim) {
            let _ = c.write(prim, attrs, TileRank(i % 40));
        } else {
            match c.read(prim, attrs, TileRank(i % 40 + 1)) {
                ReadResult::Stalled => {
                    for q in queued.drain(..) {
                        c.unlock(q);
                    }
                }
                _ => queued.push(prim),
            }
            if queued.len() > 8 {
                c.unlock(queued.remove(0));
            }
        }
        assert!(c.free_entries() <= cfg.ab_entries);
        assert!(c.resident_primitives() <= cfg.pb_lines);
    }
    c.drain();
    assert_eq!(c.free_entries(), cfg.ab_entries);
}
