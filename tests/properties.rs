//! Cross-crate property tests: the paper's analytical invariants must
//! hold on arbitrary generated frames, not just the calibrated suite.

use proptest::prelude::*;
use tcor_cache::profile::{opt_misses, LruStackProfiler};
use tcor_common::{TileGrid, TileId, Traversal};
use tcor_pbuf::BinnedFrame;
use tcor_workloads::trace::{lower_bound_misses, primitive_trace};

/// Strategy: a random binned frame on a 8x8-tile screen.
fn arb_frame() -> impl Strategy<Value = BinnedFrame> {
    let prim = (1u8..=5, proptest::collection::vec(0u32..64, 1..6));
    proptest::collection::vec(prim, 1..40).prop_map(|prims| {
        let grid = TileGrid::new(256, 256, 32);
        let order = Traversal::ZOrder.order(&grid);
        let prims: Vec<(u8, Vec<TileId>)> = prims
            .into_iter()
            .map(|(a, ts)| (a, ts.into_iter().map(TileId).collect()))
            .collect();
        BinnedFrame::new(&prims, &order)
    })
}

proptest! {
    /// §V.A's lower bound really lower-bounds OPT (hence every policy)
    /// at every capacity, on every frame.
    #[test]
    fn lower_bound_holds(frame in arb_frame(), cap in 1usize..64) {
        let grid = TileGrid::new(256, 256, 32);
        let order = Traversal::ZOrder.order(&grid);
        let trace = primitive_trace(&frame, &order);
        let lb = lower_bound_misses(frame.num_primitives(), cap);
        let opt = opt_misses(&trace, cap);
        prop_assert!(lb <= opt, "LB {lb} > OPT {opt} at capacity {cap}");
    }

    /// Belady's optimality over the PB stream: OPT ≤ LRU at every
    /// capacity (fully associative).
    #[test]
    fn opt_never_worse_than_lru(frame in arb_frame()) {
        let grid = TileGrid::new(256, 256, 32);
        let order = Traversal::ZOrder.order(&grid);
        let trace = primitive_trace(&frame, &order);
        let mut prof = LruStackProfiler::new();
        for a in &trace {
            prof.record(a.addr);
        }
        for cap in [1usize, 2, 4, 8, 16, 32] {
            prop_assert!(opt_misses(&trace, cap) <= prof.misses_at(cap));
        }
    }

    /// With capacity for every primitive, misses are exactly the
    /// compulsory writes (TP) under OPT — the LB's flat region.
    #[test]
    fn compulsory_only_at_full_capacity(frame in arb_frame()) {
        let grid = TileGrid::new(256, 256, 32);
        let order = Traversal::ZOrder.order(&grid);
        let trace = primitive_trace(&frame, &order);
        let tp = frame.num_primitives();
        prop_assert_eq!(opt_misses(&trace, tp.max(1)), tp as u64);
    }

    /// Every PMD the Polygon List Builder writes is read exactly once by
    /// the Tile Fetcher: reads in the trace equal total binned pairs.
    #[test]
    fn trace_access_counts(frame in arb_frame()) {
        let grid = TileGrid::new(256, 256, 32);
        let order = Traversal::ZOrder.order(&grid);
        let trace = primitive_trace(&frame, &order);
        let writes = trace.iter().filter(|a| a.kind.is_write()).count();
        let reads = trace.len() - writes;
        prop_assert_eq!(writes, frame.num_primitives());
        prop_assert_eq!(reads, frame.total_pmds());
    }

    /// OPT numbers are consistent: walking a primitive's uses through
    /// `next_use_after` visits exactly its tile ranks in order.
    #[test]
    fn opt_number_chain_visits_all_uses(frame in arb_frame()) {
        for p in frame.primitives() {
            let mut visited = vec![p.first_use()];
            loop {
                let next = p.next_use_after(*visited.last().unwrap());
                if next.is_never() {
                    break;
                }
                visited.push(next);
            }
            prop_assert_eq!(&visited, &p.tile_ranks);
        }
    }
}

/// The TCOR attribute cache never reports more resident attributes than
/// its buffer holds, across random operation sequences.
#[test]
fn attribute_cache_capacity_respected_under_churn() {
    use tcor::{AttributeCache, AttributeCacheConfig, ReadResult};
    use tcor_common::{PrimitiveId, TileRank};

    let cfg = AttributeCacheConfig {
        ways: 4,
        pb_lines: 16,
        ab_entries: 32,
        indexing: tcor_cache::Indexing::Xor,
        write_bypass: true,
    };
    let mut c = AttributeCache::new(cfg);
    let mut queued: Vec<PrimitiveId> = Vec::new();
    for i in 0..500u32 {
        let prim = PrimitiveId(i % 97);
        let attrs = 1 + (i % 5) as u8;
        if i % 3 == 0 && !c.contains(prim) {
            let _ = c.write(prim, attrs, TileRank(i % 40));
        } else {
            match c.read(prim, attrs, TileRank(i % 40 + 1)) {
                ReadResult::Stalled => {
                    for q in queued.drain(..) {
                        c.unlock(q);
                    }
                }
                _ => queued.push(prim),
            }
            if queued.len() > 8 {
                c.unlock(queued.remove(0));
            }
        }
        assert!(c.free_entries() <= cfg.ab_entries);
        assert!(c.resident_primitives() <= cfg.pb_lines);
    }
    c.drain();
    assert_eq!(c.free_entries(), cfg.ab_entries);
}
