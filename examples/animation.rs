//! Animated-sequence study: run several consecutive frames of a moving
//! scene and watch the per-frame metrics — the setting the paper's
//! abstract describes ("a set of representative animated graphics
//! applications").
//!
//! ```text
//! cargo run --release --example animation            # Snp, 8 frames
//! cargo run --release --example animation -- CCS 16
//! ```

use tcor::{BaselineSystem, SystemConfig, TcorSystem};
use tcor_common::TileGrid;
use tcor_energy::EnergyModel;
use tcor_workloads::{suite, Animation};

fn main() {
    let mut args = std::env::args().skip(1);
    let alias = args.next().unwrap_or_else(|| "Snp".to_string());
    let frames: usize = args.next().map(|n| n.parse().expect("frames")).unwrap_or(8);
    let Some(profile) = suite().into_iter().find(|b| b.alias == alias) else {
        eprintln!("unknown benchmark `{alias}`");
        std::process::exit(1);
    };

    let grid = TileGrid::new(1960, 768, 32);
    let anim = Animation::new(&profile, &grid);
    let rp = profile.raster_params();
    let model = EnergyModel::default();

    println!(
        "{} ({alias}): {frames} animated frames, objects drifting a few px/frame\n",
        profile.name
    );
    println!(
        "{:>5}{:>14}{:>14}{:>12}{:>12}{:>10}",
        "frame", "base PB->MM", "tcor PB->MM", "base fps", "tcor fps", "fps gain"
    );
    let (mut sum_base_fps, mut sum_tcor_fps) = (0.0f64, 0.0f64);
    for f in 0..frames {
        let scene = anim.frame(&grid, f as f64);
        let base = BaselineSystem::new(SystemConfig::paper_baseline_64k().with_raster(rp))
            .run_frame(&scene);
        let tcor =
            TcorSystem::new(SystemConfig::paper_tcor_64k().with_raster(rp)).run_frame(&scene);
        let fb = model.evaluate(&base).fps(600_000_000);
        let ft = model.evaluate(&tcor).fps(600_000_000);
        sum_base_fps += fb;
        sum_tcor_fps += ft;
        println!(
            "{f:>5}{:>14}{:>14}{fb:>12.1}{ft:>12.1}{:>9.1}%",
            base.pb_mm_accesses(),
            tcor.pb_mm_accesses(),
            (ft / fb - 1.0) * 100.0
        );
    }
    println!(
        "\nsequence average FPS: baseline {:.1}, TCOR {:.1} ({:+.1}%)",
        sum_base_fps / frames as f64,
        sum_tcor_fps / frames as f64,
        (sum_tcor_fps / sum_base_fps - 1.0) * 100.0
    );
}
