//! Quickstart: simulate one frame through the baseline GPU and through
//! TCOR, and print what the paper's evaluation measures.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tcor::{BaselineSystem, SystemConfig, TcorSystem};
use tcor_common::Tri2;
use tcor_gpu::{Scene, ScenePrimitive};

fn main() {
    // A simple synthetic frame: 200 screen-space objects of 10 triangles
    // each, scattered over the 1960x768 screen. Real suites come from
    // `tcor_workloads`; this shows the raw API.
    let mut scene = Scene::new();
    for obj in 0..200u32 {
        let ox = (obj as f32 * 173.0) % 1800.0;
        let oy = (obj as f32 * 101.0) % 700.0;
        for t in 0..10u32 {
            let x = ox + (t % 5) as f32 * 20.0;
            let y = oy + (t / 5) as f32 * 20.0;
            scene.push(ScenePrimitive {
                tri: Tri2::new((x, y), (x + 40.0, y), (x, y + 40.0)),
                attr_count: 3,
            });
        }
    }

    let baseline = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&scene);
    let tcor = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&scene);

    println!("frame: {} primitives binned", baseline.num_primitives);
    println!();
    println!("{:<38}{:>12}{:>12}", "metric", "baseline", "TCOR");
    println!("{}", "-".repeat(62));
    let row = |name: &str, b: String, t: String| println!("{name:<38}{b:>12}{t:>12}");
    row(
        "PB accesses to L2",
        baseline.pb_l2_accesses().to_string(),
        tcor.pb_l2_accesses().to_string(),
    );
    row(
        "PB accesses to main memory",
        baseline.pb_mm_accesses().to_string(),
        tcor.pb_mm_accesses().to_string(),
    );
    row(
        "total main-memory accesses",
        baseline.total_mm_accesses().to_string(),
        tcor.total_mm_accesses().to_string(),
    );
    row(
        "tile fetcher primitives/cycle",
        format!("{:.3}", baseline.primitives_per_cycle()),
        format!("{:.3}", tcor.primitives_per_cycle()),
    );
    row(
        "dead L2 lines dropped (no write-back)",
        baseline.dead_drops.to_string(),
        tcor.dead_drops.to_string(),
    );
    println!();
    println!(
        "tiling engine speedup: {:.1}x",
        tcor.primitives_per_cycle() / baseline.primitives_per_cycle().max(1e-12)
    );
}
