//! A true 3D scene through the full pipeline: a ring of meshes orbited by
//! the camera, transformed by the Vertex Stage (`tcor_gpu::transform`),
//! binned, and run through both Tile Cache organizations frame by frame.
//!
//! ```text
//! cargo run --release --example camera_orbit            # 6 frames
//! cargo run --release --example camera_orbit -- 12
//! ```

use tcor::{BaselineSession, SystemConfig, TcorSession};
use tcor_gpu::{transform_scene, Mat4, Vec3, WorldPrimitive};

/// A ring of simple pyramid meshes around the origin.
fn world() -> Vec<WorldPrimitive> {
    let mut prims = Vec::new();
    for i in 0..24 {
        let angle = i as f32 / 24.0 * std::f32::consts::TAU;
        let (cx, cz) = (angle.cos() * 6.0, angle.sin() * 6.0);
        let apex = Vec3::new(cx, 1.0, cz);
        let base = [
            Vec3::new(cx - 0.7, -0.5, cz - 0.7),
            Vec3::new(cx + 0.7, -0.5, cz - 0.7),
            Vec3::new(cx + 0.7, -0.5, cz + 0.7),
            Vec3::new(cx - 0.7, -0.5, cz + 0.7),
        ];
        for k in 0..4 {
            prims.push(WorldPrimitive {
                v: [base[k], base[(k + 1) % 4], apex],
                attr_count: 3,
            });
        }
        prims.push(WorldPrimitive {
            v: [base[0], base[1], base[2]],
            attr_count: 2,
        });
        prims.push(WorldPrimitive {
            v: [base[0], base[2], base[3]],
            attr_count: 2,
        });
    }
    prims
}

fn main() {
    let frames: usize = std::env::args()
        .nth(1)
        .map(|n| n.parse().expect("frames"))
        .unwrap_or(6);
    let (w, h) = (1960.0f32, 768.0f32);
    let proj = Mat4::perspective(std::f32::consts::FRAC_PI_3, w / h, 0.1, 100.0);
    let prims = world();

    let mut base = BaselineSession::new(SystemConfig::paper_baseline_64k());
    let mut tcor = TcorSession::new(SystemConfig::paper_tcor_64k());

    println!("orbiting camera around {} world triangles\n", prims.len());
    println!(
        "{:>5}{:>10}{:>12}{:>12}{:>10}{:>10}",
        "frame", "visible", "base PB-L2", "tcor PB-L2", "base ppc", "tcor ppc"
    );
    for f in 0..frames {
        let angle = f as f32 / frames as f32 * std::f32::consts::TAU;
        let eye = Vec3::new(angle.cos() * 12.0, 3.0, angle.sin() * 12.0);
        let view = Mat4::look_at(eye, Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let mvp = proj.mul(&view);
        let scene = transform_scene(&prims, &mvp, w, h);

        let rb = base.run_frame(&scene);
        let rt = tcor.run_frame(&scene);
        println!(
            "{f:>5}{:>10}{:>12}{:>12}{:>10.3}{:>10.3}",
            scene.len(),
            rb.pb_l2_accesses(),
            rt.pb_l2_accesses(),
            rb.primitives_per_cycle(),
            rt.primitives_per_cycle(),
        );
    }
    println!("\nthe Vertex Stage culls back-ring meshes as the camera orbits;");
    println!("TCOR's advantage holds frame over frame on live 3D geometry.");
}
