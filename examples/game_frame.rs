//! Run one Table II benchmark end to end through all six configurations
//! ({baseline, TCOR w/o L2 enhancements, TCOR} × {64 KiB, 128 KiB}) and
//! print every measured quantity.
//!
//! ```text
//! cargo run --release --example game_frame            # defaults to CCS
//! cargo run --release --example game_frame -- DDS     # Table II alias
//! ```

use tcor_common::TileGrid;
use tcor_energy::EnergyModel;
use tcor_sim::suite::run_benchmark;
use tcor_workloads::suite;

fn main() {
    let alias = std::env::args().nth(1).unwrap_or_else(|| "CCS".to_string());
    let Some(profile) = suite().into_iter().find(|b| b.alias == alias) else {
        eprintln!(
            "unknown benchmark `{alias}`; choose one of: {}",
            suite()
                .iter()
                .map(|b| b.alias)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };

    println!(
        "{} ({}) — {} / {}, PB footprint target {:.2} MiB, re-use target {:.1}",
        profile.name,
        profile.alias,
        profile.genre,
        if profile.is_3d { "3D" } else { "2D" },
        profile.pb_footprint_mib,
        profile.avg_reuse
    );

    let grid = TileGrid::new(1960, 768, 32);
    let run = run_benchmark(&profile, &grid);
    println!(
        "synthesized: {} primitives, measured footprint {:.2} MiB, measured re-use {:.1}\n",
        run.base64.num_primitives,
        run.measured_footprint_bytes as f64 / 1048576.0,
        run.measured_reuse
    );

    let model = EnergyModel::default();
    let configs = [
        ("baseline 64KiB", &run.base64),
        ("tcor-noL2 64KiB", &run.tcor_nol2_64),
        ("tcor 64KiB", &run.tcor64),
        ("baseline 128KiB", &run.base128),
        ("tcor-noL2 128KiB", &run.tcor_nol2_128),
        ("tcor 128KiB", &run.tcor128),
    ];
    println!(
        "{:<18}{:>9}{:>9}{:>10}{:>8}{:>10}{:>11}{:>8}",
        "config", "PB->L2", "PB->MM", "total MM", "PPC", "deaddrop", "mem nJ", "fps"
    );
    println!("{}", "-".repeat(83));
    for (name, r) in configs {
        let e = model.evaluate(r);
        println!(
            "{:<18}{:>9}{:>9}{:>10}{:>8.3}{:>10}{:>11.0}{:>8.1}",
            name,
            r.pb_l2_accesses(),
            r.pb_mm_accesses(),
            r.total_mm_accesses(),
            r.primitives_per_cycle(),
            r.dead_drops,
            e.memory_hierarchy_pj() / 1000.0,
            e.fps(600_000_000),
        );
    }
}
