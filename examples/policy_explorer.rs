//! Explore replacement policies on a Table II workload's Parameter
//! Buffer stream: every policy in the toolbox, across cache sizes, with
//! the paper's lower bound — Figure 13 generalized.
//!
//! ```text
//! cargo run --release --example policy_explorer              # CCS, 4-way
//! cargo run --release --example policy_explorer -- SoD 8     # alias, ways
//! ```

use tcor_cache::policy::{by_name, Opt};
use tcor_cache::profile::simulate_policy;
use tcor_cache::Indexing;
use tcor_common::{CacheParams, TileGrid, Traversal};
use tcor_gpu::bin_scene;
use tcor_workloads::trace::lower_bound_misses;
use tcor_workloads::{generate_scene, primitive_trace, prims_capacity, suite};

const POLICIES: [&str; 9] = [
    "fifo", "random", "mru", "nru", "plru", "srrip", "drrip", "lru", "opt",
];

fn main() {
    let mut args = std::env::args().skip(1);
    let alias = args.next().unwrap_or_else(|| "CCS".to_string());
    let ways: u32 = args.next().map(|w| w.parse().expect("ways")).unwrap_or(4);
    let Some(profile) = suite().into_iter().find(|b| b.alias == alias) else {
        eprintln!("unknown benchmark `{alias}`");
        std::process::exit(1);
    };

    let grid = TileGrid::new(1960, 768, 32);
    let order = Traversal::ZOrder.order(&grid);
    let scene = generate_scene(&profile, &grid);
    let frame = bin_scene(&scene, &grid, &order);
    let trace = primitive_trace(&frame.binned, &order);
    let tp = frame.binned.num_primitives();
    println!(
        "{alias}: {} primitives, {} accesses, {}-way; miss ratio per policy:",
        tp,
        trace.len(),
        ways
    );

    print!("{:>8}{:>8}", "size_kb", "LB");
    for p in POLICIES {
        print!("{p:>8}");
    }
    println!();
    for kb in (16..=160).step_by(16) {
        let cap = prims_capacity(kb as u64 * 1024);
        let lines = if ways == 0 {
            cap.max(1) as u64
        } else {
            (cap as u64 / ways as u64).max(1) * ways as u64
        };
        let params = CacheParams::new(lines, 1, ways, 1);
        let lb = lower_bound_misses(tp, cap) as f64 / trace.len() as f64;
        print!("{kb:>8}{lb:>8.3}");
        for p in POLICIES {
            let stats = if p == "opt" {
                simulate_policy(&trace, params, Indexing::Modulo, Opt::new(), true)
            } else {
                simulate_policy(&trace, params, Indexing::Modulo, by_name(p), false)
            };
            print!("{:>8.3}", stats.miss_ratio());
        }
        println!();
    }
    println!("\nLB = the paper's lower bound (§V.A); OPT should hug it, MRU should trail.");
}
