//! The paper's worked example (§III.C.7, Figures 9 and 10): 3 primitives,
//! 9 tiles, a Tile Cache with room for exactly two primitives, scanline
//! traversal — LRU versus TCOR's OPT, access by access.
//!
//! ```text
//! cargo run --example paper_example
//! ```
//!
//! Prim 0 covers the left column (tiles 0,3,6), prim 1 the top-right
//! (tiles 1,2), prim 2 the bottom-right block (tiles 4,5,7,8):
//!
//! ```text
//!   +---+---+---+        0: prim0   1: prim1   2: prim1
//!   | 0 | 1 | 1 |        3: prim0   4: prim2   5: prim2
//!   +---+---+---+        6: prim0   7: prim2   8: prim2
//!   | 0 | 2 | 2 |
//!   +---+---+---+
//!   | 0 | 2 | 2 |
//!   +---+---+---+
//! ```

use tcor::{AttributeCache, AttributeCacheConfig, ReadResult, WriteResult};
use tcor_cache::policy::Lru;
use tcor_cache::{AccessKind, AccessMeta, Cache, Indexing};
use tcor_common::{BlockAddr, CacheParams, TileGrid, TileId, Traversal};
use tcor_pbuf::BinnedFrame;

fn main() {
    let grid = TileGrid::new(96, 96, 32); // 3x3 tiles
    let order = Traversal::Scanline.order(&grid);
    let t = |i: u32| TileId(i);
    let frame = BinnedFrame::new(
        &[
            (3, vec![t(0), t(3), t(6)]),       // prim 0
            (3, vec![t(1), t(2)]),             // prim 1
            (3, vec![t(4), t(5), t(7), t(8)]), // prim 2
        ],
        &order,
    );

    // --- LRU side: a 2-line fully-associative cache at primitive
    // granularity (what the baseline's replacement does to this stream).
    let mut lru = Cache::new(
        CacheParams::new(128, 64, 0, 1),
        Indexing::Modulo,
        Lru::new(),
    );
    let (mut lru_l2_reads, mut lru_l2_writes) = (0u32, 0u32);

    // --- OPT side: TCOR's Attribute Cache with 2 primitive slots.
    let mut opt = AttributeCache::new(AttributeCacheConfig {
        ways: 2,
        pb_lines: 2,
        ab_entries: 6,
        indexing: tcor_cache::Indexing::Xor,
        write_bypass: true,
    });
    let (mut opt_l2_reads, mut opt_l2_writes) = (0u32, 0u32);

    println!("=== Polygon List Builder writes ===");
    for p in frame.primitives() {
        // LRU: write-allocate; dirty evictions write to L2.
        let out = lru.access(
            BlockAddr(p.id.0 as u64),
            AccessKind::Write,
            AccessMeta::NONE,
        );
        let lru_note = match out.evicted {
            Some(e) if e.dirty => {
                lru_l2_writes += 1;
                format!("evicts P{} -> L2 write", e.addr.0)
            }
            Some(e) => format!("evicts P{}", e.addr.0),
            None => "allocates".to_string(),
        };
        // OPT: compare OPT numbers; bypass if every resident is sooner.
        let opt_note = match opt.write(p.id, p.attr_count, p.first_use()) {
            WriteResult::Allocated { evicted } if evicted.is_empty() => "allocates".to_string(),
            WriteResult::Allocated { evicted } => {
                opt_l2_writes += evicted.iter().filter(|e| e.dirty).count() as u32;
                format!("evicts {:?} -> L2 write(s)", evicted[0].prim)
            }
            WriteResult::Bypassed => {
                opt_l2_writes += 1;
                "BYPASSED to L2".to_string()
            }
        };
        println!(
            "write {:?} (first use tile rank {:?}):  LRU {lru_note};  OPT {opt_note}",
            p.id,
            p.first_use().value(),
        );
    }

    println!();
    println!("=== Tile Fetcher reads (scanline order) ===");
    for tile in order.iter() {
        for &prim in frame.tile_list(tile) {
            let p = frame.primitive(prim);
            // LRU.
            let out = lru.access(BlockAddr(prim.0 as u64), AccessKind::Read, AccessMeta::NONE);
            let lru_note = if out.hit {
                "hit".to_string()
            } else {
                lru_l2_reads += 1;
                match out.evicted {
                    Some(e) if e.dirty => {
                        lru_l2_writes += 1;
                        format!("MISS (L2 read, evicts P{} -> L2 write)", e.addr.0)
                    }
                    _ => "MISS (L2 read)".to_string(),
                }
            };
            // OPT.
            let opt_number = p.next_use_after(order.rank_of(tile));
            let opt_note = match opt.read(prim, p.attr_count, opt_number) {
                ReadResult::Hit => "hit".to_string(),
                ReadResult::Miss { evicted } => {
                    opt_l2_reads += 1;
                    opt_l2_writes += evicted.iter().filter(|e| e.dirty).count() as u32;
                    "MISS (L2 read)".to_string()
                }
                ReadResult::Stalled => unreachable!("rasterizer consumes immediately here"),
            };
            opt.unlock(prim); // the Rasterizer consumes right away
            println!(
                "tile {} reads {:?} (next use {}):  LRU {lru_note};  OPT {opt_note}",
                tile.0,
                prim,
                if opt_number.is_never() {
                    "never".to_string()
                } else {
                    format!("rank {}", opt_number.value())
                },
            );
        }
    }

    println!();
    println!("=== Totals ===");
    println!("LRU: {lru_l2_reads} L2 reads, {lru_l2_writes} L2 writes");
    println!("OPT: {opt_l2_reads} L2 reads, {opt_l2_writes} L2 writes");
    assert!(
        opt_l2_reads < lru_l2_reads,
        "the paper's example: OPT avoids LRU's re-fetches"
    );
    println!(
        "\nOPT avoids {} L2 reads — exactly the Fig. 10 story.",
        lru_l2_reads - opt_l2_reads
    );
}
