//! Figure 1/11/12/13 kernels: the replacement-study machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcor_bench::prepared;
use tcor_cache::policy::{by_name, Opt};
use tcor_cache::profile::{opt_misses, simulate_policy, LruStackProfiler};
use tcor_cache::Indexing;
use tcor_common::CacheParams;
use tcor_workloads::{primitive_trace, prims_capacity};

fn bench_miss_curves(c: &mut Criterion) {
    let (_, frame, order) = prepared("CCS");
    let trace = primitive_trace(&frame.binned, &order);
    let cap = prims_capacity(64 << 10);

    let mut g = c.benchmark_group("fig1_fully_associative");
    g.bench_function("lru_stack_profile_full_curve", |b| {
        b.iter(|| {
            let mut p = LruStackProfiler::new();
            for a in &trace {
                p.record(a.addr);
            }
            black_box(p.misses_at(cap))
        })
    });
    g.bench_function("opt_belady_one_capacity", |b| {
        b.iter(|| black_box(opt_misses(&trace, cap)))
    });
    g.finish();

    let mut g = c.benchmark_group("fig12_fig13_set_associative");
    for policy in ["lru", "mru", "drrip"] {
        g.bench_function(format!("policy_{policy}_4way"), |b| {
            let lines = ((cap as u64 / 4).max(1)) * 4;
            let params = CacheParams::new(lines, 1, 4, 1);
            b.iter(|| {
                black_box(simulate_policy(
                    &trace,
                    params,
                    Indexing::Modulo,
                    by_name(policy),
                    false,
                ))
            })
        });
    }
    g.bench_function("policy_opt_4way_with_oracle", |b| {
        let lines = ((cap as u64 / 4).max(1)) * 4;
        let params = CacheParams::new(lines, 1, 4, 1);
        b.iter(|| {
            black_box(simulate_policy(
                &trace,
                params,
                Indexing::Modulo,
                Opt::new(),
                true,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_miss_curves);
criterion_main!(benches);
