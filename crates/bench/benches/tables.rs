//! Table II: workload synthesis and calibration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcor_bench::{grid, profile};
use tcor_common::Traversal;
use tcor_gpu::bin_scene;
use tcor_workloads::synth::calibrate;

fn bench_tables(c: &mut Criterion) {
    let g = grid();
    let mut group = c.benchmark_group("table2_workloads");
    group.sample_size(10);
    group.bench_function("calibrate_ccs", |b| {
        let p = profile("CCS");
        b.iter(|| black_box(calibrate(&p, &g).measured_reuse))
    });
    group.bench_function("calibrate_dds_largest", |b| {
        let p = profile("DDS");
        b.iter(|| black_box(calibrate(&p, &g).measured_footprint_bytes))
    });
    group.bench_function("bin_scene_ccs", |b| {
        let p = profile("CCS");
        let scene = calibrate(&p, &g).scene;
        let order = Traversal::ZOrder.order(&g);
        b.iter(|| black_box(bin_scene(&scene, &g, &order).binned.total_pmds()))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
