//! Microbenchmarks of the core hardware structures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcor::{AttributeCache, AttributeCacheConfig, ReadResult};
use tcor_bench::grid;
use tcor_cache::{AccessKind, AccessMeta, Cache, Indexing};
use tcor_common::{CacheParams, PrimitiveId, TileRank, Traversal};
use tcor_mem::{L2Mode, MemoryHierarchy, PbTag};
use tcor_pbuf::{PmdTcor, PMDS_PER_BLOCK};

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");

    g.bench_function("attribute_cache_read_write_churn", |b| {
        b.iter(|| {
            let mut ac = AttributeCache::new(AttributeCacheConfig::from_budget(48 << 10, 4));
            for i in 0..2000u32 {
                let _ = ac.write(PrimitiveId(i), 3, TileRank(i % 1488));
                if i >= 10 {
                    if let ReadResult::Hit | ReadResult::Miss { .. } =
                        ac.read(PrimitiveId(i - 10), 3, TileRank(i % 1488 + 1))
                    {
                        ac.unlock(PrimitiveId(i - 10));
                    }
                }
            }
            black_box(ac.stats().misses())
        })
    });

    g.bench_function("l2_dead_line_hierarchy_10k_accesses", |b| {
        b.iter(|| {
            let mut h = MemoryHierarchy::new(
                CacheParams::new(1 << 20, 64, 8, 12),
                tcor_common::MemoryParams::default(),
                L2Mode::TcorEnhanced,
            );
            for i in 0..10_000u64 {
                let block = tcor_common::Address(0x2000_0000 + (i % 4096) * 64).block();
                h.access(block, AccessKind::Write, PbTag::attributes(TileRank((i % 64) as u32)));
                if i % 100 == 0 {
                    h.tile_done();
                }
            }
            black_box(h.dead_drops())
        })
    });

    g.bench_function("zorder_traversal_1488_tiles", |b| {
        let gr = grid();
        b.iter(|| black_box(Traversal::ZOrder.order(&gr).len()))
    });

    g.bench_function("pmd_codec_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..4096u32 {
                let pmd = PmdTcor {
                    primitive_id: i as u16,
                    num_attributes: (i % 15) as u8 + 1,
                    opt_number: (i % 4096) as u16,
                };
                acc ^= PmdTcor::decode(pmd.encode()).opt_number as u32;
            }
            black_box(acc)
        })
    });

    g.bench_function("generic_cache_lru_100k", |b| {
        b.iter(|| {
            let mut cache = Cache::new(
                CacheParams::new(64 << 10, 64, 4, 1),
                Indexing::Modulo,
                tcor_cache::policy::Lru::new(),
            );
            for i in 0..100_000u64 {
                cache.access(
                    tcor_common::BlockAddr((i * 7919) % 8192),
                    AccessKind::Read,
                    AccessMeta::NONE,
                );
            }
            black_box(cache.stats().misses())
        })
    });

    let _ = PMDS_PER_BLOCK; // referenced for documentation symmetry
    g.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
