//! Figure 20–24 evaluations: the energy roll-up and the Tile Fetcher
//! timing model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcor::{BaselineSystem, SystemConfig};
use tcor_bench::{prepared, profile};
use tcor_energy::EnergyModel;
use tcor_gpu::MshrTiming;

fn bench_energy_and_throughput(c: &mut Criterion) {
    let (scene, _, _) = prepared("CCS");
    let rp = profile("CCS").raster_params();
    let report =
        BaselineSystem::new(SystemConfig::paper_baseline_64k().with_raster(rp)).run_frame(&scene);

    let mut g = c.benchmark_group("fig20_22_energy");
    g.bench_function("evaluate_frame_report", |b| {
        let model = EnergyModel::default();
        b.iter(|| black_box(model.evaluate(&report).total_pj()))
    });
    g.finish();

    let mut g = c.benchmark_group("fig23_24_timing");
    g.bench_function("mshr_timing_100k_ops", |b| {
        b.iter(|| {
            let mut t = MshrTiming::new(8);
            for i in 0..100_000u64 {
                if i % 7 == 0 {
                    t.issue_miss(62);
                } else {
                    t.issue_hit();
                }
            }
            black_box(t.finish())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_energy_and_throughput);
criterion_main!(benches);
