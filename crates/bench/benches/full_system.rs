//! Figure 14–19 substrate: whole-frame runs of both systems over
//! calibrated Table II workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcor::{BaselineSystem, SystemConfig, TcorSystem};
use tcor_bench::{prepared, profile};

fn bench_full_system(c: &mut Criterion) {
    // CCS: the suite's smallest workload (about 800 primitives); GTr for
    // a second, high-reuse point.
    for alias in ["CCS", "GTr"] {
        let (scene, _, _) = prepared(alias);
        let rp = profile(alias).raster_params();
        let mut g = c.benchmark_group(format!("fig14_19_frame_{alias}"));
        g.sample_size(10);
        g.bench_function("baseline_64k", |b| {
            b.iter(|| {
                let sys =
                    BaselineSystem::new(SystemConfig::paper_baseline_64k().with_raster(rp));
                black_box(sys.run_frame(&scene).pb_l2_accesses())
            })
        });
        g.bench_function("tcor_64k", |b| {
            b.iter(|| {
                let sys = TcorSystem::new(SystemConfig::paper_tcor_64k().with_raster(rp));
                black_box(sys.run_frame(&scene).pb_l2_accesses())
            })
        });
        g.bench_function("tcor_128k", |b| {
            b.iter(|| {
                let sys = TcorSystem::new(SystemConfig::paper_tcor_128k().with_raster(rp));
                black_box(sys.run_frame(&scene).pb_mm_accesses())
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_full_system);
criterion_main!(benches);
