//! # tcor-bench
//!
//! Criterion benchmarks, one per paper table/figure family, plus
//! component microbenchmarks. The benches both time the simulation
//! kernels and re-exercise the experiment code paths end to end:
//!
//! * `miss_curves` — the Figure 1/11/12/13 kernels (Mattson stack
//!   profiling, fully-associative Belady, set-associative policy sweeps);
//! * `full_system` — the Figure 14–19 substrate (whole-frame baseline and
//!   TCOR runs over calibrated workloads);
//! * `energy_throughput` — the Figure 20–24 evaluations (energy roll-up,
//!   MSHR timing);
//! * `tables` — Table II workload calibration;
//! * `components` — microbenchmarks of the core structures (Attribute
//!   Cache ops, L2 dead-line victim selection, Z-order traversal, PMD
//!   codecs).
//!
//! Shared helpers for the bench targets live here.

use tcor_common::{TileGrid, Traversal, TraversalOrder};
use tcor_gpu::{bin_scene, Frame, Scene};
use tcor_workloads::{generate_scene, suite, BenchmarkProfile};

/// The standard screen grid.
pub fn grid() -> TileGrid {
    TileGrid::new(1960, 768, 32)
}

/// A benchmark profile by alias.
///
/// # Panics
///
/// Panics on an unknown alias.
pub fn profile(alias: &str) -> BenchmarkProfile {
    suite()
        .into_iter()
        .find(|b| b.alias == alias)
        .unwrap_or_else(|| panic!("unknown alias {alias}"))
}

/// Generates a calibrated scene + binned frame for an alias.
pub fn prepared(alias: &str) -> (Scene, Frame, TraversalOrder) {
    let g = grid();
    let order = Traversal::ZOrder.order(&g);
    let scene = generate_scene(&profile(alias), &g);
    let frame = bin_scene(&scene, &g, &order);
    (scene, frame, order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_nonempty_workloads() {
        let (scene, frame, order) = prepared("GTr");
        assert!(!scene.is_empty());
        assert!(frame.binned.num_primitives() > 0);
        assert_eq!(order.len(), grid().num_tiles());
    }
}
