//! A minimal hand-rolled JSON writer (the workspace builds offline, so
//! no serde). Write-only: just enough for telemetry lines and
//! `BENCH_runner.json`.

use std::fmt::Write as _;

/// A JSON value. Build with the constructors, render with
/// [`Json::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integers render without a decimal point.
    Int(i64),
    /// Unsigned integers (counters can exceed `i64::MAX` in theory).
    UInt(u64),
    /// Finite floats render via Rust's shortest round-trip formatting;
    /// NaN/infinity render as `null` (JSON has no spelling for them).
    Float(f64),
    /// A string, escaped per RFC 8259.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders to a compact one-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is shortest-round-trip and always
                    // contains a `.` or exponent? No: `1.0` renders "1".
                    // That is still valid JSON (a number), so keep it.
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nesting_preserves_order() {
        let j = Json::obj([
            ("event", Json::str("job_end")),
            ("job", Json::UInt(3)),
            ("counters", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            j.render(),
            "{\"event\":\"job_end\",\"job\":3,\"counters\":[1,2]}"
        );
    }
}
