//! A minimal hand-rolled JSON reader/writer (the workspace builds
//! offline, so no serde). Just enough for telemetry lines and the
//! `BENCH_*.json` artifacts — including re-reading one to merge a new
//! section in ([`Json::parse`]).

use std::fmt::Write as _;

/// A JSON value. Build with the constructors, render with
/// [`Json::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integers render without a decimal point.
    Int(i64),
    /// Unsigned integers (counters can exceed `i64::MAX` in theory).
    UInt(u64),
    /// Finite floats render via Rust's shortest round-trip formatting;
    /// NaN/infinity render as `null` (JSON has no spelling for them).
    Float(f64),
    /// A string, escaped per RFC 8259.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses one JSON document (RFC 8259 subset: no duplicate-key
    /// policing, `\uXXXX` escapes decoded without surrogate pairing).
    /// Numbers become [`Json::UInt`] / [`Json::Int`] when they look
    /// integral and round-trip exactly, [`Json::Float`] otherwise.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed byte;
    /// trailing non-whitespace after the document is an error too.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders to a compact one-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is shortest-round-trip and always
                    // contains a `.` or exponent? No: `1.0` renders "1".
                    // That is still valid JSON (a number), so keep it.
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent state for [`Json::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of document".to_string()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat(b']') {
                    loop {
                        items.push(self.value()?);
                        if !self.eat(b',') {
                            self.expect(b']')?;
                            break;
                        }
                    }
                }
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if !self.eat(b'}') {
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.expect(b':')?;
                        pairs.push((key, self.value()?));
                        if !self.eat(b',') {
                            self.expect(b'}')?;
                            break;
                        }
                    }
                }
                Ok(Json::Obj(pairs))
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(format!("expected a string at byte {}", self.pos));
        }
        self.pos += 1;
        let start = self.pos;
        // Fast path: no escapes, borrow straight from the input.
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
                    self.pos += 1;
                    return Ok(s.to_string());
                }
                b'\\' => break,
                _ => self.pos += 1,
            }
        }
        let mut out = String::from_utf8(self.bytes[start..self.pos].to_vec())
            .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("unknown escape `\\{}`", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Copy a run of plain bytes in one go.
                    let run = self.pos;
                    let mut end = self.pos;
                    while let Some(&c) = self.bytes.get(end) {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[run..end])
                            .map_err(|_| format!("invalid UTF-8 in string at byte {run}"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if text.is_empty() {
            return Err(format!("expected a value at byte {start}"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("malformed number `{text}` at byte {start}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj([
            ("bench", Json::str("serve")),
            ("count", Json::UInt(3)),
            ("delta", Json::Int(-7)),
            ("p50", Json::Float(0.598)),
            ("ok", Json::Bool(true)),
            ("gap", Json::Null),
            (
                "tiers",
                Json::Arr(vec![
                    Json::obj([("c", Json::UInt(1))]),
                    Json::obj([("c", Json::UInt(64))]),
                ]),
            ),
        ]);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("count"), Some(&Json::UInt(3)));
        assert_eq!(parsed.get("missing"), None);
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_nesting() {
        let parsed = Json::parse(" { \"a\\n\\\"b\" : [ 1 , 2.5e1 , \"\\u0041x\" ] } ").unwrap();
        assert_eq!(
            parsed,
            Json::Obj(vec![(
                "a\n\"b".to_string(),
                Json::Arr(vec![Json::UInt(1), Json::Float(25.0), Json::str("Ax")]),
            )])
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "nul", "\"open", "{1:2}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nesting_preserves_order() {
        let j = Json::obj([
            ("event", Json::str("job_end")),
            ("job", Json::UInt(3)),
            ("counters", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            j.render(),
            "{\"event\":\"job_end\",\"job\":3,\"counters\":[1,2]}"
        );
    }
}
