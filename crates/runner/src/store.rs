//! Content-addressed, in-memory artifact memoization.
//!
//! Artifacts (a calibrated scene, a binned frame, an annotated trace, a
//! whole `SuiteRun`) are keyed by a stable `fxhash64` of the
//! configuration that produces them. The first requester computes; any
//! concurrent requester for the same key blocks on the winner's
//! `OnceLock` and shares the resulting `Arc` — each artifact is built
//! exactly once per process regardless of schedule.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type Slot = Arc<OnceLock<Arc<dyn Any + Send + Sync>>>;

/// The shared store. Cheap to share by reference across the worker
/// pool; all methods take `&self`.
#[derive(Default)]
pub struct ArtifactStore {
    map: Mutex<HashMap<u64, Slot>>,
    hits: AtomicU64,
    computes: AtomicU64,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the artifact under `key`, computing it with `f` if
    /// absent. Concurrent calls with the same key compute once and
    /// share; the loser blocks until the artifact exists.
    ///
    /// # Panics
    ///
    /// Panics if `key` already holds an artifact of a different type —
    /// that is a key-collision bug at the call site, never silent.
    pub fn get_or_compute<A, F>(&self, key: u64, f: F) -> Arc<A>
    where
        A: Send + Sync + 'static,
        F: FnOnce() -> A,
    {
        let slot: Slot = {
            let mut map = self.map.lock().expect("store lock");
            map.entry(key).or_default().clone()
        };
        let mut computed = false;
        let erased = slot.get_or_init(|| {
            computed = true;
            Arc::new(f()) as Arc<dyn Any + Send + Sync>
        });
        if computed {
            self.computes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(erased)
            .downcast::<A>()
            .unwrap_or_else(|_| panic!("artifact key {key:#018x} holds a different type"))
    }

    /// Returns the artifact under `key` if (and only if) it has been
    /// computed, without blocking on in-flight computation by others.
    pub fn get<A: Send + Sync + 'static>(&self, key: u64) -> Option<Arc<A>> {
        let slot = self.map.lock().expect("store lock").get(&key).cloned()?;
        let erased = slot.get()?;
        Some(
            Arc::clone(erased)
                .downcast::<A>()
                .unwrap_or_else(|_| panic!("artifact key {key:#018x} holds a different type")),
        )
    }

    /// Number of keys with a completed artifact.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("store lock")
            .values()
            .filter(|s| s.get().is_some())
            .count()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many lookups were served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many artifacts were actually computed.
    pub fn computes(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_and_shares() {
        let store = ArtifactStore::new();
        let calls = AtomicUsize::new(0);
        let a: Arc<Vec<u32>> = store.get_or_compute(1, || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![1, 2, 3]
        });
        let b: Arc<Vec<u32>> = store.get_or_compute(1, || {
            calls.fetch_add(1, Ordering::SeqCst);
            vec![9, 9, 9]
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.computes(), 1);
        assert_eq!(store.hits(), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let store = ArtifactStore::new();
        let a: Arc<u64> = store.get_or_compute(10, || 100);
        let b: Arc<u64> = store.get_or_compute(11, || 200);
        assert_eq!((*a, *b), (100, 200));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn get_sees_only_completed() {
        let store = ArtifactStore::new();
        assert!(store.get::<u64>(5).is_none());
        let _ = store.get_or_compute(5, || 7u64);
        assert_eq!(*store.get::<u64>(5).expect("present"), 7);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_collision_is_loud() {
        let store = ArtifactStore::new();
        let _ = store.get_or_compute(3, || 1u64);
        let _: Arc<String> = store.get_or_compute(3, || "oops".to_string());
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let store = ArtifactStore::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v: Arc<u64> = store.get_or_compute(42, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window.
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        99
                    });
                    assert_eq!(*v, 99);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
