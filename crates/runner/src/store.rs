//! Content-addressed artifact memoization: in-memory always, persistent
//! on request.
//!
//! Artifacts (a calibrated scene, a binned frame, an annotated trace, a
//! whole `SuiteRun`, a rendered serve response) are keyed by a stable
//! `fxhash64` of the configuration that produces them. The first
//! requester computes; any concurrent requester for the same key blocks
//! until the winner publishes and shares the resulting `Arc` — each
//! artifact is built exactly once per process regardless of schedule.
//! Encodable artifacts can additionally ride a `tcor_pcache`
//! [`ResultCache`] ([`ArtifactStore::get_or_try_compute_persisted`]),
//! making them *once per cache directory* rather than once per process.
//!
//! Failure model: a key that resolves to a value of a different type
//! than requested is a key-collision bug at some call site; it is
//! reported as a typed [`ErrorKind::Corruption`] error, never a panic,
//! so one bad cell cannot tear down the suite. Each slot is an explicit
//! `Empty → InFlight → Ready` state machine guarded by its own
//! mutex+condvar: a computation that panics *or* returns a typed error
//! resets its slot to `Empty` and wakes every waiter, so a partial
//! entry can never wedge concurrent readers — one of them simply
//! becomes the next leader and retries. Lock poisoning is recovered
//! with [`PoisonError::into_inner`]: state transitions are single
//! assignments, so a thread that panicked while holding a lock cannot
//! have left the slot half-updated.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use tcor_common::{TcorError, TcorResult};
use tcor_pcache::{CacheKey, CachedBody, ResultCache};

type Erased = Arc<dyn Any + Send + Sync>;

/// Where one slot is in its lifecycle.
enum SlotState {
    /// Nothing computed; the next requester becomes the leader.
    Empty,
    /// A leader is computing; followers wait on the condvar.
    InFlight,
    /// The artifact is published.
    Ready(Erased),
}

/// One key's state machine: mutex-guarded state plus the condvar the
/// leader signals on every transition out of `InFlight`.
struct Slot {
    state: Mutex<SlotState>,
    changed: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState::Empty),
            changed: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotState> {
        // Transitions are single assignments: a panicking holder cannot
        // leave the state half-updated, so poisoning is recoverable.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The shared store. Cheap to share by reference across the worker
/// pool; all methods take `&self`.
#[derive(Default)]
pub struct ArtifactStore {
    map: Mutex<HashMap<u64, Arc<Slot>>>,
    hits: AtomicU64,
    computes: AtomicU64,
}

fn type_confusion(key: u64, requested: &str) -> TcorError {
    TcorError::corruption(format!(
        "artifact store key {key:#018x} holds a value of a different type \
         than the requested `{requested}` — key collision or type confusion \
         at a call site"
    ))
}

fn downcast<A: Send + Sync + 'static>(key: u64, erased: Erased) -> TcorResult<Arc<A>> {
    erased
        .downcast::<A>()
        .map_err(|_| type_confusion(key, std::any::type_name::<A>()))
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, key: u64) -> Arc<Slot> {
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Slot::new())))
    }

    /// Returns the artifact under `key`, computing it with `f` if
    /// absent. Concurrent calls with the same key compute once and
    /// share; the losers block until the artifact exists. If `f`
    /// panics the slot is reset to empty, every waiter is woken (one
    /// of them retries as the new leader), and the panic is propagated
    /// to — and contained by — the executor.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorKind::Corruption`](tcor_common::ErrorKind)
    /// error if `key` already holds an artifact of a different type —
    /// a key-collision bug at the call site, never silent.
    pub fn get_or_compute<A, F>(&self, key: u64, f: F) -> TcorResult<Arc<A>>
    where
        A: Send + Sync + 'static,
        F: FnOnce() -> A,
    {
        self.get_or_try_compute(key, || Ok(f()))
    }

    /// The fallible, concurrency-hardened entry point (the serving
    /// plane's get-or-compute): like [`get_or_compute`], but `f` may
    /// return a typed error. An error is returned to the leader *and
    /// leaves the slot empty* — waiters are woken and the first of
    /// them retries the computation, so a transient failure (or a
    /// panicking leader) never leaves a poisoned or partial entry
    /// behind.
    ///
    /// Reentrancy: computing `key` from inside its own `f` deadlocks
    /// (exactly like the `OnceLock`-based predecessor); keep artifact
    /// dependencies acyclic.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error verbatim; returns a corruption error on
    /// key type confusion.
    pub fn get_or_try_compute<A, F>(&self, key: u64, f: F) -> TcorResult<Arc<A>>
    where
        A: Send + Sync + 'static,
        F: FnOnce() -> TcorResult<A>,
    {
        let slot = self.slot(key);
        {
            let mut st = slot.lock();
            loop {
                match &*st {
                    SlotState::Ready(v) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return downcast(key, Arc::clone(v));
                    }
                    SlotState::InFlight => {
                        st = slot
                            .changed
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    SlotState::Empty => {
                        *st = SlotState::InFlight;
                        break;
                    }
                }
            }
        }
        // This thread is the leader; compute outside the slot lock so
        // followers can park on the condvar, not the mutex.
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let mut st = slot.lock();
        match outcome {
            Ok(Ok(value)) => {
                let erased: Erased = Arc::new(value);
                *st = SlotState::Ready(Arc::clone(&erased));
                self.computes.fetch_add(1, Ordering::Relaxed);
                slot.changed.notify_all();
                drop(st);
                downcast(key, erased)
            }
            Ok(Err(e)) => {
                *st = SlotState::Empty;
                slot.changed.notify_all();
                Err(e)
            }
            Err(panic) => {
                *st = SlotState::Empty;
                slot.changed.notify_all();
                drop(st);
                resume_unwind(panic)
            }
        }
    }

    /// [`get_or_try_compute`](Self::get_or_try_compute) with a
    /// persistent tier behind it: the leader consults `cache` (keyed
    /// by `key` + `version`) before computing, and publishes what it
    /// computed back through the cache, so an artifact survives the
    /// process that built it. `encode`/`decode` bridge the artifact to
    /// its cacheable byte form; a `decode` that returns `None`
    /// (undecodable or schema-drifted bytes) falls through to a fresh
    /// computation, which then overwrites the entry.
    ///
    /// In-process semantics are unchanged — one computation per key,
    /// concurrent requesters share the leader's `Arc` — and the cache
    /// is only ever consulted *inside* the leader's critical section,
    /// so a cache hit is published to followers exactly like a
    /// computed value.
    ///
    /// The in-process slot is keyed by a *salted* derivative of `key`
    /// (the persistent [`CacheKey`] keeps the raw identity, so other
    /// cache consumers still share entries). The salt matters: `f` may
    /// itself memoize intermediate artifacts in this same store, and a
    /// caller's `key` can legitimately equal one of those inner keys —
    /// the serve plane's canonical `cell/GTr/base64` identity hashes to
    /// the very key the orchestrator files that cell's report under.
    /// Without the salt the leader would re-enter its own in-flight
    /// slot and deadlock (and the two values would collide as type
    /// confusion even if it didn't).
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error verbatim; returns a corruption error on
    /// key type confusion. Cache I/O failures are absorbed by the
    /// cache itself (counted in its stats) and degrade to computing.
    pub fn get_or_try_compute_persisted<A, F, E, D>(
        &self,
        key: u64,
        cache: &dyn ResultCache,
        version: u64,
        encode: E,
        decode: D,
        f: F,
    ) -> TcorResult<Arc<A>>
    where
        A: Send + Sync + 'static,
        F: FnOnce() -> TcorResult<A>,
        E: FnOnce(&A) -> CachedBody,
        D: FnOnce(&CachedBody) -> Option<A>,
    {
        let slot_key = tcor_common::fxhash64(format!("pcache-slot/{key:016x}").as_bytes());
        self.get_or_try_compute(slot_key, || {
            let ck = CacheKey::new(key, version);
            if let Some((body, _tier)) = cache.get(&ck) {
                if let Some(artifact) = decode(&body) {
                    return Ok(artifact);
                }
            }
            let artifact = f()?;
            cache.put(&ck, &Arc::new(encode(&artifact)));
            Ok(artifact)
        })
    }

    /// Returns the artifact under `key` if (and only if) it has been
    /// computed, without blocking on in-flight computation by others.
    ///
    /// # Errors
    ///
    /// Returns a corruption error on type confusion, like
    /// [`get_or_compute`](Self::get_or_compute).
    pub fn get<A: Send + Sync + 'static>(&self, key: u64) -> TcorResult<Option<Arc<A>>> {
        let slot = {
            let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            map.get(&key).cloned()
        };
        let Some(slot) = slot else { return Ok(None) };
        let st = slot.lock();
        match &*st {
            SlotState::Ready(v) => downcast(key, Arc::clone(v)).map(Some),
            _ => Ok(None),
        }
    }

    /// Number of keys with a completed artifact.
    pub fn len(&self) -> usize {
        let slots: Vec<Arc<Slot>> = {
            let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            map.values().cloned().collect()
        };
        slots
            .iter()
            .filter(|s| matches!(&*s.lock(), SlotState::Ready(_)))
            .count()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many lookups were served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many artifacts were actually computed.
    pub fn computes(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn computes_once_and_shares() {
        let store = ArtifactStore::new();
        let calls = AtomicUsize::new(0);
        let a: Arc<Vec<u32>> = store
            .get_or_compute(1, || {
                calls.fetch_add(1, Ordering::SeqCst);
                vec![1, 2, 3]
            })
            .unwrap();
        let b: Arc<Vec<u32>> = store
            .get_or_compute(1, || {
                calls.fetch_add(1, Ordering::SeqCst);
                vec![9, 9, 9]
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.computes(), 1);
        assert_eq!(store.hits(), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let store = ArtifactStore::new();
        let a: Arc<u64> = store.get_or_compute(10, || 100).unwrap();
        let b: Arc<u64> = store.get_or_compute(11, || 200).unwrap();
        assert_eq!((*a, *b), (100, 200));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn get_sees_only_completed() {
        let store = ArtifactStore::new();
        assert!(store.get::<u64>(5).unwrap().is_none());
        let _ = store.get_or_compute(5, || 7u64);
        assert_eq!(*store.get::<u64>(5).unwrap().expect("present"), 7);
    }

    #[test]
    fn type_collision_is_a_typed_corruption_error() {
        let store = ArtifactStore::new();
        let _ = store.get_or_compute(3, || 1u64);
        let err = store
            .get_or_compute::<String, _>(3, || "oops".to_string())
            .unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Corruption);
        let msg = err.to_string();
        assert!(msg.contains("0x0000000000000003"), "{msg}");
        assert!(msg.contains("String"), "{msg}");
        // The blocking-free getter reports the same way.
        let err = store.get::<String>(3).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Corruption);
        // The store itself is still usable and the original intact.
        assert_eq!(*store.get::<u64>(3).unwrap().expect("original"), 1);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let store = ArtifactStore::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v: Arc<u64> = store
                        .get_or_compute(42, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            99
                        })
                        .unwrap();
                    assert_eq!(*v, 99);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    /// The serving plane's regression: two callers racing through the
    /// fallible entry point compute exactly once, and both get the
    /// winner's artifact.
    #[test]
    fn racing_fallible_callers_compute_once() {
        let store = ArtifactStore::new();
        let calls = AtomicUsize::new(0);
        let gate = Barrier::new(2);
        std::thread::scope(|s| {
            let run = || {
                gate.wait();
                let v: Arc<String> = store
                    .get_or_try_compute(7, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        Ok("artifact".to_string())
                    })
                    .unwrap();
                assert_eq!(*v, "artifact");
            };
            let t = s.spawn(run);
            run();
            t.join().unwrap();
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!((store.computes(), store.hits()), (1, 1));
    }

    /// A failed computation leaves the slot empty: the waiter that was
    /// blocked on the failing leader is woken, retries as the new
    /// leader, and succeeds — no poisoned/partial entry survives.
    #[test]
    fn failed_leader_wakes_waiter_who_retries() {
        let store = ArtifactStore::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let loser = s.spawn(|| {
                store.get_or_try_compute::<u64, _>(11, || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    Err(TcorError::execution("transient failure"))
                })
            });
            // Give the loser time to become the leader, then pile on.
            std::thread::sleep(std::time::Duration::from_millis(5));
            let winner: Arc<u64> = store
                .get_or_try_compute(11, || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Ok(5)
                })
                .unwrap();
            assert_eq!(*winner, 5);
            let err = loser.join().unwrap().unwrap_err();
            assert_eq!(err.kind(), tcor_common::ErrorKind::Execution);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 2, "fail once, retry once");
        assert_eq!(*store.get::<u64>(11).unwrap().expect("retried"), 5);
    }

    #[allow(clippy::ptr_arg)] // must match FnOnce(&String) at the call sites
    fn encode(s: &String) -> CachedBody {
        CachedBody::text("text/plain; charset=utf-8", s.as_str())
    }

    fn decode(c: &CachedBody) -> Option<String> {
        String::from_utf8(c.bytes.clone()).ok()
    }

    /// The persistence contract: a second store (a "restarted
    /// process") over the same cache decodes instead of recomputing; a
    /// bumped version recomputes instead of trusting stale bytes.
    #[test]
    fn persisted_artifacts_survive_into_a_fresh_store() {
        use tcor_pcache::TieredCache;
        let dir = std::env::temp_dir().join(format!("tcor-store-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TieredCache::open(4, Some((dir.clone(), 1 << 20))).unwrap();
        let calls = AtomicUsize::new(0);
        let compute = || {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok("artifact-v1".to_string())
        };
        let a: Arc<String> = ArtifactStore::new()
            .get_or_try_compute_persisted(21, &cache, 7, encode, decode, compute)
            .unwrap();
        assert_eq!(*a, "artifact-v1");
        // "Restart": fresh store, same cache — decoded, not recomputed.
        let b: Arc<String> = ArtifactStore::new()
            .get_or_try_compute_persisted(21, &cache, 7, encode, decode, compute)
            .unwrap();
        assert_eq!(*b, "artifact-v1");
        assert_eq!(calls.load(Ordering::SeqCst), 1, "served from the cache");
        // A new code version must not trust the persisted bytes.
        let c: Arc<String> = ArtifactStore::new()
            .get_or_try_compute_persisted(21, &cache, 8, encode, decode, || {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok("artifact-v2".to_string())
            })
            .unwrap();
        assert_eq!(*c, "artifact-v2");
        assert_eq!(calls.load(Ordering::SeqCst), 2, "version bump recomputes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The serve plane's shape: the persisted wrapper's `key` equals a
    /// key the computation itself memoizes under (the canonical
    /// `cell/...` identity doubles as the orchestrator's cell key).
    /// The salted slot must keep the inner call on its own slot —
    /// unsalted, this deadlocks a single thread forever.
    #[test]
    fn persisted_compute_may_reuse_its_own_key_internally() {
        use tcor_pcache::TieredCache;
        let cache = TieredCache::memory_only(4);
        let store = ArtifactStore::new();
        let v: Arc<String> = store
            .get_or_try_compute_persisted(55, &cache, 7, encode, decode, || {
                let inner = store.get_or_compute(55, || "inner artifact".to_string())?;
                Ok(format!("wrapped {inner}"))
            })
            .unwrap();
        assert_eq!(*v, "wrapped inner artifact");
        // Both values exist under their own slots, no type confusion.
        let inner = store.get::<String>(55).unwrap().expect("inner slot");
        assert_eq!(*inner, "inner artifact");
        let (body, _) = cache
            .get(&tcor_pcache::CacheKey::new(55, 7))
            .expect("persisted under the raw identity");
        assert_eq!(body.bytes, b"wrapped inner artifact");
    }

    /// An undecodable cache entry falls through to computation and is
    /// overwritten, not served.
    #[test]
    fn undecodable_cache_entry_recomputes() {
        use tcor_pcache::TieredCache;
        let cache = TieredCache::memory_only(4);
        let key = tcor_pcache::CacheKey::new(33, 7);
        cache.put(&key, &Arc::new(CachedBody::text("text/plain", "\u{fffd}")));
        let v: Arc<String> = ArtifactStore::new()
            .get_or_try_compute_persisted(
                33,
                &cache,
                7,
                encode,
                |_c: &CachedBody| None, // decoder rejects the bytes
                || Ok("recomputed".to_string()),
            )
            .unwrap();
        assert_eq!(*v, "recomputed");
        // The overwrite published the good bytes.
        let (body, _) = cache.get(&key).expect("refilled");
        assert_eq!(body.bytes, b"recomputed");
    }

    #[test]
    fn panicked_initialization_leaves_the_slot_retryable() {
        let store = ArtifactStore::new();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = store.get_or_compute::<u64, _>(9, || panic!("boom"));
        }));
        assert!(attempt.is_err());
        // The slot was not filled; a clean retry succeeds.
        let v = store.get_or_compute(9, || 5u64).unwrap();
        assert_eq!(*v, 5);
    }
}
