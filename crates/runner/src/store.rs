//! Content-addressed, in-memory artifact memoization.
//!
//! Artifacts (a calibrated scene, a binned frame, an annotated trace, a
//! whole `SuiteRun`) are keyed by a stable `fxhash64` of the
//! configuration that produces them. The first requester computes; any
//! concurrent requester for the same key blocks on the winner's
//! `OnceLock` and shares the resulting `Arc` — each artifact is built
//! exactly once per process regardless of schedule.
//!
//! Failure model: a key that resolves to a value of a different type
//! than requested is a key-collision bug at some call site; it is
//! reported as a typed [`ErrorKind::Corruption`] error, never a panic,
//! so one bad cell cannot tear down the suite. Lock poisoning is
//! recovered with [`PoisonError::into_inner`]: the map holds only
//! `Arc<OnceLock>` slots whose insertion is a single `entry().or_default()`
//! step, so a thread that panicked while holding the lock cannot have
//! left the map half-updated.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use tcor_common::{TcorError, TcorResult};

type Slot = Arc<OnceLock<Arc<dyn Any + Send + Sync>>>;

/// The shared store. Cheap to share by reference across the worker
/// pool; all methods take `&self`.
#[derive(Default)]
pub struct ArtifactStore {
    map: Mutex<HashMap<u64, Slot>>,
    hits: AtomicU64,
    computes: AtomicU64,
}

fn type_confusion(key: u64, requested: &str) -> TcorError {
    TcorError::corruption(format!(
        "artifact store key {key:#018x} holds a value of a different type \
         than the requested `{requested}` — key collision or type confusion \
         at a call site"
    ))
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the artifact under `key`, computing it with `f` if
    /// absent. Concurrent calls with the same key compute once and
    /// share; the loser blocks until the artifact exists. If `f`
    /// panics the slot stays empty (the panic is propagated to — and
    /// contained by — the executor) and a later caller retries.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorKind::Corruption`](tcor_common::ErrorKind)
    /// error if `key` already holds an artifact of a different type —
    /// a key-collision bug at the call site, never silent.
    pub fn get_or_compute<A, F>(&self, key: u64, f: F) -> TcorResult<Arc<A>>
    where
        A: Send + Sync + 'static,
        F: FnOnce() -> A,
    {
        let slot: Slot = {
            let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            map.entry(key).or_default().clone()
        };
        let mut computed = false;
        let erased = slot.get_or_init(|| {
            computed = true;
            Arc::new(f()) as Arc<dyn Any + Send + Sync>
        });
        if computed {
            self.computes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(erased)
            .downcast::<A>()
            .map_err(|_| type_confusion(key, std::any::type_name::<A>()))
    }

    /// Returns the artifact under `key` if (and only if) it has been
    /// computed, without blocking on in-flight computation by others.
    ///
    /// # Errors
    ///
    /// Returns a corruption error on type confusion, like
    /// [`get_or_compute`](Self::get_or_compute).
    pub fn get<A: Send + Sync + 'static>(&self, key: u64) -> TcorResult<Option<Arc<A>>> {
        let slot = {
            let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
            map.get(&key).cloned()
        };
        let Some(slot) = slot else { return Ok(None) };
        let Some(erased) = slot.get() else {
            return Ok(None);
        };
        Arc::clone(erased)
            .downcast::<A>()
            .map(Some)
            .map_err(|_| type_confusion(key, std::any::type_name::<A>()))
    }

    /// Number of keys with a completed artifact.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|s| s.get().is_some())
            .count()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many lookups were served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many artifacts were actually computed.
    pub fn computes(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_and_shares() {
        let store = ArtifactStore::new();
        let calls = AtomicUsize::new(0);
        let a: Arc<Vec<u32>> = store
            .get_or_compute(1, || {
                calls.fetch_add(1, Ordering::SeqCst);
                vec![1, 2, 3]
            })
            .unwrap();
        let b: Arc<Vec<u32>> = store
            .get_or_compute(1, || {
                calls.fetch_add(1, Ordering::SeqCst);
                vec![9, 9, 9]
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.computes(), 1);
        assert_eq!(store.hits(), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let store = ArtifactStore::new();
        let a: Arc<u64> = store.get_or_compute(10, || 100).unwrap();
        let b: Arc<u64> = store.get_or_compute(11, || 200).unwrap();
        assert_eq!((*a, *b), (100, 200));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn get_sees_only_completed() {
        let store = ArtifactStore::new();
        assert!(store.get::<u64>(5).unwrap().is_none());
        let _ = store.get_or_compute(5, || 7u64);
        assert_eq!(*store.get::<u64>(5).unwrap().expect("present"), 7);
    }

    #[test]
    fn type_collision_is_a_typed_corruption_error() {
        let store = ArtifactStore::new();
        let _ = store.get_or_compute(3, || 1u64);
        let err = store
            .get_or_compute::<String, _>(3, || "oops".to_string())
            .unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Corruption);
        let msg = err.to_string();
        assert!(msg.contains("0x0000000000000003"), "{msg}");
        assert!(msg.contains("String"), "{msg}");
        // The blocking-free getter reports the same way.
        let err = store.get::<String>(3).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Corruption);
        // The store itself is still usable and the original intact.
        assert_eq!(*store.get::<u64>(3).unwrap().expect("original"), 1);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let store = ArtifactStore::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v: Arc<u64> = store
                        .get_or_compute(42, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            99
                        })
                        .unwrap();
                    assert_eq!(*v, 99);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicked_initialization_leaves_the_slot_retryable() {
        let store = ArtifactStore::new();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = store.get_or_compute::<u64, _>(9, || panic!("boom"));
        }));
        assert!(attempt.is_err());
        // The slot was not filled; a clean retry succeeds.
        let v = store.get_or_compute(9, || 5u64).unwrap();
        assert_eq!(*v, 5);
    }
}
