//! The work-stealing parallel executor.
//!
//! Built strictly on `std`: [`std::thread::scope`] workers, one
//! `Mutex<VecDeque>` run queue per worker plus a `Mutex`/`Condvar`
//! coordinator for sleeping. A worker pops its own queue from the back
//! (LIFO: newly unblocked dependents run hot, artifacts still in
//! cache), and steals from other queues' fronts (FIFO: old, likely
//! large jobs migrate) — the classic Chase–Lev discipline without the
//! lock-free deque, which `std` alone cannot express safely.
//!
//! Determinism: every job writes its result into its own id-indexed
//! slot, so the returned `Vec` is ordered by [`JobId`] and bit-identical
//! to [`execute_serial`] for deterministic jobs, whatever the schedule.

use crate::job::{JobCtx, JobGraph, JobId};
use crate::store::ArtifactStore;
use crate::telemetry::Telemetry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Worker count the CLI defaults to: every hardware thread.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A job body as stored in the executor: boxed, claimed exactly once.
type BoxedTask<'g, T> = Box<dyn FnOnce(&JobCtx<'_>) -> T + Send + 'g>;

struct Coord {
    /// Jobs sitting in some queue, not yet claimed.
    queued: usize,
    /// Jobs not yet completed (queued + running + dep-blocked).
    unfinished: usize,
}

struct Shared<'g, 'env, T> {
    queues: Vec<Mutex<VecDeque<usize>>>,
    coord: Mutex<Coord>,
    cv: Condvar,
    /// Remaining dependency count per job; the worker that drops one to
    /// zero enqueues it.
    pending: Vec<AtomicUsize>,
    dependents: Vec<Vec<usize>>,
    labels: Vec<String>,
    tasks: Vec<Mutex<Option<BoxedTask<'g, T>>>>,
    results: Vec<Mutex<Option<T>>>,
    store: &'env ArtifactStore,
    telemetry: &'env Telemetry,
}

impl<T> Shared<'_, '_, T> {
    /// Queues `job` on `worker`'s deque and wakes one sleeper.
    fn push(&self, worker: usize, job: usize) {
        self.queues[worker]
            .lock()
            .expect("queue lock")
            .push_back(job);
        self.coord.lock().expect("coord lock").queued += 1;
        self.cv.notify_one();
    }

    /// Own queue (LIFO) first, then steal round-robin (FIFO).
    fn try_claim(&self, worker: usize) -> Option<usize> {
        if let Some(j) = self.queues[worker].lock().expect("queue lock").pop_back() {
            self.coord.lock().expect("coord lock").queued -= 1;
            return Some(j);
        }
        let n = self.queues.len();
        for k in 1..n {
            let victim = (worker + k) % n;
            if let Some(j) = self.queues[victim].lock().expect("queue lock").pop_front() {
                self.coord.lock().expect("coord lock").queued -= 1;
                return Some(j);
            }
        }
        None
    }

    fn run_job(&self, worker: usize, job: usize) {
        let work = self.tasks[job]
            .lock()
            .expect("task lock")
            .take()
            .expect("job claimed twice");
        let ctx = JobCtx::new(self.store);
        self.telemetry.job_start(job, &self.labels[job], worker);
        let out = work(&ctx);
        self.telemetry
            .job_end(job, &self.labels[job], worker, ctx.take_counters());
        *self.results[job].lock().expect("result lock") = Some(out);
        // Unblock dependents; newly ready ones run on this worker's
        // queue (their inputs are hot here), idle workers steal.
        for &d in &self.dependents[job] {
            if self.pending[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.push(worker, d);
            }
        }
        let mut coord = self.coord.lock().expect("coord lock");
        coord.unfinished -= 1;
        if coord.unfinished == 0 {
            self.cv.notify_all();
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if let Some(job) = self.try_claim(worker) {
                self.run_job(worker, job);
                continue;
            }
            let mut coord = self.coord.lock().expect("coord lock");
            loop {
                if coord.unfinished == 0 {
                    return;
                }
                if coord.queued > 0 {
                    break; // retry claiming outside the coord lock
                }
                coord = self.cv.wait(coord).expect("coord wait");
            }
        }
    }
}

/// Runs the graph on `workers` threads and returns the results ordered
/// by job id. `workers == 1` still goes through the queue machinery;
/// use [`execute_serial`] for the zero-thread reference path.
///
/// # Panics
///
/// Propagates the first job panic after the scope joins.
pub fn execute<T: Send>(
    graph: JobGraph<'_, T>,
    workers: usize,
    store: &ArtifactStore,
    telemetry: &Telemetry,
) -> Vec<T> {
    let jobs = graph.into_jobs();
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);

    let mut pending = Vec::with_capacity(n);
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut labels = Vec::with_capacity(n);
    let mut tasks = Vec::with_capacity(n);
    let mut roots = Vec::new();
    for (i, job) in jobs.into_iter().enumerate() {
        if job.deps.is_empty() {
            roots.push(i);
        }
        pending.push(AtomicUsize::new(job.deps.len()));
        for JobId(d) in job.deps {
            dependents[d].push(i);
        }
        labels.push(job.label);
        tasks.push(Mutex::new(Some(job.work)));
    }

    let shared = Shared {
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        coord: Mutex::new(Coord {
            queued: 0,
            unfinished: n,
        }),
        cv: Condvar::new(),
        pending,
        dependents,
        labels,
        tasks,
        results: (0..n).map(|_| Mutex::new(None)).collect(),
        store,
        telemetry,
    };
    // Seed roots round-robin so the pool starts balanced.
    for (k, &r) in roots.iter().enumerate() {
        shared.push(k % workers, r);
    }

    std::thread::scope(|s| {
        for w in 1..workers {
            let shared = &shared;
            std::thread::Builder::new()
                .name(format!("tcor-runner-{w}"))
                .spawn_scoped(s, move || shared.worker_loop(w))
                .expect("spawn worker");
        }
        shared.worker_loop(0);
    });

    shared
        .results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("job completed without a result")
        })
        .collect()
}

/// The reference path: runs every job on the calling thread in id
/// order (ids are topological by construction), with identical
/// telemetry recording and results.
pub fn execute_serial<T>(
    graph: JobGraph<'_, T>,
    store: &ArtifactStore,
    telemetry: &Telemetry,
) -> Vec<T> {
    graph
        .into_jobs()
        .into_iter()
        .enumerate()
        .map(|(i, job)| {
            let ctx = JobCtx::new(store);
            telemetry.job_start(i, &job.label, 0);
            let out = (job.work)(&ctx);
            telemetry.job_end(i, &job.label, 0, ctx.take_counters());
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn diamond(counter: &AtomicU64) -> JobGraph<'_, u64> {
        // a → {b, c} → d ; d must observe both b and c done.
        let mut g = JobGraph::new();
        let a = g.add_job("a", &[], move |_| {
            counter.fetch_add(1, Ordering::SeqCst);
            1
        });
        let b = g.add_job("b", &[a], move |_| {
            counter.fetch_add(10, Ordering::SeqCst);
            2
        });
        let c = g.add_job("c", &[a], move |_| {
            counter.fetch_add(100, Ordering::SeqCst);
            3
        });
        g.add_job("d", &[b, c], move |_| counter.load(Ordering::SeqCst));
        g
    }

    #[test]
    fn serial_and_parallel_agree_on_a_diamond() {
        for workers in [1, 2, 4, 8] {
            let counter = AtomicU64::new(0);
            let store = ArtifactStore::new();
            let t = Telemetry::new();
            let out = execute(diamond(&counter), workers, &store, &t);
            assert_eq!(out, vec![1, 2, 3, 111], "workers={workers}");
        }
        let counter = AtomicU64::new(0);
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        assert_eq!(
            execute_serial(diamond(&counter), &store, &t),
            vec![1, 2, 3, 111]
        );
    }

    #[test]
    fn wide_graph_runs_every_job_once() {
        let n = 300;
        let hits = AtomicU64::new(0);
        let mut g = JobGraph::new();
        for i in 0..n {
            let hits = &hits;
            g.add_job(format!("j{i}"), &[], move |_| {
                hits.fetch_add(1, Ordering::SeqCst);
                i as u64
            });
        }
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let out = execute(g, 8, &store, &t);
        assert_eq!(hits.load(Ordering::SeqCst), n as u64);
        assert_eq!(out, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn deep_chain_respects_ordering() {
        // Each link multiplies; any reordering would change the value.
        let mut g = JobGraph::new();
        let trace = &*Box::leak(Box::new(Mutex::new(Vec::<usize>::new())));
        let mut prev: Option<JobId> = None;
        for i in 0..64 {
            let deps: Vec<JobId> = prev.into_iter().collect();
            prev = Some(g.add_job(format!("link{i}"), &deps, move |_| {
                trace.lock().unwrap().push(i);
                i
            }));
        }
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        execute(g, 4, &store, &t);
        assert_eq!(*trace.lock().unwrap(), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_share_artifacts_through_the_store() {
        let mut g = JobGraph::new();
        for i in 0..16 {
            g.add_job(format!("j{i}"), &[], move |ctx: &JobCtx<'_>| {
                *ctx.store().get_or_compute(0xBEEF, || 7u64)
            });
        }
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let out = execute(g, 4, &store, &t);
        assert!(out.iter().all(|&v| v == 7));
        assert_eq!(store.computes(), 1);
        assert_eq!(store.hits(), 15);
    }

    #[test]
    fn telemetry_records_every_job() {
        let counter = AtomicU64::new(0);
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        execute(diamond(&counter), 2, &store, &t);
        let records = t.records();
        assert_eq!(records.len(), 4);
        let mut labels: Vec<_> = records.iter().map(|r| r.label.clone()).collect();
        labels.sort();
        assert_eq!(labels, ["a", "b", "c", "d"]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let out: Vec<()> = execute(JobGraph::new(), 4, &store, &t);
        assert!(out.is_empty());
    }
}
