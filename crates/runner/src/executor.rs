//! The work-stealing parallel executor, with per-job fault isolation.
//!
//! Built strictly on `std`: [`std::thread::scope`] workers, one
//! `Mutex<VecDeque>` run queue per worker plus a `Mutex`/`Condvar`
//! coordinator for sleeping. A worker pops its own queue from the back
//! (LIFO: newly unblocked dependents run hot, artifacts still in
//! cache), and steals from other queues' fronts (FIFO: old, likely
//! large jobs migrate) — the classic Chase–Lev discipline without the
//! lock-free deque, which `std` alone cannot express safely.
//!
//! Failure model: each job body runs under [`std::panic::catch_unwind`].
//! A panicking job is recorded as [`JobOutcome::Failed`] with its panic
//! message, its transitive dependents become [`JobOutcome::Skipped`]
//! (pointing at the root failure), and every independent job still runs
//! to completion — one bad cell never tears down the suite. An optional
//! watchdog flags (but does not kill — `std` cannot cancel a thread)
//! jobs that exceed a wall-time budget, and a [`FaultPlan`] can inject
//! deterministic panics/stalls to exercise all of the above.
//!
//! Determinism: every job writes its outcome into its own id-indexed
//! slot, so the returned report is ordered by [`JobId`] and
//! bit-identical to [`execute_serial`] for deterministic jobs, whatever
//! the schedule.

use crate::fault::{FaultPlan, JobFault};
use crate::job::{JobCtx, JobGraph, JobId};
use crate::store::ArtifactStore;
use crate::telemetry::Telemetry;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use tcor_common::{TcorError, TcorResult};

/// Worker count the CLI defaults to: every hardware thread.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Execution knobs shared by [`execute`] and [`execute_serial`].
#[derive(Clone, Debug, Default)]
pub struct ExecOptions {
    /// Wall-time budget per job; jobs over budget are flagged in
    /// telemetry and in [`RunReport::timed_out`] (they are not killed).
    pub job_timeout: Option<Duration>,
    /// Deterministic fault injection (panics/stalls keyed by job
    /// label); `None` in production runs.
    pub fault_plan: Option<FaultPlan>,
}

/// How one job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job's body panicked; the panic was contained.
    Failed {
        /// The panic payload, stringified.
        panic_msg: String,
    },
    /// A (transitive) dependency failed, so the job never ran.
    Skipped {
        /// Job id of the root failure that poisoned this job.
        failed_dep: usize,
    },
}

impl<T> JobOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the job ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }
}

/// The result of executing one job graph: per-job outcomes ordered by
/// [`JobId`], the labels to attribute them, and watchdog flags.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Outcome of every job, indexed by job id.
    pub outcomes: Vec<JobOutcome<T>>,
    /// Label of every job, indexed by job id.
    pub labels: Vec<String>,
    /// Ids of jobs the watchdog flagged as over the wall-time budget.
    pub timed_out: Vec<usize>,
}

impl<T> RunReport<T> {
    /// Whether every job completed.
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(JobOutcome::is_completed)
    }

    /// `(job id, label, panic message)` of every failed job.
    pub fn failures(&self) -> Vec<(usize, &str, &str)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                JobOutcome::Failed { panic_msg } => {
                    Some((i, self.labels[i].as_str(), panic_msg.as_str()))
                }
                _ => None,
            })
            .collect()
    }

    /// `(job id, label, root failed job id)` of every skipped job.
    pub fn skips(&self) -> Vec<(usize, &str, usize)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                JobOutcome::Skipped { failed_dep } => {
                    Some((i, self.labels[i].as_str(), *failed_dep))
                }
                _ => None,
            })
            .collect()
    }

    /// A structured human-readable report of failures, skips and
    /// watchdog flags; empty when all jobs completed in budget.
    pub fn failure_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (id, label, msg) in self.failures() {
            let _ = writeln!(out, "FAILED  job {id} `{label}`: {msg}");
        }
        for (id, label, root) in self.skips() {
            let _ = writeln!(
                out,
                "SKIPPED job {id} `{label}`: dependency `{}` (job {root}) failed",
                self.labels[root]
            );
        }
        for &id in &self.timed_out {
            let _ = writeln!(
                out,
                "OVERTIME job {id} `{}` exceeded the budget",
                self.labels[id]
            );
        }
        out
    }

    /// Unwraps the completed values in job-id order.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorKind::Execution`](tcor_common::ErrorKind)
    /// error carrying the failure summary if any job failed or was
    /// skipped.
    pub fn into_results(self) -> TcorResult<Vec<T>> {
        if !self.all_completed() {
            let failed = self.failures().len();
            let skipped = self.skips().len();
            return Err(TcorError::execution(format!(
                "{failed} job(s) failed, {skipped} skipped:\n{}",
                self.failure_summary().trim_end()
            )));
        }
        Ok(self
            .outcomes
            .into_iter()
            .filter_map(JobOutcome::completed)
            .collect())
    }
}

/// Stringifies a panic payload (the common `&str`/`String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A job body as stored in the executor: boxed, claimed exactly once.
type BoxedTask<'g, T> = Box<dyn FnOnce(&JobCtx<'_>) -> T + Send + 'g>;

struct Coord {
    /// Jobs sitting in some queue, not yet claimed.
    queued: usize,
    /// Jobs not yet completed (queued + running + dep-blocked).
    unfinished: usize,
}

struct Shared<'g, 'env, T> {
    queues: Vec<Mutex<VecDeque<usize>>>,
    coord: Mutex<Coord>,
    cv: Condvar,
    /// Remaining dependency count per job; the worker that drops one to
    /// zero enqueues it.
    pending: Vec<AtomicUsize>,
    dependents: Vec<Vec<usize>>,
    labels: Vec<String>,
    tasks: Vec<Mutex<Option<BoxedTask<'g, T>>>>,
    results: Vec<Mutex<Option<JobOutcome<T>>>>,
    /// `0` = clean; otherwise `root failed job id + 1`, installed by
    /// whichever failed/skipped predecessor got there first.
    poisoned: Vec<AtomicUsize>,
    /// Start instant of the currently running job, for the watchdog.
    started: Vec<Mutex<Option<Instant>>>,
    /// Whether the watchdog (or the post-run check) already flagged
    /// the job, so it is reported at most once.
    flagged: Vec<AtomicBool>,
    timed_out: Mutex<Vec<usize>>,
    opts: &'env ExecOptions,
    store: &'env ArtifactStore,
    telemetry: &'env Telemetry,
}

impl<T> Shared<'_, '_, T> {
    fn lock<'m, U>(m: &'m Mutex<U>) -> std::sync::MutexGuard<'m, U> {
        // Job panics are contained before they can poison these locks;
        // any residual poisoning (e.g. an allocation failure) leaves
        // single-step updates that are safe to keep using.
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queues `job` on `worker`'s deque and wakes one sleeper.
    fn push(&self, worker: usize, job: usize) {
        Self::lock(&self.queues[worker]).push_back(job);
        Self::lock(&self.coord).queued += 1;
        self.cv.notify_one();
    }

    /// Own queue (LIFO) first, then steal round-robin (FIFO).
    fn try_claim(&self, worker: usize) -> Option<usize> {
        if let Some(j) = Self::lock(&self.queues[worker]).pop_back() {
            Self::lock(&self.coord).queued -= 1;
            return Some(j);
        }
        let n = self.queues.len();
        for k in 1..n {
            let victim = (worker + k) % n;
            if let Some(j) = Self::lock(&self.queues[victim]).pop_front() {
                Self::lock(&self.coord).queued -= 1;
                return Some(j);
            }
        }
        None
    }

    /// Records `outcome` for `job`, propagates poison (`root id + 1`,
    /// `0` for none) to dependents, unblocks them, and retires the job.
    fn finish(&self, worker: usize, job: usize, outcome: JobOutcome<T>, poison: usize) {
        *Self::lock(&self.results[job]) = Some(outcome);
        // Unblock dependents; newly ready ones run on this worker's
        // queue (their inputs are hot here), idle workers steal.
        for &d in &self.dependents[job] {
            if poison != 0 {
                // First poisoner wins, so every skip reports one stable
                // root failure.
                let _ = self.poisoned[d].compare_exchange(
                    0,
                    poison,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
            if self.pending[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.push(worker, d);
            }
        }
        let mut coord = Self::lock(&self.coord);
        coord.unfinished -= 1;
        if coord.unfinished == 0 {
            self.cv.notify_all();
        }
    }

    /// Flags `job` as over budget exactly once (watchdog or post-run).
    fn flag_overtime(&self, job: usize, elapsed: Duration, budget: Duration) {
        if !self.flagged[job].swap(true, Ordering::Relaxed) {
            self.telemetry
                .job_timeout(job, &self.labels[job], elapsed, budget);
            Self::lock(&self.timed_out).push(job);
        }
    }

    fn run_job(&self, worker: usize, job: usize) {
        let label = &self.labels[job];
        let poison = self.poisoned[job].load(Ordering::Acquire);
        if poison != 0 {
            let root = poison - 1;
            self.telemetry
                .job_skipped(job, label, root, &self.labels[root]);
            self.finish(
                worker,
                job,
                JobOutcome::Skipped { failed_dep: root },
                poison,
            );
            return;
        }
        let Some(work) = Self::lock(&self.tasks[job]).take() else {
            // Unreachable by construction (each id is claimed once);
            // recorded as a failure rather than tearing down the pool.
            let msg = "executor invariant violated: job claimed twice".to_string();
            self.telemetry.job_failed(job, label, worker, &msg);
            self.finish(worker, job, JobOutcome::Failed { panic_msg: msg }, job + 1);
            return;
        };
        let fault = self
            .opts
            .fault_plan
            .as_ref()
            .and_then(|p| p.job_fault(label).map(|f| (f, p.seed())));
        let ctx = JobCtx::new(self.store);
        self.telemetry.job_start(job, label, worker);
        let t0 = Instant::now();
        *Self::lock(&self.started[job]) = Some(t0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some((JobFault::Panic, seed)) => {
                    panic!("injected fault: panic in `{label}` (plan seed {seed})")
                }
                Some((JobFault::Delay(d), _)) => std::thread::sleep(d),
                None => {}
            }
            work(&ctx)
        }));
        let elapsed = t0.elapsed();
        *Self::lock(&self.started[job]) = None;
        if let Some(budget) = self.opts.job_timeout {
            if elapsed > budget {
                self.flag_overtime(job, elapsed, budget);
            }
        }
        match result {
            Ok(out) => {
                self.telemetry
                    .job_end(job, label, worker, ctx.take_counters());
                self.finish(worker, job, JobOutcome::Completed(out), 0);
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                self.telemetry.job_failed(job, label, worker, &msg);
                self.finish(worker, job, JobOutcome::Failed { panic_msg: msg }, job + 1);
            }
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if let Some(job) = self.try_claim(worker) {
                self.run_job(worker, job);
                continue;
            }
            let mut coord = Self::lock(&self.coord);
            loop {
                if coord.unfinished == 0 {
                    return;
                }
                if coord.queued > 0 {
                    break; // retry claiming outside the coord lock
                }
                coord = self.cv.wait(coord).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// The watchdog: polls running jobs against `budget` and flags any
    /// over it while they run (completion-time checks would only see
    /// overruns after the fact). Exits when the run drains.
    fn watchdog_loop(&self, budget: Duration) {
        let poll = (budget / 4).clamp(Duration::from_millis(10), Duration::from_millis(500));
        loop {
            {
                let coord = Self::lock(&self.coord);
                if coord.unfinished == 0 {
                    return;
                }
                let (coord, _) = self
                    .cv
                    .wait_timeout(coord, poll)
                    .unwrap_or_else(PoisonError::into_inner);
                if coord.unfinished == 0 {
                    return;
                }
            }
            let now = Instant::now();
            for job in 0..self.started.len() {
                if self.flagged[job].load(Ordering::Relaxed) {
                    continue;
                }
                let started = *Self::lock(&self.started[job]);
                if let Some(t0) = started {
                    let elapsed = now.saturating_duration_since(t0);
                    if elapsed > budget {
                        self.flag_overtime(job, elapsed, budget);
                    }
                }
            }
        }
    }
}

/// Builds the per-job bookkeeping shared by both executors.
struct Prepared<'g, T> {
    pending: Vec<AtomicUsize>,
    dependents: Vec<Vec<usize>>,
    labels: Vec<String>,
    tasks: Vec<Mutex<Option<BoxedTask<'g, T>>>>,
    roots: Vec<usize>,
}

fn prepare<T>(graph: JobGraph<'_, T>) -> Prepared<'_, T> {
    let jobs = graph.into_jobs();
    let n = jobs.len();
    let mut p = Prepared {
        pending: Vec::with_capacity(n),
        dependents: vec![Vec::new(); n],
        labels: Vec::with_capacity(n),
        tasks: Vec::with_capacity(n),
        roots: Vec::new(),
    };
    for (i, job) in jobs.into_iter().enumerate() {
        if job.deps.is_empty() {
            p.roots.push(i);
        }
        p.pending.push(AtomicUsize::new(job.deps.len()));
        for JobId(d) in job.deps {
            p.dependents[d].push(i);
        }
        p.labels.push(job.label);
        p.tasks.push(Mutex::new(Some(job.work)));
    }
    p
}

/// Runs the graph on `workers` threads and returns the per-job report
/// ordered by job id. An effective worker count of 1 (after clamping to
/// the job count) runs inline on the calling thread via
/// [`execute_serial`] — same outcomes, no thread, queue or condvar
/// overhead, so single-core parallel runs cost the same as `--serial`.
/// Panicking jobs are contained (never propagated): see [`RunReport`].
pub fn execute<T: Send>(
    graph: JobGraph<'_, T>,
    workers: usize,
    opts: &ExecOptions,
    store: &ArtifactStore,
    telemetry: &Telemetry,
) -> RunReport<T> {
    let n = graph.len();
    if n == 0 {
        return RunReport {
            outcomes: Vec::new(),
            labels: Vec::new(),
            timed_out: Vec::new(),
        };
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        // One worker would drain the queue in topological id order
        // anyway; the serial path does exactly that without paying for
        // the pool machinery (serial and parallel outputs are already
        // bit-identical — this makes the times match too).
        return execute_serial(graph, opts, store, telemetry);
    }
    let prepared = prepare(graph);

    let shared = Shared {
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        coord: Mutex::new(Coord {
            queued: 0,
            unfinished: n,
        }),
        cv: Condvar::new(),
        pending: prepared.pending,
        dependents: prepared.dependents,
        labels: prepared.labels,
        tasks: prepared.tasks,
        results: (0..n).map(|_| Mutex::new(None)).collect(),
        poisoned: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        started: (0..n).map(|_| Mutex::new(None)).collect(),
        flagged: (0..n).map(|_| AtomicBool::new(false)).collect(),
        timed_out: Mutex::new(Vec::new()),
        opts,
        store,
        telemetry,
    };
    // Seed roots round-robin so the pool starts balanced.
    for (k, &r) in prepared.roots.iter().enumerate() {
        shared.push(k % workers, r);
    }

    std::thread::scope(|s| {
        if opts.job_timeout.is_some() {
            let shared = &shared;
            let budget = opts.job_timeout.unwrap_or_default();
            let _ = std::thread::Builder::new()
                .name("tcor-watchdog".to_string())
                .spawn_scoped(s, move || shared.watchdog_loop(budget));
        }
        for w in 1..workers {
            let shared = &shared;
            if std::thread::Builder::new()
                .name(format!("tcor-runner-{w}"))
                .spawn_scoped(s, move || shared.worker_loop(w))
                .is_err()
            {
                // Spawn failure degrades parallelism, never correctness:
                // the remaining workers (at least worker 0) drain the
                // whole graph.
                telemetry.note(format!("worker {w} failed to spawn; continuing degraded"));
            }
        }
        shared.worker_loop(0);
    });

    let outcomes = shared
        .results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or(JobOutcome::Failed {
                    panic_msg: "executor invariant violated: job never ran".to_string(),
                })
        })
        .collect();
    RunReport {
        outcomes,
        labels: shared.labels,
        timed_out: shared
            .timed_out
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
    }
}

/// The reference path: runs every job on the calling thread in id
/// order (ids are topological by construction), with identical
/// containment semantics, telemetry recording and outcomes as
/// [`execute`]. Over-budget jobs are flagged at completion (there is
/// no concurrent watchdog).
pub fn execute_serial<T>(
    graph: JobGraph<'_, T>,
    opts: &ExecOptions,
    store: &ArtifactStore,
    telemetry: &Telemetry,
) -> RunReport<T> {
    let prepared = prepare(graph);
    let n = prepared.labels.len();
    let mut outcomes: Vec<JobOutcome<T>> = Vec::with_capacity(n);
    // `0` = clean, else root failed job id + 1 (ids are topological, so
    // a single forward pass propagates poison transitively).
    let mut poisoned = vec![0usize; n];
    let mut timed_out = Vec::new();
    for (i, task) in prepared.tasks.into_iter().enumerate() {
        let label = &prepared.labels[i];
        let poison = poisoned[i];
        if poison != 0 {
            let root = poison - 1;
            telemetry.job_skipped(i, label, root, &prepared.labels[root]);
            for &d in &prepared.dependents[i] {
                if poisoned[d] == 0 {
                    poisoned[d] = poison;
                }
            }
            outcomes.push(JobOutcome::Skipped { failed_dep: root });
            continue;
        }
        let Some(work) = task.into_inner().unwrap_or_else(PoisonError::into_inner) else {
            // Unreachable by construction; recorded, not propagated.
            let msg = "executor invariant violated: job claimed twice".to_string();
            telemetry.job_failed(i, label, 0, &msg);
            for &d in &prepared.dependents[i] {
                if poisoned[d] == 0 {
                    poisoned[d] = i + 1;
                }
            }
            outcomes.push(JobOutcome::Failed { panic_msg: msg });
            continue;
        };
        let fault = opts
            .fault_plan
            .as_ref()
            .and_then(|p| p.job_fault(label).map(|f| (f, p.seed())));
        let ctx = JobCtx::new(store);
        telemetry.job_start(i, label, 0);
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some((JobFault::Panic, seed)) => {
                    panic!("injected fault: panic in `{label}` (plan seed {seed})")
                }
                Some((JobFault::Delay(d), _)) => std::thread::sleep(d),
                None => {}
            }
            work(&ctx)
        }));
        let elapsed = t0.elapsed();
        if let Some(budget) = opts.job_timeout {
            if elapsed > budget {
                telemetry.job_timeout(i, label, elapsed, budget);
                timed_out.push(i);
            }
        }
        match result {
            Ok(out) => {
                telemetry.job_end(i, label, 0, ctx.take_counters());
                outcomes.push(JobOutcome::Completed(out));
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                telemetry.job_failed(i, label, 0, &msg);
                for &d in &prepared.dependents[i] {
                    if poisoned[d] == 0 {
                        poisoned[d] = i + 1;
                    }
                }
                outcomes.push(JobOutcome::Failed { panic_msg: msg });
            }
        }
    }
    RunReport {
        outcomes,
        labels: prepared.labels,
        timed_out,
    }
}

/// Fans a flat list of independent tasks across `workers` threads and
/// returns their results in input order.
///
/// The light-weight companion to [`execute`] for dependency-free
/// fan-out (e.g. per-set shard ranges in the miss-curve engine): no
/// graph to declare, no report to unpack. With one effective worker (or
/// one task) the tasks run inline on the calling thread with zero
/// overhead, preserving the single-core guarantee of [`execute`].
///
/// # Panics
///
/// A panicking task panics the caller (in the parallel case, after the
/// remaining tasks finish): unlike [`execute`], there is no outcome
/// report to record a contained failure in, and callers pass closures
/// that are not expected to fail.
pub fn scatter<'a, T: Send + 'a>(
    workers: usize,
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'a>>,
) -> Vec<T> {
    if workers <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let mut graph: JobGraph<'a, T> = JobGraph::new();
    for (i, task) in tasks.into_iter().enumerate() {
        graph.add_job(format!("scatter-{i}"), &[], move |_| task());
    }
    let store = ArtifactStore::new();
    let telemetry = Telemetry::new();
    let report = execute(graph, workers, &ExecOptions::default(), &store, &telemetry);
    match report.into_results() {
        Ok(results) => results,
        Err(failures) => panic!("scatter task failed: {failures}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn diamond(counter: &AtomicU64) -> JobGraph<'_, u64> {
        // a → {b, c} → d ; d must observe both b and c done.
        let mut g = JobGraph::new();
        let a = g.add_job("a", &[], move |_| {
            counter.fetch_add(1, Ordering::SeqCst);
            1
        });
        let b = g.add_job("b", &[a], move |_| {
            counter.fetch_add(10, Ordering::SeqCst);
            2
        });
        let c = g.add_job("c", &[a], move |_| {
            counter.fetch_add(100, Ordering::SeqCst);
            3
        });
        g.add_job("d", &[b, c], move |_| counter.load(Ordering::SeqCst));
        g
    }

    fn run(graph: JobGraph<'_, u64>, workers: usize) -> RunReport<u64> {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        execute(graph, workers, &ExecOptions::default(), &store, &t)
    }

    #[test]
    fn serial_and_parallel_agree_on_a_diamond() {
        for workers in [1, 2, 4, 8] {
            let counter = AtomicU64::new(0);
            let out = run(diamond(&counter), workers).into_results().unwrap();
            assert_eq!(out, vec![1, 2, 3, 111], "workers={workers}");
        }
        let counter = AtomicU64::new(0);
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let out = execute_serial(diamond(&counter), &ExecOptions::default(), &store, &t)
            .into_results()
            .unwrap();
        assert_eq!(out, vec![1, 2, 3, 111]);
    }

    #[test]
    fn wide_graph_runs_every_job_once() {
        let n = 300;
        let hits = AtomicU64::new(0);
        let mut g = JobGraph::new();
        for i in 0..n {
            let hits = &hits;
            g.add_job(format!("j{i}"), &[], move |_| {
                hits.fetch_add(1, Ordering::SeqCst);
                i as u64
            });
        }
        let out = run(g, 8).into_results().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), n as u64);
        assert_eq!(out, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn deep_chain_respects_ordering() {
        // Each link appends; any reordering would change the trace.
        let mut g = JobGraph::new();
        let trace = &*Box::leak(Box::new(Mutex::new(Vec::<usize>::new())));
        let mut prev: Option<JobId> = None;
        for i in 0..64 {
            let deps: Vec<JobId> = prev.into_iter().collect();
            prev = Some(g.add_job(format!("link{i}"), &deps, move |_| {
                trace.lock().unwrap().push(i);
                i as u64
            }));
        }
        run(g, 4);
        assert_eq!(*trace.lock().unwrap(), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_share_artifacts_through_the_store() {
        let mut g = JobGraph::new();
        for i in 0..16 {
            g.add_job(format!("j{i}"), &[], move |ctx: &JobCtx<'_>| {
                *ctx.store().get_or_compute(0xBEEF, || 7u64).unwrap()
            });
        }
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let out = execute(g, 4, &ExecOptions::default(), &store, &t)
            .into_results()
            .unwrap();
        assert!(out.iter().all(|&v| v == 7));
        assert_eq!(store.computes(), 1);
        assert_eq!(store.hits(), 15);
    }

    #[test]
    fn telemetry_records_every_job() {
        let counter = AtomicU64::new(0);
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        execute(diamond(&counter), 2, &ExecOptions::default(), &store, &t);
        let records = t.records();
        assert_eq!(records.len(), 4);
        let mut labels: Vec<_> = records.iter().map(|r| r.label.clone()).collect();
        labels.sort();
        assert_eq!(labels, ["a", "b", "c", "d"]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let out: Vec<()> = execute(JobGraph::new(), 4, &ExecOptions::default(), &store, &t)
            .into_results()
            .unwrap();
        assert!(out.is_empty());
    }

    /// One panicking job fails alone; its dependents are skipped with
    /// the root cause; every independent job completes.
    fn assert_contained(report: RunReport<u64>) {
        assert!(!report.all_completed());
        assert_eq!(report.outcomes[0], JobOutcome::Completed(1), "a ran");
        assert_eq!(report.outcomes[2], JobOutcome::Completed(3), "c ran");
        match &report.outcomes[1] {
            JobOutcome::Failed { panic_msg } => assert!(panic_msg.contains("boom b")),
            other => panic!("b should fail, got {other:?}"),
        }
        assert_eq!(report.outcomes[3], JobOutcome::Skipped { failed_dep: 1 });
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].1, "b");
        assert_eq!(report.skips(), vec![(3, "d", 1)]);
        assert!(report.failure_summary().contains("FAILED  job 1 `b`"));
        assert!(report.failure_summary().contains("SKIPPED job 3 `d`"));
        assert!(report.into_results().is_err());
    }

    fn panicky_diamond() -> JobGraph<'static, u64> {
        let mut g = JobGraph::new();
        let a = g.add_job("a", &[], |_| 1);
        let b = g.add_job("b", &[a], |_| -> u64 { panic!("boom b") });
        let c = g.add_job("c", &[a], |_| 3);
        g.add_job("d", &[b, c], |_| 4);
        g
    }

    #[test]
    fn panic_is_contained_and_dependents_skip_parallel() {
        for workers in [1, 2, 4] {
            assert_contained(run(panicky_diamond(), workers));
        }
    }

    #[test]
    fn panic_is_contained_and_dependents_skip_serial() {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        assert_contained(execute_serial(
            panicky_diamond(),
            &ExecOptions::default(),
            &store,
            &t,
        ));
    }

    #[test]
    fn skip_propagates_transitively_to_the_root_failure() {
        let mut g: JobGraph<'_, u64> = JobGraph::new();
        let a = g.add_job("a", &[], |_| -> u64 { panic!("root") });
        let b = g.add_job("b", &[a], |_| 2);
        g.add_job("c", &[b], |_| 3);
        let report = run(g, 2);
        assert_eq!(report.outcomes[1], JobOutcome::Skipped { failed_dep: 0 });
        assert_eq!(report.outcomes[2], JobOutcome::Skipped { failed_dep: 0 });
    }

    #[test]
    fn injected_fault_panics_the_targeted_job_only() {
        let counter = AtomicU64::new(0);
        let opts = ExecOptions {
            fault_plan: Some(FaultPlan::panic_on("b")),
            ..ExecOptions::default()
        };
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let report = execute(diamond(&counter), 2, &opts, &store, &t);
        match &report.outcomes[1] {
            JobOutcome::Failed { panic_msg } => {
                assert!(panic_msg.contains("injected fault"), "{panic_msg}");
            }
            other => panic!("expected injected failure, got {other:?}"),
        }
        assert!(report.outcomes[0].is_completed());
        assert!(report.outcomes[2].is_completed());
        assert_eq!(report.outcomes[3], JobOutcome::Skipped { failed_dep: 1 });
    }

    #[test]
    fn watchdog_flags_over_budget_jobs() {
        let mut g: JobGraph<'_, u64> = JobGraph::new();
        g.add_job("slow", &[], |_| {
            std::thread::sleep(Duration::from_millis(60));
            1
        });
        g.add_job("fast", &[], |_| 2);
        let opts = ExecOptions {
            job_timeout: Some(Duration::from_millis(10)),
            ..ExecOptions::default()
        };
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let report = execute(g, 2, &opts, &store, &t);
        assert!(report.all_completed(), "overtime jobs still complete");
        assert_eq!(report.timed_out, vec![0]);

        // Serial flags at completion time.
        let mut g: JobGraph<'_, u64> = JobGraph::new();
        g.add_job("slow", &[], |_| {
            std::thread::sleep(Duration::from_millis(30));
            1
        });
        let report = execute_serial(g, &opts, &store, &Telemetry::new());
        assert_eq!(report.timed_out, vec![0]);
    }

    #[test]
    fn one_worker_runs_inline_on_the_calling_thread() {
        // The single-core bugfix: workers == 1 must not spawn a pool.
        // Every job observing the caller's thread id proves the inline
        // delegation; >1 workers on independent jobs still uses threads.
        let caller = std::thread::current().id();
        let mut g: JobGraph<'_, bool> = JobGraph::new();
        for i in 0..6 {
            g.add_job(format!("j{i}"), &[], move |_| {
                std::thread::current().id() == caller
            });
        }
        let out = run_bools(g, 1);
        assert!(out.iter().all(|&on_caller| on_caller));

        // Clamping does it too: 8 workers, 1 job -> inline.
        let mut g: JobGraph<'_, bool> = JobGraph::new();
        g.add_job("only", &[], move |_| std::thread::current().id() == caller);
        assert!(run_bools(g, 8)[0]);
    }

    fn run_bools(graph: JobGraph<'_, bool>, workers: usize) -> Vec<bool> {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        execute(graph, workers, &ExecOptions::default(), &store, &t)
            .into_results()
            .unwrap()
    }

    #[test]
    fn scatter_returns_results_in_input_order() {
        for workers in [1usize, 2, 4] {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = scatter(workers, tasks);
            let expect: Vec<usize> = (0..16usize).map(|i| i * i).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn scatter_with_one_worker_stays_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let tasks: Vec<Box<dyn FnOnce() -> bool + Send>> = (0..4)
            .map(|_| {
                Box::new(move || std::thread::current().id() == caller)
                    as Box<dyn FnOnce() -> bool + Send>
            })
            .collect();
        assert!(scatter(1, tasks).into_iter().all(|on_caller| on_caller));
    }

    #[test]
    fn scatter_borrows_from_the_caller() {
        // Non-'static capture: tasks may read caller-owned data.
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&[u64]> = data.chunks(25).collect();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = chunks
            .into_iter()
            .map(|c| {
                Box::new(move || c.iter().sum::<u64>()) as Box<dyn FnOnce() -> u64 + Send + '_>
            })
            .collect();
        let partials = scatter(2, tasks);
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    }
}
