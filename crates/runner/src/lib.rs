//! # tcor-runner
//!
//! The experiment-execution subsystem: turns the suite's ~25 paper
//! experiments (and the 60 benchmark × configuration cells beneath
//! them) into a dependency graph of [`Job`]s executed by a
//! work-stealing thread pool, with shared intermediates (generated
//! scenes, binned Parameter Buffers, frame reports) memoized in a
//! content-addressed [`ArtifactStore`].
//!
//! The design mirrors the paper's own observation: the Parameter
//! Buffer's future schedule is known when it is built, so nothing need
//! be computed twice. Here the "schedule" is the experiment DAG — every
//! shared artifact is keyed by a stable hash of the configuration that
//! produces it and computed exactly once, whichever job asks first.
//!
//! Guarantees:
//!
//! - **Determinism** — job results are assembled by job id, so the
//!   output of [`execute`] is bit-identical to [`execute_serial`]
//!   regardless of worker count or schedule (given deterministic jobs).
//! - **Std-only** — no external crates; the pool is
//!   [`std::thread::scope`] + `Mutex`/`Condvar`, hashing is
//!   `tcor_common::fxhash64`, JSON is the hand-rolled [`json`] writer.
//! - **Observability** — [`Telemetry`] records per-job wall time and
//!   user counters as JSON-lines; [`golden`] diffs experiment output
//!   against committed golden results.
//! - **Fault isolation** — a panicking job is contained
//!   ([`JobOutcome::Failed`]) and its dependents skipped while
//!   independent jobs complete; a [`FaultPlan`] injects deterministic
//!   panics, stalls and I/O errors to exercise every recovery path;
//!   the [`RunManifest`] makes partial runs resumable.

pub mod executor;
pub mod fault;
pub mod golden;
pub mod job;
pub mod json;
pub mod manifest;
pub mod store;
pub mod telemetry;

pub use executor::{
    default_workers, execute, execute_serial, scatter, ExecOptions, JobOutcome, RunReport,
};
pub use fault::{FaultPlan, JobFault};
pub use golden::{GoldenStatus, GoldenStore, LineDiff};
pub use job::{Job, JobCtx, JobGraph, JobId};
pub use json::Json;
pub use manifest::{RunManifest, RunStatus};
pub use store::ArtifactStore;
pub use telemetry::{load_jsonl, JobRecord, Telemetry, TelemetryLog};
