//! The job model: experiment cells as nodes of a dependency DAG.
//!
//! A [`Job`] is one unit of work — "calibrate the CCS scene",
//! "run CCS × TCOR-64KiB", "render fig14". Dependencies must point at
//! already-added jobs, so the graph is acyclic by construction and job
//! ids are a valid topological order (the serial executor just walks
//! them in sequence).

use crate::store::ArtifactStore;
use std::sync::{Mutex, PoisonError};

/// Identifier of a job within one [`JobGraph`]; doubles as the index of
/// the job's slot in the executor's result vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub usize);

/// What a job's closure sees while running: the shared artifact store
/// plus a sink for simulation counters that end up in telemetry.
pub struct JobCtx<'s> {
    store: &'s ArtifactStore,
    counters: Mutex<Vec<(String, u64)>>,
}

impl<'s> JobCtx<'s> {
    /// A context over `store`.
    pub fn new(store: &'s ArtifactStore) -> Self {
        JobCtx {
            store,
            counters: Mutex::new(Vec::new()),
        }
    }

    /// The shared content-addressed store.
    pub fn store(&self) -> &'s ArtifactStore {
        self.store
    }

    /// Reports a named counter (simulated accesses, misses, …) for this
    /// job's telemetry record. Repeated names accumulate.
    pub fn counter(&self, name: &str, value: u64) {
        // Poisoning is recoverable: entries are pushed/updated in one
        // step, so a panicking job cannot leave the list inconsistent.
        let mut c = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = c.iter_mut().find(|(n, _)| n == name) {
            entry.1 += value;
        } else {
            c.push((name.to_string(), value));
        }
    }

    /// Drains the recorded counters (executor-side).
    pub(crate) fn take_counters(&self) -> Vec<(String, u64)> {
        std::mem::take(&mut self.counters.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// One node: a label for telemetry, dependency edges, and the work
/// closure.
pub struct Job<'a, T> {
    /// Telemetry label ("cell:CCS/tcor64", "exp:fig14", …).
    pub label: String,
    /// Jobs that must complete before this one starts.
    pub deps: Vec<JobId>,
    /// The work; taken (once) by whichever worker claims the job.
    pub work: Box<dyn FnOnce(&JobCtx<'_>) -> T + Send + 'a>,
}

/// A dependency graph of jobs all producing the same output type.
///
/// Heterogeneous pipelines (the sim's scene/cell/table jobs) return an
/// enum or `Option` and pass bulky intermediates through the
/// [`ArtifactStore`] instead of through return values.
#[derive(Default)]
pub struct JobGraph<'a, T> {
    jobs: Vec<Job<'a, T>>,
}

impl<'a, T> JobGraph<'a, T> {
    /// An empty graph.
    pub fn new() -> Self {
        JobGraph { jobs: Vec::new() }
    }

    /// Adds a job depending on `deps` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id has not been added yet — this is what
    /// keeps the graph acyclic and ids topologically ordered.
    pub fn add_job(
        &mut self,
        label: impl Into<String>,
        deps: &[JobId],
        work: impl FnOnce(&JobCtx<'_>) -> T + Send + 'a,
    ) -> JobId {
        let id = JobId(self.jobs.len());
        for d in deps {
            assert!(
                d.0 < id.0,
                "job dependency {} not added before job {}",
                d.0,
                id.0
            );
        }
        self.jobs.push(Job {
            label: label.into(),
            deps: deps.to_vec(),
            work: Box::new(work),
        });
        id
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// The labels of all jobs, indexed by [`JobId`] — snapshot them
    /// before execution to attribute failures and skips afterwards.
    pub fn labels(&self) -> Vec<String> {
        self.jobs.iter().map(|j| j.label.clone()).collect()
    }

    /// Whether the graph has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Consumes the graph (executor-side).
    pub(crate) fn into_jobs(self) -> Vec<Job<'a, T>> {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut g: JobGraph<'_, u32> = JobGraph::new();
        let a = g.add_job("a", &[], |_| 1);
        let b = g.add_job("b", &[a], |_| 2);
        let c = g.add_job("c", &[a, b], |_| 3);
        assert_eq!((a, b, c), (JobId(0), JobId(1), JobId(2)));
        assert_eq!(g.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not added before")]
    fn forward_dependency_rejected() {
        let mut g: JobGraph<'_, ()> = JobGraph::new();
        g.add_job("bad", &[JobId(5)], |_| ());
    }

    #[test]
    fn counters_accumulate_by_name() {
        let store = ArtifactStore::new();
        let ctx = JobCtx::new(&store);
        ctx.counter("accesses", 10);
        ctx.counter("misses", 2);
        ctx.counter("accesses", 5);
        let mut c = ctx.take_counters();
        c.sort();
        assert_eq!(
            c,
            vec![("accesses".to_string(), 15), ("misses".to_string(), 2)]
        );
    }
}
