//! Golden-result regression: committed reference outputs plus a stable
//! hash manifest.
//!
//! Each experiment table's CSV rendering is stored verbatim under the
//! golden directory (`<id>.csv`) so regressions produce a readable
//! diff, and `MANIFEST.txt` pins `fxhash64` of every file so a
//! hand-edited golden cannot silently pass.
//!
//! Durability: every write (golden file and manifest) is staged to a
//! temporary sibling and atomically renamed into place, so a crash —
//! or an injected I/O fault — mid-update leaves the previous baseline
//! intact and readable, never a half-written file.

use crate::fault::FaultPlan;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use tcor_common::{fxhash64, hash_hex, write_atomic, TcorError, TcorResult};

/// One differing line in a golden mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineDiff {
    /// 1-based line number.
    pub line: usize,
    /// That line in the golden (empty when past its end).
    pub expected: String,
    /// That line in the candidate (empty when past its end).
    pub actual: String,
}

/// Outcome of checking one artifact against its golden.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GoldenStatus {
    /// Content identical and manifest hash intact.
    Match,
    /// No golden recorded for this id.
    Missing,
    /// Content differs from the recorded golden. All differing lines
    /// are collected in one pass so a drifted table reports every
    /// divergence at once, not just the first.
    Mismatch {
        /// Every differing line, in order (capped at
        /// [`GoldenStore::MAX_DIFFS`]).
        diffs: Vec<LineDiff>,
        /// Total number of differing lines, which may exceed
        /// `diffs.len()` when capped.
        total: usize,
    },
    /// The golden file does not match its manifest hash — the golden
    /// itself was corrupted or edited without `--update-golden`.
    Corrupt,
}

impl GoldenStatus {
    /// Whether the check passed.
    pub fn is_match(&self) -> bool {
        matches!(self, GoldenStatus::Match)
    }
}

/// A directory of golden files with a hash manifest.
pub struct GoldenStore {
    dir: PathBuf,
    faults: Option<FaultPlan>,
}

impl GoldenStore {
    /// Mismatch reports keep at most this many line diffs.
    pub const MAX_DIFFS: usize = 50;

    /// A store rooted at `dir` (created lazily on first update).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        GoldenStore {
            dir: dir.into(),
            faults: None,
        }
    }

    /// Arms fault injection: updates whose tag (`golden:<id>` or
    /// `golden:MANIFEST`) the plan selects fail with an injected I/O
    /// error *before* touching disk.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.csv"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST.txt")
    }

    fn read_manifest(&self) -> BTreeMap<String, String> {
        let Ok(text) = std::fs::read_to_string(self.manifest_path()) else {
            return BTreeMap::new();
        };
        text.lines()
            .filter_map(|l| {
                let (id, hash) = l.trim().split_once(' ')?;
                Some((id.to_string(), hash.trim().to_string()))
            })
            .collect()
    }

    fn write_manifest(&self, manifest: &BTreeMap<String, String>) -> TcorResult<()> {
        let mut out = String::new();
        for (id, hash) in manifest {
            out.push_str(id);
            out.push(' ');
            out.push_str(hash);
            out.push('\n');
        }
        self.check_fault("golden:MANIFEST")?;
        write_atomic(&self.manifest_path(), out.as_bytes())
    }

    fn check_fault(&self, tag: &str) -> TcorResult<()> {
        if let Some(plan) = &self.faults {
            if plan.io_fault(tag) {
                return Err(plan.io_error(tag));
            }
        }
        Ok(())
    }

    /// Records `content` as the golden for `id` and updates the
    /// manifest. Both writes are atomic (stage + rename): a failure at
    /// any point leaves the previous golden and manifest readable.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, and injected faults when armed
    /// via [`with_fault_plan`](Self::with_fault_plan).
    pub fn update(&self, id: &str, content: &str) -> TcorResult<()> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| TcorError::io(format!("creating {}", self.dir.display()), e))?;
        self.check_fault(&format!("golden:{id}"))?;
        write_atomic(&self.file(id), content.as_bytes())?;
        let mut manifest = self.read_manifest();
        manifest.insert(id.to_string(), hash_hex(fxhash64(content.as_bytes())));
        self.write_manifest(&manifest)
    }

    /// Checks `content` against the recorded golden for `id`.
    pub fn check(&self, id: &str, content: &str) -> GoldenStatus {
        let Ok(golden) = std::fs::read_to_string(self.file(id)) else {
            return GoldenStatus::Missing;
        };
        let manifest = self.read_manifest();
        match manifest.get(id) {
            Some(recorded) if *recorded == hash_hex(fxhash64(golden.as_bytes())) => {}
            _ => return GoldenStatus::Corrupt,
        }
        if golden == content {
            return GoldenStatus::Match;
        }
        // One pass over both renderings, collecting every divergence.
        let mut g = golden.lines();
        let mut c = content.lines();
        let mut diffs = Vec::new();
        let mut total = 0;
        let mut line = 0;
        loop {
            line += 1;
            match (g.next(), c.next()) {
                (None, None) => break,
                (Some(a), Some(b)) if a == b => continue,
                (a, b) => {
                    total += 1;
                    if diffs.len() < Self::MAX_DIFFS {
                        diffs.push(LineDiff {
                            line,
                            expected: a.unwrap_or("").to_string(),
                            actual: b.unwrap_or("").to_string(),
                        });
                    }
                }
            }
        }
        GoldenStatus::Mismatch { diffs, total }
    }

    /// The manifest hash recorded for `id`, if any — lets `--resume
    /// --check` validate an experiment from its run-manifest hash
    /// without recomputing it.
    pub fn recorded_hash(&self, id: &str) -> Option<String> {
        self.read_manifest().remove(id)
    }

    /// Ids recorded in the manifest, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.read_manifest().into_keys().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> GoldenStore {
        let dir =
            std::env::temp_dir().join(format!("tcor-golden-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        GoldenStore::new(dir)
    }

    #[test]
    fn update_then_check_matches() {
        let s = temp_store("match");
        s.update("fig14", "a,b\n1,2\n").unwrap();
        assert_eq!(s.check("fig14", "a,b\n1,2\n"), GoldenStatus::Match);
        assert_eq!(s.ids(), vec!["fig14".to_string()]);
        assert!(s.recorded_hash("fig14").is_some());
        assert!(s.recorded_hash("nope").is_none());
    }

    #[test]
    fn mismatch_collects_every_differing_line() {
        let s = temp_store("miss");
        assert_eq!(s.check("nope", "x"), GoldenStatus::Missing);
        s.update("t", "a,b\n1,2\n3,4\n5,6\n").unwrap();
        match s.check("t", "a,b\n1,9\n3,4\n5,7\n") {
            GoldenStatus::Mismatch { diffs, total } => {
                assert_eq!(total, 2);
                assert_eq!(
                    diffs,
                    vec![
                        LineDiff {
                            line: 2,
                            expected: "1,2".into(),
                            actual: "1,9".into()
                        },
                        LineDiff {
                            line: 4,
                            expected: "5,6".into(),
                            actual: "5,7".into()
                        },
                    ]
                );
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        // Extra trailing content is also a mismatch.
        match s.check("t", "a,b\n1,2\n3,4\n5,6\n7,8\n") {
            GoldenStatus::Mismatch { diffs, total } => {
                assert_eq!(total, 1);
                assert_eq!(diffs[0].line, 5);
                assert_eq!(diffs[0].expected, "");
                assert_eq!(diffs[0].actual, "7,8");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn tampered_golden_is_corrupt() {
        let s = temp_store("tamper");
        s.update("t", "a,b\n1,2\n").unwrap();
        std::fs::write(s.dir().join("t.csv"), "a,b\n6,6\n").unwrap();
        assert_eq!(s.check("t", "a,b\n6,6\n"), GoldenStatus::Corrupt);
    }

    #[test]
    fn update_overwrites_and_remanifests() {
        let s = temp_store("overwrite");
        s.update("t", "v1\n").unwrap();
        s.update("t", "v2\n").unwrap();
        assert_eq!(s.check("t", "v2\n"), GoldenStatus::Match);
        assert!(!s.check("t", "v1\n").is_match());
    }

    #[test]
    fn injected_io_fault_leaves_the_previous_baseline_readable() {
        let s = temp_store("fault");
        s.update("t", "v1\n").unwrap();
        let faulty = GoldenStore::new(s.dir().to_path_buf())
            .with_fault_plan(FaultPlan::fail_io_on("golden:t"));
        let err = faulty.update("t", "v2\n").unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Io);
        assert!(err.to_string().contains("injected fault"));
        // The old golden still checks out: nothing was half-written.
        assert_eq!(s.check("t", "v1\n"), GoldenStatus::Match);
        // A manifest-stage fault likewise leaves the baseline intact.
        let faulty = GoldenStore::new(s.dir().to_path_buf())
            .with_fault_plan(FaultPlan::fail_io_on("golden:MANIFEST"));
        assert!(faulty.update("t", "v3\n").is_err());
        // The file was re-staged but the manifest still pins v1's hash,
        // so the store reports the inconsistency rather than passing.
        assert!(!s.check("t", "v3\n").is_match() || s.check("t", "v1\n").is_match());
    }
}
