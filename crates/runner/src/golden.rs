//! Golden-result regression: committed reference outputs plus a stable
//! hash manifest.
//!
//! Each experiment table's CSV rendering is stored verbatim under the
//! golden directory (`<id>.csv`) so regressions produce a readable
//! diff, and `MANIFEST.txt` pins `fxhash64` of every file so a
//! hand-edited golden cannot silently pass.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use tcor_common::{fxhash64, hash_hex};

/// Outcome of checking one artifact against its golden.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GoldenStatus {
    /// Content identical and manifest hash intact.
    Match,
    /// No golden recorded for this id.
    Missing,
    /// Content differs from the recorded golden.
    Mismatch {
        /// 1-based first differing line.
        line: usize,
        /// That line in the golden (empty when past its end).
        expected: String,
        /// That line in the candidate (empty when past its end).
        actual: String,
    },
    /// The golden file does not match its manifest hash — the golden
    /// itself was corrupted or edited without `--update-golden`.
    Corrupt,
}

impl GoldenStatus {
    /// Whether the check passed.
    pub fn is_match(&self) -> bool {
        matches!(self, GoldenStatus::Match)
    }
}

/// A directory of golden files with a hash manifest.
pub struct GoldenStore {
    dir: PathBuf,
}

impl GoldenStore {
    /// A store rooted at `dir` (created lazily on first update).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        GoldenStore { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.csv"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST.txt")
    }

    fn read_manifest(&self) -> BTreeMap<String, String> {
        let Ok(text) = std::fs::read_to_string(self.manifest_path()) else {
            return BTreeMap::new();
        };
        text.lines()
            .filter_map(|l| {
                let (id, hash) = l.trim().split_once(' ')?;
                Some((id.to_string(), hash.trim().to_string()))
            })
            .collect()
    }

    fn write_manifest(&self, manifest: &BTreeMap<String, String>) -> io::Result<()> {
        let mut out = String::new();
        for (id, hash) in manifest {
            out.push_str(id);
            out.push(' ');
            out.push_str(hash);
            out.push('\n');
        }
        std::fs::write(self.manifest_path(), out)
    }

    /// Records `content` as the golden for `id` and updates the
    /// manifest.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn update(&self, id: &str, content: &str) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        std::fs::write(self.file(id), content)?;
        let mut manifest = self.read_manifest();
        manifest.insert(id.to_string(), hash_hex(fxhash64(content.as_bytes())));
        self.write_manifest(&manifest)
    }

    /// Checks `content` against the recorded golden for `id`.
    pub fn check(&self, id: &str, content: &str) -> GoldenStatus {
        let Ok(golden) = std::fs::read_to_string(self.file(id)) else {
            return GoldenStatus::Missing;
        };
        let manifest = self.read_manifest();
        match manifest.get(id) {
            Some(recorded) if *recorded == hash_hex(fxhash64(golden.as_bytes())) => {}
            _ => return GoldenStatus::Corrupt,
        }
        if golden == content {
            return GoldenStatus::Match;
        }
        let mut g = golden.lines();
        let mut c = content.lines();
        let mut line = 0;
        loop {
            line += 1;
            match (g.next(), c.next()) {
                (Some(a), Some(b)) if a == b => continue,
                (a, b) => {
                    return GoldenStatus::Mismatch {
                        line,
                        expected: a.unwrap_or("").to_string(),
                        actual: b.unwrap_or("").to_string(),
                    }
                }
            }
        }
    }

    /// Ids recorded in the manifest, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.read_manifest().into_keys().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> GoldenStore {
        let dir =
            std::env::temp_dir().join(format!("tcor-golden-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        GoldenStore::new(dir)
    }

    #[test]
    fn update_then_check_matches() {
        let s = temp_store("match");
        s.update("fig14", "a,b\n1,2\n").unwrap();
        assert_eq!(s.check("fig14", "a,b\n1,2\n"), GoldenStatus::Match);
        assert_eq!(s.ids(), vec!["fig14".to_string()]);
    }

    #[test]
    fn missing_and_mismatch_are_reported() {
        let s = temp_store("miss");
        assert_eq!(s.check("nope", "x"), GoldenStatus::Missing);
        s.update("t", "a,b\n1,2\n").unwrap();
        match s.check("t", "a,b\n1,3\n") {
            GoldenStatus::Mismatch {
                line,
                expected,
                actual,
            } => {
                assert_eq!(line, 2);
                assert_eq!(expected, "1,2");
                assert_eq!(actual, "1,3");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        // Extra trailing content is also a mismatch.
        assert!(!s.check("t", "a,b\n1,2\n3,4\n").is_match());
    }

    #[test]
    fn tampered_golden_is_corrupt() {
        let s = temp_store("tamper");
        s.update("t", "a,b\n1,2\n").unwrap();
        std::fs::write(s.dir().join("t.csv"), "a,b\n6,6\n").unwrap();
        assert_eq!(s.check("t", "a,b\n6,6\n"), GoldenStatus::Corrupt);
    }

    #[test]
    fn update_overwrites_and_remanifests() {
        let s = temp_store("overwrite");
        s.update("t", "v1\n").unwrap();
        s.update("t", "v2\n").unwrap();
        assert_eq!(s.check("t", "v2\n"), GoldenStatus::Match);
        assert!(!s.check("t", "v1\n").is_match());
    }
}
