//! The run manifest: a durable record of which experiments a run
//! completed, and the content hash of every table they produced.
//!
//! The artifact store is in-memory only, so after a partially failed
//! run the *tables* are gone — but the manifest survives (it is
//! written atomically after every experiment). `--resume` consults it
//! to re-execute only the experiments that failed, were skipped, or
//! were never attempted; experiments recorded `ok` are trusted via
//! their content hashes, which `--check` compares directly against the
//! golden manifest without recomputation.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use tcor_common::{write_atomic, TcorError, TcorResult};

/// How an experiment ended in the recorded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Completed; its table hashes are recorded.
    Ok,
    /// Its job (or a cell beneath it) panicked.
    Failed,
    /// Skipped because a dependency failed.
    Skipped,
}

impl RunStatus {
    fn name(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Failed => "failed",
            RunStatus::Skipped => "skipped",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(RunStatus::Ok),
            "failed" => Some(RunStatus::Failed),
            "skipped" => Some(RunStatus::Skipped),
            _ => None,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Entry {
    status: Option<RunStatus>,
    /// `(table id, fxhash64 hex of the CSV rendering)` — the same
    /// hash the golden manifest pins, so the two compare directly.
    tables: Vec<(String, String)>,
}

/// A manifest of one (possibly resumed) run, persisted at `path`.
///
/// Format: plain text, one record per line —
/// `experiment <id> <ok|failed|skipped>` or
/// `table <experiment id> <table id> <hash>` — diffable and
/// hand-inspectable like the golden manifest.
#[derive(Debug)]
pub struct RunManifest {
    path: PathBuf,
    entries: BTreeMap<String, Entry>,
}

impl RunManifest {
    /// An empty manifest that will persist at `path` (a fresh,
    /// non-resumed run).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        RunManifest {
            path: path.into(),
            entries: BTreeMap::new(),
        }
    }

    /// Loads the manifest at `path`; a missing file is an empty run
    /// (nothing to resume), not an error.
    ///
    /// # Errors
    ///
    /// Returns a corruption error for a malformed record — a manifest
    /// that cannot be trusted must not silently shrink the rerun set.
    pub fn load(path: impl Into<PathBuf>) -> TcorResult<Self> {
        let path = path.into();
        let mut entries: BTreeMap<String, Entry> = BTreeMap::new();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(RunManifest { path, entries });
            }
            Err(e) => return Err(TcorError::io(format!("reading {}", path.display()), e)),
        };
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let bad = || {
                TcorError::corruption(format!(
                    "{}: line {}: malformed run-manifest record `{line}`",
                    path.display(),
                    n + 1
                ))
            };
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("experiment") => {
                    let id = parts.next().ok_or_else(bad)?;
                    let status = parts.next().and_then(RunStatus::parse).ok_or_else(bad)?;
                    entries.entry(id.to_string()).or_default().status = Some(status);
                }
                Some("table") => {
                    let exp = parts.next().ok_or_else(bad)?;
                    let table = parts.next().ok_or_else(bad)?;
                    let hash = parts.next().ok_or_else(bad)?;
                    entries
                        .entry(exp.to_string())
                        .or_default()
                        .tables
                        .push((table.to_string(), hash.to_string()));
                }
                _ => return Err(bad()),
            }
        }
        Ok(RunManifest { path, entries })
    }

    /// Where the manifest persists.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records a completed experiment with its table hashes.
    pub fn record_ok(&mut self, id: &str, tables: Vec<(String, String)>) {
        self.entries.insert(
            id.to_string(),
            Entry {
                status: Some(RunStatus::Ok),
                tables,
            },
        );
    }

    /// Records a failed or skipped experiment (its tables, if any,
    /// are dropped — they cannot be trusted).
    pub fn record_status(&mut self, id: &str, status: RunStatus) {
        self.entries.insert(
            id.to_string(),
            Entry {
                status: Some(status),
                tables: Vec::new(),
            },
        );
    }

    /// The recorded status of `id`, if it was attempted.
    pub fn status(&self, id: &str) -> Option<RunStatus> {
        self.entries.get(id).and_then(|e| e.status)
    }

    /// Whether a resumed run must re-execute `id` (anything but a
    /// recorded `ok`).
    pub fn needs_rerun(&self, id: &str) -> bool {
        self.status(id) != Some(RunStatus::Ok)
    }

    /// The `(table id, hash)` pairs recorded for a completed `id`.
    pub fn table_hashes(&self, id: &str) -> &[(String, String)] {
        self.entries
            .get(id)
            .map(|e| e.tables.as_slice())
            .unwrap_or(&[])
    }

    /// Persists the manifest atomically (stage + rename): a crash mid
    /// save leaves the previous manifest intact.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self) -> TcorResult<()> {
        let mut out = String::new();
        for (id, entry) in &self.entries {
            if let Some(status) = entry.status {
                out.push_str(&format!("experiment {id} {}\n", status.name()));
            }
            for (table, hash) in &entry.tables {
                out.push_str(&format!("table {id} {table} {hash}\n"));
            }
        }
        write_atomic(&self.path, out.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tcor-manifest-{tag}-{}.txt", std::process::id()))
    }

    #[test]
    fn missing_file_is_an_empty_run() {
        let m = RunManifest::load(temp_path("nope-never-created")).unwrap();
        assert!(m.needs_rerun("fig14"));
        assert_eq!(m.status("fig14"), None);
        assert!(m.table_hashes("fig14").is_empty());
    }

    #[test]
    fn roundtrips_statuses_and_hashes() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut m = RunManifest::load(&path).unwrap();
        m.record_ok(
            "fig13",
            vec![
                ("fig13_ccs".into(), "00aa".into()),
                ("fig13_mc".into(), "00bb".into()),
            ],
        );
        m.record_status("fig14", RunStatus::Failed);
        m.record_status("fig15", RunStatus::Skipped);
        m.save().unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back.status("fig13"), Some(RunStatus::Ok));
        assert!(!back.needs_rerun("fig13"));
        assert!(back.needs_rerun("fig14"));
        assert!(back.needs_rerun("fig15"));
        assert!(back.needs_rerun("fig16"), "unattempted id must rerun");
        assert_eq!(
            back.table_hashes("fig13"),
            &[
                ("fig13_ccs".to_string(), "00aa".to_string()),
                ("fig13_mc".to_string(), "00bb".to_string()),
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rerun_after_failure_upgrades_the_record() {
        let path = temp_path("upgrade");
        let _ = std::fs::remove_file(&path);
        let mut m = RunManifest::load(&path).unwrap();
        m.record_status("fig14", RunStatus::Failed);
        m.save().unwrap();
        let mut m = RunManifest::load(&path).unwrap();
        m.record_ok("fig14", vec![("fig14".into(), "cafe".into())]);
        m.save().unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert!(!back.needs_rerun("fig14"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_records_are_a_corruption_error() {
        let path = temp_path("malformed");
        std::fs::write(&path, "experiment fig14 ok\nwhat is this\n").unwrap();
        let err = RunManifest::load(&path).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Corruption);
        assert!(err.to_string().contains("line 2"));
        let _ = std::fs::remove_file(&path);
    }
}
