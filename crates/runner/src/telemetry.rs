//! Run observability: per-job wall time, simulation counters, progress
//! events, failures/skips/watchdog flags — collected in memory, written
//! as JSON-lines, summarized as a table.
//!
//! Wall times are *observability only*: no simulated measurement ever
//! reads the clock (the simulators are cycle-based and deterministic),
//! so recording here cannot perturb any paper number.
//!
//! Crash safety: with [`Telemetry::stream_to`] every event is rendered
//! and flushed to disk the moment it is recorded, so a crashed run
//! leaves a valid JSONL prefix (at worst one truncated trailing line).
//! The reader ([`load_jsonl`]) tolerates and reports that truncated
//! tail instead of failing on it.

use crate::json::Json;
use std::fs::File;
use std::io::{self, LineWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};
use tcor_common::{TcorError, TcorResult};

/// One completed job, as it appears in telemetry.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Job id within its graph.
    pub id: usize,
    /// The job's label.
    pub label: String,
    /// Worker index that executed it.
    pub worker: usize,
    /// Start offset from run start, milliseconds.
    pub start_ms: f64,
    /// Wall time, milliseconds.
    pub wall_ms: f64,
    /// Counters reported through [`crate::JobCtx::counter`]
    /// (simulated accesses, misses, …).
    pub counters: Vec<(String, u64)>,
}

enum Event {
    Start {
        t_ms: f64,
        id: usize,
        label: String,
        worker: usize,
    },
    End(JobRecord),
    Failed {
        t_ms: f64,
        id: usize,
        label: String,
        worker: usize,
        panic_msg: String,
    },
    Skipped {
        t_ms: f64,
        id: usize,
        label: String,
        failed_dep: usize,
        dep_label: String,
    },
    Timeout {
        t_ms: f64,
        id: usize,
        label: String,
        elapsed_ms: f64,
        budget_ms: f64,
    },
    Note {
        t_ms: f64,
        message: String,
    },
    /// A caller-defined event: the serving plane logs
    /// `request_received` / `request_coalesced` / `request_shed` /
    /// `request_done` through this so its timeline shares one JSONL
    /// stream with job events.
    Custom {
        t_ms: f64,
        name: String,
        fields: Vec<(String, Json)>,
    },
}

impl Event {
    fn render(&self) -> String {
        match self {
            Event::Start {
                t_ms,
                id,
                label,
                worker,
            } => Json::obj([
                ("event", Json::str("job_start")),
                ("t_ms", Json::Float(*t_ms)),
                ("job", Json::UInt(*id as u64)),
                ("label", Json::str(label.clone())),
                ("worker", Json::UInt(*worker as u64)),
            ]),
            Event::End(r) => Json::obj([
                ("event", Json::str("job_end")),
                ("t_ms", Json::Float(r.start_ms + r.wall_ms)),
                ("job", Json::UInt(r.id as u64)),
                ("label", Json::str(r.label.clone())),
                ("worker", Json::UInt(r.worker as u64)),
                ("wall_ms", Json::Float(r.wall_ms)),
                (
                    "counters",
                    Json::Obj(
                        r.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                            .collect(),
                    ),
                ),
            ]),
            Event::Failed {
                t_ms,
                id,
                label,
                worker,
                panic_msg,
            } => Json::obj([
                ("event", Json::str("job_failed")),
                ("t_ms", Json::Float(*t_ms)),
                ("job", Json::UInt(*id as u64)),
                ("label", Json::str(label.clone())),
                ("worker", Json::UInt(*worker as u64)),
                ("panic", Json::str(panic_msg.clone())),
            ]),
            Event::Skipped {
                t_ms,
                id,
                label,
                failed_dep,
                dep_label,
            } => Json::obj([
                ("event", Json::str("job_skipped")),
                ("t_ms", Json::Float(*t_ms)),
                ("job", Json::UInt(*id as u64)),
                ("label", Json::str(label.clone())),
                ("failed_dep", Json::UInt(*failed_dep as u64)),
                ("dep_label", Json::str(dep_label.clone())),
            ]),
            Event::Timeout {
                t_ms,
                id,
                label,
                elapsed_ms,
                budget_ms,
            } => Json::obj([
                ("event", Json::str("job_timeout")),
                ("t_ms", Json::Float(*t_ms)),
                ("job", Json::UInt(*id as u64)),
                ("label", Json::str(label.clone())),
                ("elapsed_ms", Json::Float(*elapsed_ms)),
                ("budget_ms", Json::Float(*budget_ms)),
            ]),
            Event::Note { t_ms, message } => Json::obj([
                ("event", Json::str("note")),
                ("t_ms", Json::Float(*t_ms)),
                ("message", Json::str(message.clone())),
            ]),
            Event::Custom { t_ms, name, fields } => {
                let mut obj = vec![
                    ("event".to_string(), Json::str(name.clone())),
                    ("t_ms".to_string(), Json::Float(*t_ms)),
                ];
                obj.extend(fields.iter().cloned());
                Json::Obj(obj)
            }
        }
        .render()
    }
}

struct Inner {
    events: Vec<Event>,
    /// Live sink: line-buffered, flushed per event so a crash loses at
    /// most the line being written.
    sink: Option<LineWriter<File>>,
    /// First sink write error, reported once instead of per event.
    sink_error: Option<String>,
}

/// Collector shared by reference with the executor. One `Telemetry`
/// spans one run (possibly several graphs).
pub struct Telemetry {
    start: Instant,
    inner: Mutex<Inner>,
    progress: AtomicBool,
    expected: AtomicUsize,
    completed: AtomicUsize,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A collector with the clock started now.
    pub fn new() -> Self {
        Telemetry {
            start: Instant::now(),
            inner: Mutex::new(Inner {
                events: Vec::new(),
                sink: None,
                sink_error: None,
            }),
            progress: AtomicBool::new(false),
            expected: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
        }
    }

    /// Streams every event (including those already recorded) to
    /// `path` as JSON-lines, flushed per event — crash-safe
    /// observability for long runs.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be created.
    pub fn stream_to(&self, path: &Path) -> TcorResult<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| TcorError::io(format!("creating {}", parent.display()), e))?;
            }
        }
        let file = File::create(path)
            .map_err(|e| TcorError::io(format!("creating {}", path.display()), e))?;
        let mut writer = LineWriter::new(file);
        let mut inner = self.lock();
        for e in &inner.events {
            writer
                .write_all(e.render().as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .map_err(|e| TcorError::io(format!("writing {}", path.display()), e))?;
        }
        writer
            .flush()
            .map_err(|e| TcorError::io(format!("flushing {}", path.display()), e))?;
        inner.sink = Some(writer);
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Single-push updates: a panicking recorder cannot leave the
        // event list inconsistent, so poisoning is recoverable.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push(&self, event: Event) {
        let mut inner = self.lock();
        if let Some(sink) = inner.sink.as_mut() {
            let line = event.render();
            let wrote = sink
                .write_all(line.as_bytes())
                .and_then(|()| sink.write_all(b"\n"))
                .and_then(|()| sink.flush());
            if let Err(e) = wrote {
                if inner.sink_error.is_none() {
                    inner.sink_error = Some(e.to_string());
                    eprintln!("telemetry: streaming write failed ({e}); continuing in memory");
                }
                inner.sink = None;
            }
        }
        inner.events.push(event);
    }

    /// Enables `[k/n] label wall` progress lines on stderr; `expected`
    /// is the denominator (add more with repeated calls).
    pub fn enable_progress(&self, expected: usize) {
        self.progress.store(true, Ordering::Relaxed);
        self.expected.fetch_add(expected, Ordering::Relaxed);
    }

    /// Milliseconds since the collector was created.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Records a free-form annotation ("suite assembled", …).
    pub fn note(&self, message: impl Into<String>) {
        self.push(Event::Note {
            t_ms: self.elapsed_ms(),
            message: message.into(),
        });
    }

    /// Records a caller-defined event with structured fields. The
    /// rendered line is `{"event": <name>, "t_ms": <now>, ...fields}`,
    /// so domain events (the serve plane's `request_received`,
    /// `request_done`, …) interleave with job events in one stream and
    /// flush with the same crash-safety guarantee.
    pub fn event(&self, name: impl Into<String>, fields: Vec<(String, Json)>) {
        self.push(Event::Custom {
            t_ms: self.elapsed_ms(),
            name: name.into(),
            fields,
        });
    }

    pub(crate) fn job_start(&self, id: usize, label: &str, worker: usize) {
        self.push(Event::Start {
            t_ms: self.elapsed_ms(),
            id,
            label: label.to_string(),
            worker,
        });
    }

    pub(crate) fn job_end(
        &self,
        id: usize,
        label: &str,
        worker: usize,
        counters: Vec<(String, u64)>,
    ) {
        let t_ms = self.elapsed_ms();
        let start_ms = self.start_of(id).unwrap_or(t_ms);
        let record = JobRecord {
            id,
            label: label.to_string(),
            worker,
            start_ms,
            wall_ms: t_ms - start_ms,
            counters,
        };
        self.progress_line(label, &format!("{:.1}ms", record.wall_ms));
        self.push(Event::End(record));
    }

    pub(crate) fn job_failed(&self, id: usize, label: &str, worker: usize, panic_msg: &str) {
        self.progress_line(label, "FAILED");
        self.push(Event::Failed {
            t_ms: self.elapsed_ms(),
            id,
            label: label.to_string(),
            worker,
            panic_msg: panic_msg.to_string(),
        });
    }

    pub(crate) fn job_skipped(&self, id: usize, label: &str, failed_dep: usize, dep_label: &str) {
        self.progress_line(label, &format!("SKIPPED (dep `{dep_label}` failed)"));
        self.push(Event::Skipped {
            t_ms: self.elapsed_ms(),
            id,
            label: label.to_string(),
            failed_dep,
            dep_label: dep_label.to_string(),
        });
    }

    pub(crate) fn job_timeout(&self, id: usize, label: &str, elapsed: Duration, budget: Duration) {
        let elapsed_ms = elapsed.as_secs_f64() * 1e3;
        let budget_ms = budget.as_secs_f64() * 1e3;
        eprintln!("watchdog: `{label}` over budget ({elapsed_ms:.0}ms > {budget_ms:.0}ms)");
        self.push(Event::Timeout {
            t_ms: self.elapsed_ms(),
            id,
            label: label.to_string(),
            elapsed_ms,
            budget_ms,
        });
    }

    fn start_of(&self, id: usize) -> Option<f64> {
        self.lock().events.iter().rev().find_map(|e| match e {
            Event::Start { id: i, t_ms, .. } if *i == id => Some(*t_ms),
            _ => None,
        })
    }

    fn progress_line(&self, label: &str, status: &str) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.progress.load(Ordering::Relaxed) {
            let total = self.expected.load(Ordering::Relaxed).max(done);
            eprintln!("[{done}/{total}] {label} {status}");
        }
    }

    /// All completed-job records, in completion order.
    pub fn records(&self) -> Vec<JobRecord> {
        self.lock()
            .events
            .iter()
            .filter_map(|e| match e {
                Event::End(r) => Some(r.clone()),
                _ => None,
            })
            .collect()
    }

    /// `(job id, label, panic message)` of every failed job.
    pub fn failures(&self) -> Vec<(usize, String, String)> {
        self.lock()
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Failed {
                    id,
                    label,
                    panic_msg,
                    ..
                } => Some((*id, label.clone(), panic_msg.clone())),
                _ => None,
            })
            .collect()
    }

    /// `(job id, label, root dep label)` of every skipped job.
    pub fn skips(&self) -> Vec<(usize, String, String)> {
        self.lock()
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Skipped {
                    id,
                    label,
                    dep_label,
                    ..
                } => Some((*id, label.clone(), dep_label.clone())),
                _ => None,
            })
            .collect()
    }

    /// Writes the event log as JSON-lines.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        let inner = self.lock();
        for e in inner.events.iter() {
            writeln!(w, "{}", e.render())?;
        }
        Ok(())
    }

    /// Writes the JSON-lines log to `path`, creating parent
    /// directories. Prefer [`stream_to`](Self::stream_to) for live
    /// runs; this whole-file path remains for post-hoc dumps.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_jsonl(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = File::create(path)?;
        self.write_jsonl(io::BufWriter::new(file))
    }

    /// A human summary: totals plus the slowest jobs.
    pub fn summary(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut records = self.records();
        let failures = self.failures();
        let skips = self.skips();
        let total_wall: f64 = records.iter().map(|r| r.wall_ms).sum();
        let mut out = String::new();
        let _ = write!(
            out,
            "runner: {} jobs, {:.1}ms of job work in {:.1}ms wall",
            records.len(),
            total_wall,
            self.elapsed_ms()
        );
        if !failures.is_empty() || !skips.is_empty() {
            let _ = write!(out, " ({} failed, {} skipped)", failures.len(), skips.len());
        }
        out.push('\n');
        records.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        for r in records.iter().take(top) {
            let counters = r
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "  {:>9.1}ms  w{}  {}  {}",
                r.wall_ms, r.worker, r.label, counters
            );
        }
        out
    }
}

/// A telemetry log read back from disk.
#[derive(Debug)]
pub struct TelemetryLog {
    /// Complete JSONL lines, in file order.
    pub lines: Vec<String>,
    /// The truncated trailing fragment, if the writer crashed
    /// mid-line; `None` for a cleanly terminated log.
    pub truncated: Option<String>,
}

/// Reads a JSON-lines telemetry log, tolerating — and reporting — a
/// truncated trailing line (the expected residue of a crash while
/// streaming).
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read, or a corruption
/// error if a line *before* the tail is malformed (that cannot be
/// explained by a crash mid-append).
pub fn load_jsonl(path: &Path) -> TcorResult<TelemetryLog> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TcorError::io(format!("reading {}", path.display()), e))?;
    let mut lines = Vec::new();
    let mut truncated = None;
    let complete = |l: &str| l.starts_with('{') && l.ends_with('}');
    // A crash can only truncate the final line; split it off first.
    let (body, tail) = match text.rfind('\n') {
        Some(i) => (&text[..i], &text[i + 1..]),
        None => ("", text.as_str()),
    };
    for (n, line) in body.lines().enumerate() {
        if !complete(line.trim_end()) {
            return Err(TcorError::corruption(format!(
                "{}: line {} is not a JSON object — log corrupted beyond a crash tail",
                path.display(),
                n + 1
            )));
        }
        lines.push(line.to_string());
    }
    if !tail.is_empty() {
        if complete(tail.trim_end()) {
            lines.push(tail.to_string());
        } else {
            truncated = Some(tail.to_string());
        }
    }
    Ok(TelemetryLog { lines, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_jsonl_roundtrip_structure() {
        let t = Telemetry::new();
        t.job_start(0, "alpha", 0);
        t.job_end(0, "alpha", 0, vec![("accesses".into(), 42)]);
        t.note("checkpoint");
        let records = t.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].label, "alpha");
        assert_eq!(records[0].counters, vec![("accesses".to_string(), 42)]);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"job_start\""));
        assert!(lines[1].contains("\"accesses\":42"));
        assert!(lines[2].contains("\"event\":\"note\""));
        // Every line is a self-contained JSON object.
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn failure_and_skip_events_are_recorded_and_rendered() {
        let t = Telemetry::new();
        t.job_start(1, "cell:X", 0);
        t.job_failed(1, "cell:X", 0, "boom");
        t.job_skipped(2, "exp:y", 1, "cell:X");
        t.job_timeout(
            3,
            "slow",
            Duration::from_millis(200),
            Duration::from_millis(50),
        );
        assert_eq!(t.failures(), vec![(1, "cell:X".into(), "boom".into())]);
        assert_eq!(t.skips(), vec![(2, "exp:y".into(), "cell:X".into())]);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"event\":\"job_failed\""));
        assert!(text.contains("\"panic\":\"boom\""));
        assert!(text.contains("\"event\":\"job_skipped\""));
        assert!(text.contains("\"event\":\"job_timeout\""));
        assert!(t.summary(1).contains("1 failed, 1 skipped"));
    }

    #[test]
    fn streaming_flushes_every_event() {
        let path = std::env::temp_dir().join(format!(
            "tcor-telemetry-stream-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let t = Telemetry::new();
        t.note("before streaming");
        t.stream_to(&path).unwrap();
        t.job_start(0, "a", 0);
        t.job_end(0, "a", 0, vec![]);
        // Without closing or saving anything: the lines must already
        // be durable.
        let log = load_jsonl(&path).unwrap();
        assert_eq!(log.lines.len(), 3, "pre-stream + start + end");
        assert!(log.truncated.is_none());
        assert!(log.lines[0].contains("before streaming"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_reports_a_truncated_tail_without_failing() {
        let path =
            std::env::temp_dir().join(format!("tcor-telemetry-trunc-{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            "{\"event\":\"note\"}\n{\"event\":\"job_start\",\"lab",
        )
        .unwrap();
        let log = load_jsonl(&path).unwrap();
        assert_eq!(log.lines.len(), 1);
        assert_eq!(
            log.truncated.as_deref(),
            Some("{\"event\":\"job_start\",\"lab")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_rejects_mid_file_corruption() {
        let path = std::env::temp_dir().join(format!(
            "tcor-telemetry-corrupt-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, "{\"ok\":1}\ngarbage\n{\"ok\":2}\n").unwrap();
        let err = load_jsonl(&path).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Corruption);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn custom_events_render_name_and_fields() {
        let t = Telemetry::new();
        t.event(
            "request_received",
            vec![
                ("endpoint".to_string(), Json::str("/v1/cell")),
                ("key".to_string(), Json::UInt(7)),
            ],
        );
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"event\":\"request_received\""));
        assert!(text.contains("\"endpoint\":\"/v1/cell\""));
        assert!(text.contains("\"key\":7"));
        assert!(text.contains("\"t_ms\":"));
    }

    #[test]
    fn summary_mentions_slowest_job() {
        let t = Telemetry::new();
        t.job_start(0, "fast", 0);
        t.job_end(0, "fast", 0, vec![]);
        t.job_start(1, "slow", 1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.job_end(1, "slow", 1, vec![]);
        let s = t.summary(1);
        assert!(s.contains("2 jobs"));
        assert!(s.contains("slow"));
        assert!(!s.contains("  fast"));
    }
}
