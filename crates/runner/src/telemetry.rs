//! Run observability: per-job wall time, simulation counters, progress
//! events — collected in memory, written as JSON-lines, summarized as a
//! table.
//!
//! Wall times are *observability only*: no simulated measurement ever
//! reads the clock (the simulators are cycle-based and deterministic),
//! so recording here cannot perturb any paper number.

use crate::json::Json;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed job, as it appears in telemetry.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Job id within its graph.
    pub id: usize,
    /// The job's label.
    pub label: String,
    /// Worker index that executed it.
    pub worker: usize,
    /// Start offset from run start, milliseconds.
    pub start_ms: f64,
    /// Wall time, milliseconds.
    pub wall_ms: f64,
    /// Counters reported through [`crate::JobCtx::counter`]
    /// (simulated accesses, misses, …).
    pub counters: Vec<(String, u64)>,
}

enum Event {
    Start {
        t_ms: f64,
        id: usize,
        label: String,
        worker: usize,
    },
    End(JobRecord),
    Note {
        t_ms: f64,
        message: String,
    },
}

/// Collector shared by reference with the executor. One `Telemetry`
/// spans one run (possibly several graphs).
pub struct Telemetry {
    start: Instant,
    events: Mutex<Vec<Event>>,
    progress: AtomicBool,
    expected: AtomicUsize,
    completed: AtomicUsize,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A collector with the clock started now.
    pub fn new() -> Self {
        Telemetry {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
            progress: AtomicBool::new(false),
            expected: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
        }
    }

    /// Enables `[k/n] label wall` progress lines on stderr; `expected`
    /// is the denominator (add more with repeated calls).
    pub fn enable_progress(&self, expected: usize) {
        self.progress.store(true, Ordering::Relaxed);
        self.expected.fetch_add(expected, Ordering::Relaxed);
    }

    /// Milliseconds since the collector was created.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Records a free-form annotation ("suite assembled", …).
    pub fn note(&self, message: impl Into<String>) {
        self.events
            .lock()
            .expect("telemetry lock")
            .push(Event::Note {
                t_ms: self.elapsed_ms(),
                message: message.into(),
            });
    }

    pub(crate) fn job_start(&self, id: usize, label: &str, worker: usize) {
        self.events
            .lock()
            .expect("telemetry lock")
            .push(Event::Start {
                t_ms: self.elapsed_ms(),
                id,
                label: label.to_string(),
                worker,
            });
    }

    pub(crate) fn job_end(
        &self,
        id: usize,
        label: &str,
        worker: usize,
        counters: Vec<(String, u64)>,
    ) {
        let t_ms = self.elapsed_ms();
        let start_ms = {
            let events = self.events.lock().expect("telemetry lock");
            events
                .iter()
                .rev()
                .find_map(|e| match e {
                    Event::Start { id: i, t_ms, .. } if *i == id => Some(*t_ms),
                    _ => None,
                })
                .unwrap_or(t_ms)
        };
        let record = JobRecord {
            id,
            label: label.to_string(),
            worker,
            start_ms,
            wall_ms: t_ms - start_ms,
            counters,
        };
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.progress.load(Ordering::Relaxed) {
            let total = self.expected.load(Ordering::Relaxed).max(done);
            eprintln!("[{done}/{total}] {label} {:.1}ms", record.wall_ms);
        }
        self.events
            .lock()
            .expect("telemetry lock")
            .push(Event::End(record));
    }

    /// All completed-job records, in completion order.
    pub fn records(&self) -> Vec<JobRecord> {
        self.events
            .lock()
            .expect("telemetry lock")
            .iter()
            .filter_map(|e| match e {
                Event::End(r) => Some(r.clone()),
                _ => None,
            })
            .collect()
    }

    /// Writes the event log as JSON-lines.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        let events = self.events.lock().expect("telemetry lock");
        for e in events.iter() {
            let line = match e {
                Event::Start {
                    t_ms,
                    id,
                    label,
                    worker,
                } => Json::obj([
                    ("event", Json::str("job_start")),
                    ("t_ms", Json::Float(*t_ms)),
                    ("job", Json::UInt(*id as u64)),
                    ("label", Json::str(label.clone())),
                    ("worker", Json::UInt(*worker as u64)),
                ]),
                Event::End(r) => Json::obj([
                    ("event", Json::str("job_end")),
                    ("t_ms", Json::Float(r.start_ms + r.wall_ms)),
                    ("job", Json::UInt(r.id as u64)),
                    ("label", Json::str(r.label.clone())),
                    ("worker", Json::UInt(r.worker as u64)),
                    ("wall_ms", Json::Float(r.wall_ms)),
                    (
                        "counters",
                        Json::Obj(
                            r.counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                                .collect(),
                        ),
                    ),
                ]),
                Event::Note { t_ms, message } => Json::obj([
                    ("event", Json::str("note")),
                    ("t_ms", Json::Float(*t_ms)),
                    ("message", Json::str(message.clone())),
                ]),
            };
            writeln!(w, "{}", line.render())?;
        }
        Ok(())
    }

    /// Writes the JSON-lines log to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_jsonl(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(path)?;
        self.write_jsonl(io::BufWriter::new(file))
    }

    /// A human summary: totals plus the slowest jobs.
    pub fn summary(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut records = self.records();
        let total_wall: f64 = records.iter().map(|r| r.wall_ms).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "runner: {} jobs, {:.1}ms of job work in {:.1}ms wall",
            records.len(),
            total_wall,
            self.elapsed_ms()
        );
        records.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        for r in records.iter().take(top) {
            let counters = r
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "  {:>9.1}ms  w{}  {}  {}",
                r.wall_ms, r.worker, r.label, counters
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_jsonl_roundtrip_structure() {
        let t = Telemetry::new();
        t.job_start(0, "alpha", 0);
        t.job_end(0, "alpha", 0, vec![("accesses".into(), 42)]);
        t.note("checkpoint");
        let records = t.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].label, "alpha");
        assert_eq!(records[0].counters, vec![("accesses".to_string(), 42)]);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"job_start\""));
        assert!(lines[1].contains("\"accesses\":42"));
        assert!(lines[2].contains("\"event\":\"note\""));
        // Every line is a self-contained JSON object.
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn summary_mentions_slowest_job() {
        let t = Telemetry::new();
        t.job_start(0, "fast", 0);
        t.job_end(0, "fast", 0, vec![]);
        t.job_start(1, "slow", 1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.job_end(1, "slow", 1, vec![]);
        let s = t.summary(1);
        assert!(s.contains("2 jobs"));
        assert!(s.contains("slow"));
        assert!(!s.contains("  fast"));
    }
}
