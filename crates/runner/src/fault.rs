//! Deterministic fault injection.
//!
//! A [`FaultPlan`] decides, purely from a seed and a stable key, which
//! operations fail and how: jobs can be made to panic or stall, and
//! durable writes (golden updates, manifests) can be made to return an
//! injected I/O error. The decision for a given `(seed, key)` pair
//! never changes — the same plan replays the same faults on every run,
//! whatever the schedule — so every recovery path in the executor,
//! golden store and resume protocol can be exercised in ordinary unit
//! tests and in CI (`tcor-sim all --inject-faults <seed>`).
//!
//! Keys are job labels (`"cell:CCS/tcor64"`) and I/O operation tags
//! (`"golden:fig14"`): identities that are stable across runs, unlike
//! worker indices or wall clocks. Draws go through the workspace
//! xoshiro256++ generator seeded by `seed ^ fxhash64(domain) ^
//! fxhash64(key)`.

use std::time::Duration;
use tcor_common::{fxhash64, Xoshiro256pp};

/// What an injected job fault does to the job body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobFault {
    /// The job panics before running (exercises containment and
    /// dependent skipping).
    Panic,
    /// The job stalls for this long before running (exercises the
    /// watchdog).
    Delay(Duration),
}

/// A seeded, deterministic plan of injected faults.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Percent of jobs that panic.
    panic_pct: u64,
    /// Percent of jobs that stall (drawn after the panic band).
    delay_pct: u64,
    /// Percent of tagged I/O operations that fail.
    io_pct: u64,
    /// Labels forced to panic regardless of the dice (test hook).
    forced_panics: Vec<String>,
    /// I/O tags forced to fail regardless of the dice (test hook).
    forced_io: Vec<String>,
}

impl FaultPlan {
    /// The plan the CLI builds for `--inject-faults <seed>`: a few
    /// percent of jobs panic, a few stall briefly, and roughly one in
    /// ten tagged writes fails.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_pct: 4,
            delay_pct: 8,
            io_pct: 10,
            forced_panics: Vec::new(),
            forced_io: Vec::new(),
        }
    }

    /// A quiet plan that panics exactly the jobs whose label equals
    /// `label` and injects nothing else (deterministic test hook).
    pub fn panic_on(label: impl Into<String>) -> Self {
        FaultPlan {
            seed: 0,
            panic_pct: 0,
            delay_pct: 0,
            io_pct: 0,
            forced_panics: vec![label.into()],
            forced_io: Vec::new(),
        }
    }

    /// A quiet plan that fails exactly the I/O operations tagged `tag`
    /// (deterministic test hook).
    pub fn fail_io_on(tag: impl Into<String>) -> Self {
        FaultPlan {
            seed: 0,
            panic_pct: 0,
            delay_pct: 0,
            io_pct: 0,
            forced_panics: Vec::new(),
            forced_io: vec![tag.into()],
        }
    }

    /// Overrides the per-class injection rates (percentages, clamped
    /// to 100 in total draw space).
    pub fn with_rates(mut self, panic_pct: u64, delay_pct: u64, io_pct: u64) -> Self {
        self.panic_pct = panic_pct;
        self.delay_pct = delay_pct;
        self.io_pct = io_pct;
        self
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One deterministic draw in `[0, 100)` for `(domain, key)`.
    fn roll(&self, domain: &str, key: &str) -> u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(
            self.seed ^ fxhash64(domain.as_bytes()) ^ fxhash64(key.as_bytes()),
        );
        rng.random_range(0..100u64)
    }

    /// The fault, if any, to inject into the job labelled `label`.
    pub fn job_fault(&self, label: &str) -> Option<JobFault> {
        if self.forced_panics.iter().any(|l| l == label) {
            return Some(JobFault::Panic);
        }
        if self.panic_pct == 0 && self.delay_pct == 0 {
            return None;
        }
        let roll = self.roll("job", label);
        if roll < self.panic_pct {
            Some(JobFault::Panic)
        } else if roll < self.panic_pct + self.delay_pct {
            // 5–20ms: long enough for a tight watchdog budget to flag,
            // short enough not to slow a CI smoke run noticeably.
            let ms = 5 + self.roll("delay", label) % 16;
            Some(JobFault::Delay(Duration::from_millis(ms)))
        } else {
            None
        }
    }

    /// Whether the I/O operation tagged `tag` should fail with an
    /// injected error.
    pub fn io_fault(&self, tag: &str) -> bool {
        if self.forced_io.iter().any(|t| t == tag) {
            return true;
        }
        self.io_pct > 0 && self.roll("io", tag) < self.io_pct
    }

    /// The injected-I/O error for `tag` (what fault-aware writers
    /// return when [`io_fault`](Self::io_fault) fires).
    pub fn io_error(&self, tag: &str) -> tcor_common::TcorError {
        tcor_common::TcorError::io(
            format!("injected fault (seed {}) in {tag}", self.seed),
            std::io::Error::other("fault injection"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_key_sensitive() {
        let plan = FaultPlan::seeded(42);
        let again = FaultPlan::seeded(42);
        let other = FaultPlan::seeded(43);
        let labels: Vec<String> = (0..200).map(|i| format!("cell:{i}")).collect();
        let faults: Vec<_> = labels.iter().map(|l| plan.job_fault(l)).collect();
        let replay: Vec<_> = labels.iter().map(|l| again.job_fault(l)).collect();
        assert_eq!(faults, replay);
        let reseeded: Vec<_> = labels.iter().map(|l| other.job_fault(l)).collect();
        assert_ne!(faults, reseeded);
    }

    #[test]
    fn default_rates_inject_a_minority_of_jobs() {
        let plan = FaultPlan::seeded(7);
        let n = 1000;
        let panics = (0..n)
            .filter(|i| plan.job_fault(&format!("job:{i}")) == Some(JobFault::Panic))
            .count();
        let total_faulted = (0..n)
            .filter(|i| plan.job_fault(&format!("job:{i}")).is_some())
            .count();
        assert!((10..100).contains(&panics), "panics={panics}");
        assert!(total_faulted < n / 4, "faulted={total_faulted}");
    }

    #[test]
    fn forced_hooks_override_the_dice() {
        let plan = FaultPlan::panic_on("cell:CCS/tcor64");
        assert_eq!(plan.job_fault("cell:CCS/tcor64"), Some(JobFault::Panic));
        assert_eq!(plan.job_fault("cell:CCS/base64"), None);
        assert!(!plan.io_fault("golden:fig14"));
        let io = FaultPlan::fail_io_on("golden:fig14");
        assert!(io.io_fault("golden:fig14"));
        assert!(!io.io_fault("golden:fig15"));
        assert_eq!(io.job_fault("cell:CCS/tcor64"), None);
    }
}
