//! The serving API over the real simulator backend: one loopback
//! daemon, driven end to end — liveness, typed validation failures,
//! CLI-parity bytes for tables and cells, `POST /v1/run` dispatch, and
//! graceful shutdown. One test function so the calibrated GTr scene is
//! built once and shared by every request.

use std::sync::Arc;
use std::time::Duration;
use tcor_runner::ArtifactStore;
use tcor_serve::{http_request, HttpReply};
use tcor_sim::SimBackend;

fn get(addr: &str, path: &str) -> HttpReply {
    http_request(addr, "GET", path, None, Duration::from_secs(600)).expect("request")
}

#[test]
fn serve_api_end_to_end_over_the_real_simulator() {
    let backend = Arc::new(SimBackend::new());
    let server = tcor_serve::start(
        tcor_serve::ServeConfig {
            port: 0,
            workers: 2,
            queue_depth: 16,
            cache_cap: 64,
            deadline: Duration::from_secs(600),
            ..Default::default()
        },
        backend,
        None,
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Liveness.
    assert_eq!(get(&addr, "/health").body, "ok\n");

    // Bad identity is typed: unknown names are config errors -> 404,
    // a malformed run body is a serve error -> 400.
    assert_eq!(get(&addr, "/v1/cell/nope/base64").status, 404);
    assert_eq!(get(&addr, "/v1/cell/GTr/nope").status, 404);
    assert_eq!(get(&addr, "/v1/misscurve/GTr/clock").status, 404);
    assert_eq!(get(&addr, "/v1/table/fig99").status, 404);
    let bad_run = http_request(
        &addr,
        "POST",
        "/v1/run",
        Some("workload=GTr"),
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(bad_run.status, 400);

    // `/v1/table/fig10` is byte-identical to the CLI's CSV of the same
    // experiment.
    let table = get(&addr, "/v1/table/fig10");
    assert_eq!(table.status, 200);
    assert_eq!(
        table.header("content-type"),
        Some("text/csv; charset=utf-8")
    );
    let direct: String = tcor_sim::try_run_experiment(&ArtifactStore::new(), "fig10")
        .unwrap()
        .iter()
        .map(tcor_sim::Table::to_csv)
        .collect();
    assert_eq!(table.body, direct, "serve CSV == CLI CSV");

    // A full cell over loopback is byte-identical to the `cell` CLI
    // encoder run directly, and an immediate retry is a warm hit with
    // the same bytes.
    let cell = get(&addr, "/v1/cell/GTr/base64");
    assert_eq!(cell.status, 200);
    assert_eq!(cell.header("x-tcor-cache"), Some("miss"));
    let cli_backend = SimBackend::new();
    let cli = tcor_serve::Backend::call(
        &cli_backend,
        &tcor_serve::ApiCall::Cell {
            workload: "GTr".into(),
            config: "base64".into(),
        },
    )
    .unwrap();
    assert_eq!(cell.body, cli.body, "serve JSON == CLI JSON");
    let warm = get(&addr, "/v1/cell/GTr/base64");
    assert_eq!(warm.header("x-tcor-cache"), Some("mem"));
    assert_eq!(warm.body, cell.body, "warm == cold, byte for byte");

    // `POST /v1/run` is the same computation under another spelling.
    let run = http_request(
        &addr,
        "POST",
        "/v1/run",
        Some("config=base64&workload=GTr"),
        Duration::from_secs(600),
    )
    .unwrap();
    assert_eq!(run.status, 200);
    assert_eq!(run.body, cell.body, "run spelling == cell spelling");

    // A single-workload miss curve answers without building the other
    // nine benchmarks, and parses as the expected parallel arrays.
    let curve = get(&addr, "/v1/misscurve/GTr/lru");
    assert_eq!(curve.status, 200);
    assert!(curve
        .body
        .starts_with("{\"workload\":\"GTr\",\"policy\":\"lru\""));
    assert!(curve.body.contains("\"size_kb\":[8,16,"));
    assert!(curve.body.contains("\"miss_ratio\":["));

    // Graceful shutdown: 200, drained, port closed.
    let bye = http_request(
        &addr,
        "POST",
        "/admin/shutdown",
        None,
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(bye.status, 200);
    let spans = server.wait();
    assert!(!spans.is_empty(), "request timeline recorded");
    let after = http_request(&addr, "GET", "/health", None, Duration::from_millis(500));
    assert!(after.is_err(), "port closed after shutdown");
}
