//! Fault-path integration tests: the three recovery scenarios the
//! failure model promises (see DESIGN.md, "Failure model & recovery").
//!
//! 1. A single injected panic fails exactly one job; its dependents
//!    are skipped, every independent experiment completes.
//! 2. A resumed run re-executes only the failed experiments, and the
//!    recomputed tables match the golden baseline bit-for-bit.
//! 3. An injected I/O error during a golden update leaves the
//!    previous baseline fully readable.

use std::path::PathBuf;
use tcor_common::{fxhash64, hash_hex};
use tcor_runner::{ArtifactStore, FaultPlan, GoldenStatus, GoldenStore, RunManifest, Telemetry};
use tcor_sim::{run_experiments, ExperimentOutcome, RunOptions};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcor-fault-paths-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ids(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

fn csv_hash(csv: &str) -> String {
    hash_hex(fxhash64(csv.as_bytes()))
}

/// Scenario 1: panic one scene-calibration job. The experiment that
/// consumes every scene is skipped (not panicked, not half-run), the
/// scene-independent experiment completes, and the failure shows up
/// in both the run outcome and the telemetry log.
#[test]
fn one_injected_panic_fails_one_job_and_skips_only_its_dependents() {
    let store = ArtifactStore::new();
    let telemetry = Telemetry::new();
    let opts = RunOptions {
        fault_plan: Some(FaultPlan::panic_on("scene:GTr")),
        ..RunOptions::default()
    };
    let out = run_experiments(&ids(&["scaling", "table1"]), &opts, &store, &telemetry).unwrap();

    assert!(!out.all_ok());
    match &out.experiments[0].1 {
        ExperimentOutcome::Skipped { dep_label } => {
            assert_eq!(dep_label, "scene:GTr");
        }
        other => panic!("scaling should be skipped behind the failed scene, got {other:?}"),
    }
    assert!(
        matches!(&out.experiments[1].1, ExperimentOutcome::Tables(t) if !t.is_empty()),
        "table1 is independent of the scenes and must complete"
    );

    let failures = telemetry.failures();
    assert_eq!(failures.len(), 1, "exactly one job panicked: {failures:?}");
    assert_eq!(failures[0].1, "scene:GTr");
    assert!(failures[0].2.contains("injected fault"));
    assert_eq!(telemetry.skips().len(), 1, "exactly one job was skipped");
    let summary = out.failure_summary.expect("failures must be summarized");
    assert!(summary.contains("scene:GTr"));
}

/// Scenario 2: a faulted run records `failed` in the run manifest;
/// the resumed run re-executes only that experiment and its tables
/// hash-match the golden baseline recorded by a clean run.
#[test]
fn resume_recomputes_only_failed_experiments_and_matches_golden() {
    let golden_dir = temp_dir("resume-golden");
    let manifest_path = golden_dir.join("run-manifest.txt");
    let golden = GoldenStore::new(&golden_dir);
    let all = ids(&["table1", "fig10"]);

    // Clean reference run records the golden baseline.
    let store = ArtifactStore::new();
    let telemetry = Telemetry::new();
    let clean = run_experiments(&all, &RunOptions::default(), &store, &telemetry).unwrap();
    assert!(clean.all_ok());
    for (_, outcome) in clean.experiments {
        for t in outcome.tables().unwrap() {
            golden.update(&t.id, &t.to_csv()).unwrap();
        }
    }

    // Faulted run: table1 panics, fig10 completes. Record the manifest
    // exactly as the binary does.
    let store = ArtifactStore::new();
    let telemetry = Telemetry::new();
    let opts = RunOptions {
        fault_plan: Some(FaultPlan::panic_on("exp:table1")),
        ..RunOptions::default()
    };
    let out = run_experiments(&all, &opts, &store, &telemetry).unwrap();
    let mut manifest = RunManifest::new(&manifest_path);
    for (id, outcome) in out.experiments {
        match outcome {
            ExperimentOutcome::Tables(tables) => manifest.record_ok(
                &id,
                tables
                    .iter()
                    .map(|t| (t.id.clone(), csv_hash(&t.to_csv())))
                    .collect(),
            ),
            ExperimentOutcome::Failed { .. } => {
                manifest.record_status(&id, tcor_runner::RunStatus::Failed)
            }
            ExperimentOutcome::Skipped { .. } => {
                manifest.record_status(&id, tcor_runner::RunStatus::Skipped)
            }
        }
    }
    manifest.save().unwrap();

    // Resume: partition on the reloaded manifest. Only table1 reruns.
    let mut manifest = RunManifest::load(&manifest_path).unwrap();
    let (rerun, reused): (Vec<String>, Vec<String>) =
        all.iter().cloned().partition(|id| manifest.needs_rerun(id));
    assert_eq!(rerun, ids(&["table1"]));
    assert_eq!(reused, ids(&["fig10"]));

    let store = ArtifactStore::new();
    let telemetry = Telemetry::new();
    let resumed = run_experiments(&rerun, &RunOptions::default(), &store, &telemetry).unwrap();
    assert!(resumed.all_ok(), "clean rerun must complete");
    assert_eq!(resumed.experiments.len(), 1, "only the failed id reruns");
    for (id, outcome) in resumed.experiments {
        let tables = outcome.tables().unwrap();
        manifest.record_ok(
            &id,
            tables
                .iter()
                .map(|t| (t.id.clone(), csv_hash(&t.to_csv())))
                .collect(),
        );
        for t in &tables {
            assert!(
                golden.check(&t.id, &t.to_csv()).is_match(),
                "recomputed `{}` must match the golden bit-for-bit",
                t.id
            );
        }
    }
    manifest.save().unwrap();

    // Every experiment — rerun or reused — now hash-matches the golden
    // manifest without recomputation, exactly what `--resume --check`
    // verifies in the binary.
    let manifest = RunManifest::load(&manifest_path).unwrap();
    for id in &all {
        assert!(!manifest.needs_rerun(id));
        let hashes = manifest.table_hashes(id);
        assert!(!hashes.is_empty());
        for (table_id, hash) in hashes {
            assert_eq!(
                golden.recorded_hash(table_id).as_ref(),
                Some(hash),
                "manifest hash for `{table_id}` must equal the golden hash"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&golden_dir);
}

/// Scenario 3: a golden update interrupted by an injected I/O error
/// never corrupts the baseline — the previous golden stays readable
/// and still passes `check`.
#[test]
fn injected_io_error_during_golden_update_leaves_baseline_readable() {
    let dir = temp_dir("golden-io");
    let old = "a,b\n1,2\n";
    let new = "a,b\n3,4\n";

    let clean = GoldenStore::new(&dir);
    clean.update("t1", old).unwrap();
    assert!(clean.check("t1", old).is_match());

    let faulty = GoldenStore::new(&dir).with_fault_plan(FaultPlan::fail_io_on("golden:t1"));
    let err = faulty.update("t1", new).unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");

    // The baseline is untouched: old content still matches, the file
    // still agrees with the manifest, and a clean store can update it.
    assert!(clean.check("t1", old).is_match());
    assert!(matches!(
        clean.check("t1", new),
        GoldenStatus::Mismatch { .. }
    ));
    clean.update("t1", new).unwrap();
    assert!(clean.check("t1", new).is_match());

    let _ = std::fs::remove_dir_all(&dir);
}
