//! Belady's optimality on the real workloads: simulated OPT (driven by
//! `annotate_next_use` oracles) never misses more than LRU on any
//! seeded Table II Parameter Buffer trace.

use tcor_cache::policy::{Lru, Opt};
use tcor_cache::profile::simulate_policy;
use tcor_cache::Indexing;
use tcor_common::CacheParams;
use tcor_runner::ArtifactStore;
use tcor_sim::misscurves::suite_traces;
use tcor_workloads::prims_capacity;

#[test]
fn opt_never_misses_more_than_lru_on_any_benchmark() {
    let store = ArtifactStore::new();
    let traces = suite_traces(&store).expect("trace construction is infallible on a fresh store");
    assert_eq!(traces.len(), 10, "Table II has ten benchmarks");
    let cap = prims_capacity(64 << 10);
    // Fully associative (the paper's Fig. 1/11 setting) and the 4-way
    // Attribute Cache geometry (Fig. 13).
    for ways in [0u32, 4] {
        let lines = if ways == 0 {
            cap as u64
        } else {
            (cap as u64 / ways as u64).max(1) * ways as u64
        };
        let params = CacheParams::new(lines, 1, ways, 1);
        for b in traces.iter() {
            let opt = simulate_policy(&b.trace, params, Indexing::Modulo, Opt::new(), true);
            let lru = simulate_policy(&b.trace, params, Indexing::Modulo, Lru::new(), false);
            assert!(
                opt.misses() <= lru.misses(),
                "{}: OPT {} > LRU {} ({}-way)",
                b.alias,
                opt.misses(),
                lru.misses(),
                ways
            );
        }
    }
}
