//! The runner's core guarantee: parallel execution is bit-identical to
//! the serial reference path, whatever the schedule.

use tcor_runner::{ArtifactStore, Telemetry};
use tcor_sim::orchestrate::ExecMode;
use tcor_sim::run_experiments_strict;

/// Renders a reduced experiment set (every graph tier: pure tables,
/// calibrated scenes, dependent experiments) to one string.
fn rendered(mode: ExecMode) -> String {
    let ids: Vec<String> = ["table1", "fig10", "scaling"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let store = ArtifactStore::new();
    let telemetry = Telemetry::new();
    let results = run_experiments_strict(&ids, mode, &store, &telemetry).expect("valid ids");
    // Experiments come back in input order regardless of completion
    // order.
    assert_eq!(
        results
            .iter()
            .map(|(id, _)| id.as_str())
            .collect::<Vec<_>>(),
        ["table1", "fig10", "scaling"]
    );
    results
        .iter()
        .flat_map(|(_, tables)| tables)
        .map(|t| t.render() + &t.to_csv())
        .collect()
}

#[test]
fn parallel_output_is_bit_identical_to_serial() {
    let serial = rendered(ExecMode::Serial);
    for workers in [2, 4] {
        assert_eq!(
            serial,
            rendered(ExecMode::Parallel(workers)),
            "divergence with {workers} workers"
        );
    }
}
