//! Kill-and-restart persistence over the real simulator: a daemon
//! generation computes golden responses into a persistent cache
//! directory, dies, and a *fresh* generation (new process-equivalent:
//! new backend, new memory tier) serves the same bytes from the disk
//! tier without recomputing. Also the negative side: a corrupted
//! object is evicted and transparently recomputed, never served.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use tcor_serve::{http_request, HttpReply, ServeConfig};
use tcor_sim::SimBackend;

fn get(addr: &str, path: &str) -> HttpReply {
    http_request(addr, "GET", path, None, Duration::from_secs(600)).expect("request")
}

fn shutdown(addr: &str) {
    let bye = http_request(
        addr,
        "POST",
        "/admin/shutdown",
        None,
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(bye.status, 200);
}

fn config(dir: &Path) -> ServeConfig {
    ServeConfig {
        port: 0,
        workers: 2,
        queue_depth: 16,
        cache_cap: 64,
        deadline: Duration::from_secs(600),
        cache_dir: Some(dir.to_path_buf()),
        cache_disk_bytes: 64 << 20,
        ..ServeConfig::default()
    }
}

#[test]
fn restarted_daemon_serves_golden_bytes_from_disk() {
    let dir = std::env::temp_dir().join(format!("tcor-sim-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let target = "/v1/cell/GTr/base64";

    // Generation 1: compute once, then die.
    let server = tcor_serve::start(config(&dir), Arc::new(SimBackend::new()), None).unwrap();
    let addr = server.addr().to_string();
    let cold = get(&addr, target);
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-tcor-cache"), Some("miss"));
    shutdown(&addr);
    server.wait();

    // Generation 2: a fresh backend (no memoized artifacts, empty
    // memory tier) over the same directory. The first answer must come
    // from the disk tier, byte-identical to generation 1's, and the
    // backend must not have computed anything; the second is the
    // promoted memory-tier hit.
    let server = tcor_serve::start(config(&dir), Arc::new(SimBackend::new()), None).unwrap();
    let addr = server.addr().to_string();
    let warm_disk = get(&addr, target);
    assert_eq!(warm_disk.status, 200);
    assert_eq!(warm_disk.header("x-tcor-cache"), Some("disk"));
    assert_eq!(warm_disk.body, cold.body, "restart == cold, byte for byte");
    assert_eq!(
        warm_disk.header("content-type"),
        cold.header("content-type"),
        "content type survives the restart"
    );
    let warm_mem = get(&addr, target);
    assert_eq!(warm_mem.header("x-tcor-cache"), Some("mem"));
    assert_eq!(warm_mem.body, cold.body);
    let metrics = get(&addr, "/metrics").body;
    assert!(
        metrics.contains("serve/cold_computes = 0"),
        "nothing recomputed after restart:\n{metrics}"
    );
    assert!(metrics.contains("serve/cache_disk_hits = 1"));
    shutdown(&addr);
    server.wait();

    // Corruption: flip bytes in every persisted object. Generation 3
    // must evict (never serve) the damaged entry and recompute the
    // same bytes.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "tcpc") {
            let mut raw = std::fs::read(&path).unwrap();
            let mid = raw.len() / 2;
            raw[mid] ^= 0xff;
            std::fs::write(&path, raw).unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted >= 1, "expected persisted objects to corrupt");
    let server = tcor_serve::start(config(&dir), Arc::new(SimBackend::new()), None).unwrap();
    let addr = server.addr().to_string();
    let recomputed = get(&addr, target);
    assert_eq!(recomputed.status, 200);
    assert_eq!(
        recomputed.header("x-tcor-cache"),
        Some("miss"),
        "corrupt entry must not be served"
    );
    assert_eq!(
        recomputed.body, cold.body,
        "recompute reproduces golden bytes"
    );
    shutdown(&addr);
    server.wait();

    let _ = std::fs::remove_dir_all(&dir);
}

/// The `tcor-sim serve --cache-dir` wiring: the daemon and its
/// `SimBackend` share one `TieredCache`, so the backend persists
/// rendered bodies through the same store the response cache serves
/// from. This is the regression shape for a real deadlock: the call's
/// canonical identity (`cell/GTr/base64`) hashes to the same key the
/// orchestrator memoizes that cell's report under, so the persisted
/// wrapper must not re-enter its own artifact-store slot.
#[test]
fn daemon_and_backend_share_one_cache_without_deadlock() {
    let dir = std::env::temp_dir().join(format!("tcor-sim-shared-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let open = || {
        let cfg = config(&dir);
        let cache: Arc<dyn tcor_pcache::ResultCache> = Arc::new(
            tcor_pcache::TieredCache::open(
                cfg.cache_cap,
                Some((dir.clone(), cfg.cache_disk_bytes)),
            )
            .unwrap(),
        );
        let backend = Arc::new(SimBackend::with_cache(Arc::clone(&cache)));
        (cfg, backend, cache)
    };

    let (cfg, backend, cache) = open();
    let server = tcor_serve::start_with_cache(cfg, backend, None, cache).unwrap();
    let addr = server.addr().to_string();
    let cold = get(&addr, "/v1/cell/GTr/base64");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-tcor-cache"), Some("miss"));
    // The double put (backend persists, then the response cache does)
    // must land as one object plus one dedup touch, not two writes.
    let metrics = get(&addr, "/metrics").body;
    assert!(metrics.contains("pcache/puts = 1"), "{metrics}");
    assert!(metrics.contains("pcache/dedup_puts = 1"), "{metrics}");
    shutdown(&addr);
    server.wait();

    let (cfg, backend, cache) = open();
    let server = tcor_serve::start_with_cache(cfg, backend, None, cache).unwrap();
    let addr = server.addr().to_string();
    let warm = get(&addr, "/v1/cell/GTr/base64");
    assert_eq!(warm.header("x-tcor-cache"), Some("disk"));
    assert_eq!(warm.body, cold.body, "shared-cache restart == cold");
    shutdown(&addr);
    server.wait();

    let _ = std::fs::remove_dir_all(&dir);
}
