//! Full-system runs over the benchmark suite — the shared substrate of
//! Figures 14–24.

use tcor::{BaselineSystem, FrameReport, SystemConfig, TcorSystem};
use tcor_common::TileGrid;
use tcor_gpu::Scene;
use tcor_workloads::{suite as benchmarks, BenchmarkProfile};

/// All six configurations of one benchmark: {baseline, TCOR-without-L2,
/// TCOR} × {64 KiB, 128 KiB}.
#[derive(Clone, Debug)]
pub struct BenchmarkRun {
    /// The profile that produced it.
    pub profile: BenchmarkProfile,
    /// Measured scene statistics (reuse, footprint) for Table II.
    pub measured_reuse: f64,
    /// Measured PB footprint in bytes.
    pub measured_footprint_bytes: u64,
    /// Baseline, 64 KiB unified Tile Cache.
    pub base64: FrameReport,
    /// TCOR L1s with the baseline L2, 64 KiB budget (ablation).
    pub tcor_nol2_64: FrameReport,
    /// Full TCOR, 64 KiB budget.
    pub tcor64: FrameReport,
    /// Baseline, 128 KiB.
    pub base128: FrameReport,
    /// TCOR without L2 enhancements, 128 KiB.
    pub tcor_nol2_128: FrameReport,
    /// Full TCOR, 128 KiB.
    pub tcor128: FrameReport,
}

impl BenchmarkRun {
    /// The six cell reports paired with their [`CELL_CONFIGS`] names, in
    /// field order — the iteration surface of the audit layer.
    pub fn cells(&self) -> [(&'static str, &FrameReport); 6] {
        [
            ("base64", &self.base64),
            ("tcor_nol2_64", &self.tcor_nol2_64),
            ("tcor64", &self.tcor64),
            ("base128", &self.base128),
            ("tcor_nol2_128", &self.tcor_nol2_128),
            ("tcor128", &self.tcor128),
        ]
    }
}

/// The whole suite.
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// One entry per Table II benchmark, in the paper's order.
    pub benchmarks: Vec<BenchmarkRun>,
}

impl SuiteRun {
    /// Arithmetic mean of `f` over benchmarks (the paper's "average"
    /// bars).
    pub fn average(&self, f: impl Fn(&BenchmarkRun) -> f64) -> f64 {
        if self.benchmarks.is_empty() {
            return 0.0;
        }
        self.benchmarks.iter().map(f).sum::<f64>() / self.benchmarks.len() as f64
    }
}

/// The six configuration cells of every benchmark, in [`BenchmarkRun`]
/// field order. These names key the runner's memoized cell artifacts
/// and its telemetry labels.
pub const CELL_CONFIGS: [&str; 6] = [
    "base64",
    "tcor_nol2_64",
    "tcor64",
    "base128",
    "tcor_nol2_128",
    "tcor128",
];

/// Runs one configuration cell of one benchmark on an already
/// calibrated scene.
///
/// # Panics
///
/// Panics on a name outside [`CELL_CONFIGS`].
pub fn run_cell(profile: &BenchmarkProfile, scene: &Scene, cfg: &str) -> FrameReport {
    let rp = profile.raster_params();
    let base = |cfg: SystemConfig| BaselineSystem::new(cfg.with_raster(rp)).run_frame(scene);
    let tcor = |cfg: SystemConfig| TcorSystem::new(cfg.with_raster(rp)).run_frame(scene);
    match cfg {
        "base64" => base(SystemConfig::paper_baseline_64k()),
        "tcor_nol2_64" => tcor(SystemConfig::paper_tcor_64k().without_l2_enhancements()),
        "tcor64" => tcor(SystemConfig::paper_tcor_64k()),
        "base128" => base(SystemConfig::paper_baseline_128k()),
        "tcor_nol2_128" => tcor(SystemConfig::paper_tcor_128k().without_l2_enhancements()),
        "tcor128" => tcor(SystemConfig::paper_tcor_128k()),
        other => panic!("unknown cell config `{other}`"),
    }
}

/// Assembles a [`BenchmarkRun`] from a calibrated scene and a cell
/// supplier (direct simulation here; the runner's memoized store in
/// the orchestrated path).
pub fn assemble_run(
    profile: &BenchmarkProfile,
    calibrated: &tcor_workloads::CalibratedScene,
    mut cell: impl FnMut(&str) -> FrameReport,
) -> BenchmarkRun {
    BenchmarkRun {
        profile: *profile,
        measured_reuse: calibrated.measured_reuse,
        measured_footprint_bytes: calibrated.measured_footprint_bytes,
        base64: cell("base64"),
        tcor_nol2_64: cell("tcor_nol2_64"),
        tcor64: cell("tcor64"),
        base128: cell("base128"),
        tcor_nol2_128: cell("tcor_nol2_128"),
        tcor128: cell("tcor128"),
    }
}

/// Runs one benchmark through all six configurations.
pub fn run_benchmark(profile: &BenchmarkProfile, grid: &TileGrid) -> BenchmarkRun {
    let calibrated = tcor_workloads::synth::calibrate(profile, grid);
    assemble_run(profile, &calibrated, |cfg| {
        run_cell(profile, &calibrated.scene, cfg)
    })
}

/// Runs the full Table II suite (deterministic; takes a few seconds in
/// release builds).
pub fn run_suite() -> SuiteRun {
    let grid = TileGrid::new(1960, 768, 32);
    SuiteRun {
        benchmarks: benchmarks()
            .iter()
            .map(|b| run_benchmark(b, &grid))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small benchmark end to end through all six configs — the
    /// cheap smoke test; the full suite runs in the harness and in
    /// integration tests.
    #[test]
    fn single_benchmark_all_configs() {
        let grid = TileGrid::new(1960, 768, 32);
        let profile = tcor_workloads::suite()[1]; // SoD: small, high reuse
        let run = run_benchmark(&profile, &grid);
        // Identical streams across configurations.
        assert_eq!(run.base64.prims_fetched, run.tcor64.prims_fetched);
        assert_eq!(run.base128.prims_fetched, run.tcor128.prims_fetched);
        // TCOR reduces PB L2 traffic and PB MM traffic at both sizes.
        assert!(run.tcor64.pb_l2_accesses() < run.base64.pb_l2_accesses());
        assert!(run.tcor64.pb_mm_accesses() <= run.base64.pb_mm_accesses());
        assert!(run.tcor128.pb_l2_accesses() < run.base128.pb_l2_accesses());
        // Tiling engine speedup.
        assert!(run.tcor64.primitives_per_cycle() > run.base64.primitives_per_cycle());
        // The ablation (baseline L2) produces at least as many PB MM
        // writes as the full TCOR.
        assert!(run.tcor64.pb_mm_writes() <= run.tcor_nol2_64.pb_mm_writes());
    }

    #[test]
    fn average_helper() {
        let grid = TileGrid::new(1960, 768, 32);
        let profile = tcor_workloads::suite()[9]; // GTr: smallest
        let run = run_benchmark(&profile, &grid);
        let s = SuiteRun {
            benchmarks: vec![run.clone(), run],
        };
        let avg = s.average(|b| b.base64.num_primitives as f64);
        assert!(avg > 0.0);
    }
}
