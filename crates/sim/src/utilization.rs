//! Attribute Cache utilization study.
//!
//! §III.C.2 argues TCOR's decoupled organization carries *no area
//! overhead*: the Attribute Buffer stores one 48-byte attribute per entry
//! (plus pointer bits the removed per-line tags pay for), and the
//! Primitive Buffer's lines are small. This experiment measures how well
//! the paid-for capacity is actually used: mean Attribute Buffer and
//! Primitive Buffer occupancy over the frame, the write-bypass rate, and
//! lock-induced fetcher stalls.

use crate::output::{f3, Table};
use crate::suite::SuiteRun;

/// Per-benchmark Attribute Cache utilization (64 KiB TCOR configuration).
pub fn utilization(suite: &SuiteRun) -> Table {
    let mut t = Table::new(
        "utilization",
        "Attribute Cache utilization (TCOR, 64 KiB budget)",
        &[
            "bench",
            "buffer_occupancy",
            "line_occupancy",
            "bypass_rate",
            "stalls",
            "dead_drops",
        ],
    );
    for b in &suite.benchmarks {
        let r = &b.tcor64;
        let attr = r.structure("attr$").expect("attr$ present");
        let bypass_rate =
            attr.stats.bypasses as f64 / (attr.stats.writes() + attr.stats.bypasses).max(1) as f64;
        t.push_row(vec![
            b.profile.alias.to_string(),
            f3(r.attr_buffer_utilization),
            f3(r.attr_line_utilization),
            f3(bypass_rate),
            r.attr_stalls.to_string(),
            r.dead_drops.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::run_benchmark;
    use tcor_common::TileGrid;

    #[test]
    fn utilization_is_high_under_pressure() {
        let grid = TileGrid::new(1960, 768, 32);
        // TRu: PB far exceeds the cache -> the buffer should run nearly
        // full, and some writes must bypass.
        let run = run_benchmark(&tcor_workloads::suite()[3], &grid);
        let s = SuiteRun {
            benchmarks: vec![run],
        };
        let t = utilization(&s);
        let row = &t.rows[0];
        let buf: f64 = row[1].parse().unwrap();
        let bypass: f64 = row[3].parse().unwrap();
        assert!(buf > 0.5, "buffer occupancy {buf}");
        assert!(bypass > 0.0, "no bypasses under pressure?");
    }
}
