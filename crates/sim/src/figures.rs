//! Full-system figures (14–24) and the headline summary.

use crate::output::{f3, pct_decrease, Table};
use crate::suite::{BenchmarkRun, SuiteRun};
use tcor::FrameReport;
use tcor_energy::EnergyModel;

fn pick(b: &BenchmarkRun, big: bool) -> (&FrameReport, &FrameReport, &FrameReport) {
    if big {
        (&b.base128, &b.tcor_nol2_128, &b.tcor128)
    } else {
        (&b.base64, &b.tcor_nol2_64, &b.tcor64)
    }
}

fn size_label(big: bool) -> &'static str {
    if big {
        "128KiB"
    } else {
        "64KiB"
    }
}

/// Figures 14/15: Parameter Buffer accesses to the L2, normalized to the
/// baseline, split into reads and writes.
pub fn fig14_15(suite: &SuiteRun, big: bool) -> Table {
    let id = if big { "fig15" } else { "fig14" };
    let mut t = Table::new(
        id,
        &format!(
            "PB accesses to L2 normalized to baseline ({} Tile Cache)",
            size_label(big)
        ),
        &[
            "bench",
            "base_read",
            "base_write",
            "tcor_read",
            "tcor_write",
            "norm_total",
            "decrease",
        ],
    );
    let mut norms = Vec::new();
    for b in &suite.benchmarks {
        let (base, _, tcor) = pick(b, big);
        let norm = tcor.pb_l2_accesses() as f64 / base.pb_l2_accesses().max(1) as f64;
        norms.push(norm);
        t.push_row(vec![
            b.profile.alias.to_string(),
            base.pb_l2_reads().to_string(),
            base.pb_l2_writes().to_string(),
            tcor.pb_l2_reads().to_string(),
            tcor.pb_l2_writes().to_string(),
            f3(norm),
            pct_decrease(base.pb_l2_accesses() as f64, tcor.pb_l2_accesses() as f64),
        ]);
    }
    let avg = norms.iter().sum::<f64>() / norms.len().max(1) as f64;
    t.push_row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        f3(avg),
        format!("{:.1}%", (1.0 - avg) * 100.0),
    ]);
    t
}

/// Figures 16/17: Parameter Buffer accesses to main memory, normalized.
pub fn fig16_17(suite: &SuiteRun, big: bool) -> Table {
    let id = if big { "fig17" } else { "fig16" };
    let mut t = Table::new(
        id,
        &format!(
            "PB accesses to Main Memory normalized to baseline ({} Tile Cache)",
            size_label(big)
        ),
        &[
            "bench",
            "base_read",
            "base_write",
            "tcor_read",
            "tcor_write",
            "norm_total",
            "decrease",
        ],
    );
    let mut norms = Vec::new();
    for b in &suite.benchmarks {
        let (base, _, tcor) = pick(b, big);
        let norm = tcor.pb_mm_accesses() as f64 / base.pb_mm_accesses().max(1) as f64;
        norms.push(norm);
        t.push_row(vec![
            b.profile.alias.to_string(),
            base.pb_mm_reads().to_string(),
            base.pb_mm_writes().to_string(),
            tcor.pb_mm_reads().to_string(),
            tcor.pb_mm_writes().to_string(),
            f3(norm),
            pct_decrease(base.pb_mm_accesses() as f64, tcor.pb_mm_accesses() as f64),
        ]);
    }
    let avg = norms.iter().sum::<f64>() / norms.len().max(1) as f64;
    t.push_row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        f3(avg),
        format!("{:.1}%", (1.0 - avg) * 100.0),
    ]);
    t
}

/// Figures 18/19: total main-memory accesses, normalized.
pub fn fig18_19(suite: &SuiteRun, big: bool) -> Table {
    let id = if big { "fig19" } else { "fig18" };
    let mut t = Table::new(
        id,
        &format!(
            "Total Main Memory accesses normalized to baseline ({} Tile Cache)",
            size_label(big)
        ),
        &["bench", "baseline", "tcor", "normalized", "decrease"],
    );
    let mut norms = Vec::new();
    for b in &suite.benchmarks {
        let (base, _, tcor) = pick(b, big);
        let norm = tcor.total_mm_accesses() as f64 / base.total_mm_accesses().max(1) as f64;
        norms.push(norm);
        t.push_row(vec![
            b.profile.alias.to_string(),
            base.total_mm_accesses().to_string(),
            tcor.total_mm_accesses().to_string(),
            f3(norm),
            pct_decrease(
                base.total_mm_accesses() as f64,
                tcor.total_mm_accesses() as f64,
            ),
        ]);
    }
    let avg = norms.iter().sum::<f64>() / norms.len().max(1) as f64;
    t.push_row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        f3(avg),
        format!("{:.1}%", (1.0 - avg) * 100.0),
    ]);
    t
}

/// Figures 20/21: memory-hierarchy energy for baseline, TCOR without L2
/// enhancements, and full TCOR, normalized to the baseline.
pub fn fig20_21(suite: &SuiteRun, big: bool) -> Table {
    let id = if big { "fig21" } else { "fig20" };
    let model = EnergyModel::default();
    let mut t = Table::new(
        id,
        &format!(
            "Memory hierarchy energy normalized to baseline ({} Tile Cache)",
            size_label(big)
        ),
        &[
            "bench",
            "tcor_no_l2enh",
            "tcor",
            "decrease_no_l2enh",
            "decrease_tcor",
        ],
    );
    let (mut sum_nol2, mut sum_tcor) = (0.0, 0.0);
    for b in &suite.benchmarks {
        let (base, nol2, tcor) = pick(b, big);
        let eb = model.evaluate(base).memory_hierarchy_pj();
        let en = model.evaluate(nol2).memory_hierarchy_pj();
        let et = model.evaluate(tcor).memory_hierarchy_pj();
        sum_nol2 += en / eb;
        sum_tcor += et / eb;
        t.push_row(vec![
            b.profile.alias.to_string(),
            f3(en / eb),
            f3(et / eb),
            pct_decrease(eb, en),
            pct_decrease(eb, et),
        ]);
    }
    let n = suite.benchmarks.len().max(1) as f64;
    t.push_row(vec![
        "average".into(),
        f3(sum_nol2 / n),
        f3(sum_tcor / n),
        format!("{:.1}%", (1.0 - sum_nol2 / n) * 100.0),
        format!("{:.1}%", (1.0 - sum_tcor / n) * 100.0),
    ]);
    t
}

/// Figure 22: decrease in total GPU energy, both Tile Cache sizes.
pub fn fig22(suite: &SuiteRun) -> Table {
    let model = EnergyModel::default();
    let mut t = Table::new(
        "fig22",
        "Decrease in total GPU energy wrt the baseline",
        &["bench", "64KiB", "128KiB"],
    );
    let (mut s64, mut s128) = (0.0, 0.0);
    for b in &suite.benchmarks {
        let d64 = 1.0 - model.evaluate(&b.tcor64).total_pj() / model.evaluate(&b.base64).total_pj();
        let d128 =
            1.0 - model.evaluate(&b.tcor128).total_pj() / model.evaluate(&b.base128).total_pj();
        s64 += d64;
        s128 += d128;
        t.push_row(vec![
            b.profile.alias.to_string(),
            format!("{:.1}%", d64 * 100.0),
            format!("{:.1}%", d128 * 100.0),
        ]);
    }
    let n = suite.benchmarks.len().max(1) as f64;
    t.push_row(vec![
        "average".into(),
        format!("{:.1}%", s64 / n * 100.0),
        format!("{:.1}%", s128 / n * 100.0),
    ]);
    t
}

/// Figures 23/24: Tile Fetcher primitives per cycle, with the speedup
/// factor annotated as in the paper.
pub fn fig23_24(suite: &SuiteRun, big: bool) -> Table {
    let id = if big { "fig24" } else { "fig23" };
    let mut t = Table::new(
        id,
        &format!(
            "Primitives output per cycle by the Tile Fetcher ({} Tile Cache)",
            size_label(big)
        ),
        &["bench", "baseline_ppc", "tcor_ppc", "speedup"],
    );
    let mut speedups = Vec::new();
    for b in &suite.benchmarks {
        let (base, _, tcor) = pick(b, big);
        let sp = tcor.primitives_per_cycle() / base.primitives_per_cycle().max(1e-12);
        speedups.push(sp);
        t.push_row(vec![
            b.profile.alias.to_string(),
            f3(base.primitives_per_cycle()),
            f3(tcor.primitives_per_cycle()),
            format!("{sp:.1}x"),
        ]);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    t.push_row(vec![
        "average".into(),
        "-".into(),
        "-".into(),
        format!("{avg:.1}x"),
    ]);
    t
}

/// The abstract's headline numbers: memory-hierarchy energy, total GPU
/// energy, Tiling Engine speedup and FPS.
pub fn headline(suite: &SuiteRun) -> Table {
    let model = EnergyModel::default();
    let n = suite.benchmarks.len().max(1) as f64;
    let avg = |f: &dyn Fn(&BenchmarkRun) -> f64| suite.benchmarks.iter().map(f).sum::<f64>() / n;

    let mem64 = avg(&|b| {
        1.0 - model.evaluate(&b.tcor64).memory_hierarchy_pj()
            / model.evaluate(&b.base64).memory_hierarchy_pj()
    });
    let mem128 = avg(&|b| {
        1.0 - model.evaluate(&b.tcor128).memory_hierarchy_pj()
            / model.evaluate(&b.base128).memory_hierarchy_pj()
    });
    let gpu64 =
        avg(&|b| 1.0 - model.evaluate(&b.tcor64).total_pj() / model.evaluate(&b.base64).total_pj());
    let speedup64 =
        avg(&|b| b.tcor64.primitives_per_cycle() / b.base64.primitives_per_cycle().max(1e-12));
    let fps64 = avg(&|b| {
        let fb = model.evaluate(&b.base64);
        let ft = model.evaluate(&b.tcor64);
        ft.fps(600_000_000) / fb.fps(600_000_000) - 1.0
    });
    let mm64 = avg(&|b| {
        1.0 - b.tcor64.total_mm_accesses() as f64 / b.base64.total_mm_accesses().max(1) as f64
    });
    let pb_l2_64 =
        avg(&|b| 1.0 - b.tcor64.pb_l2_accesses() as f64 / b.base64.pb_l2_accesses().max(1) as f64);
    let pb_mm_64 =
        avg(&|b| 1.0 - b.tcor64.pb_mm_accesses() as f64 / b.base64.pb_mm_accesses().max(1) as f64);

    let mut t = Table::new(
        "headline",
        "Headline results (suite averages) vs the paper's reported numbers",
        &["metric", "measured", "paper"],
    );
    let rows: Vec<(String, String, &str)> = vec![
        (
            "PB L2 access decrease (64KiB)".into(),
            format!("{:.1}%", pb_l2_64 * 100.0),
            "33.5%",
        ),
        (
            "PB MM access decrease (64KiB)".into(),
            format!("{:.1}%", pb_mm_64 * 100.0),
            "93.0%",
        ),
        (
            "Total MM access decrease (64KiB)".into(),
            format!("{:.1}%", mm64 * 100.0),
            "13.9%",
        ),
        (
            "Mem hierarchy energy decrease (64KiB)".into(),
            format!("{:.1}%", mem64 * 100.0),
            "14.1%",
        ),
        (
            "Mem hierarchy energy decrease (128KiB)".into(),
            format!("{:.1}%", mem128 * 100.0),
            "13.6%",
        ),
        (
            "Total GPU energy decrease (64KiB)".into(),
            format!("{:.1}%", gpu64 * 100.0),
            "5.6%",
        ),
        (
            "Tiling Engine speedup (64KiB)".into(),
            format!("{speedup64:.1}x"),
            "4.7x",
        ),
        (
            "FPS increase (64KiB)".into(),
            format!("{:.1}%", fps64 * 100.0),
            "3.7%",
        ),
    ];
    for (m, v, p) in rows {
        t.push_row(vec![m, v, p.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::run_benchmark;
    use tcor_common::TileGrid;

    fn mini_suite() -> SuiteRun {
        let grid = TileGrid::new(1960, 768, 32);
        SuiteRun {
            benchmarks: vec![run_benchmark(&tcor_workloads::suite()[1], &grid)],
        }
    }

    #[test]
    fn figures_have_one_row_per_benchmark_plus_average() {
        let s = mini_suite();
        for t in [
            fig14_15(&s, false),
            fig16_17(&s, true),
            fig18_19(&s, false),
            fig20_21(&s, true),
            fig22(&s),
            fig23_24(&s, false),
        ] {
            assert_eq!(t.rows.len(), s.benchmarks.len() + 1, "{}", t.id);
            assert_eq!(t.rows.last().unwrap()[0], "average");
        }
    }

    #[test]
    fn headline_has_paper_column() {
        let s = mini_suite();
        let t = headline(&s);
        assert!(t.columns.contains(&"paper".to_string()));
        assert_eq!(t.rows.len(), 8);
    }
}
