//! Tables I and II.

use crate::output::Table;
use crate::suite::SuiteRun;
use tcor_common::GpuConfig;

/// Table I: the simulation parameters actually used.
pub fn table1() -> Table {
    let cfg = GpuConfig::paper_baseline();
    let mut t = Table::new(
        "table1",
        "GPU simulation parameters",
        &["parameter", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        (
            "Tech Specs",
            format!(
                "{} MHz, {} V, {} nm",
                cfg.clock_hz / 1_000_000,
                cfg.voltage,
                cfg.tech_nm
            ),
        ),
        (
            "Screen Resolution",
            format!("{}x{}", cfg.screen_width, cfg.screen_height),
        ),
        ("Tile Size", format!("{0}x{0}", cfg.tile_size)),
        ("Tile Traversal Order", format!("{:?}", cfg.traversal)),
        (
            "Main Memory Latency",
            format!(
                "{}-{} cycles",
                cfg.memory.min_latency, cfg.memory.max_latency
            ),
        ),
        (
            "Main Memory Size",
            format!("{} GiB", cfg.memory.size_bytes >> 30),
        ),
        (
            "Vertex Cache",
            format!(
                "{}B/line, {} KiB, {}-way, {} cycle",
                cfg.vertex_cache.line_bytes,
                cfg.vertex_cache.size_bytes >> 10,
                cfg.vertex_cache.ways,
                cfg.vertex_cache.latency
            ),
        ),
        (
            "Texture Caches",
            format!(
                "{}x {}B/line, {} KiB, {}-way, {} cycle",
                cfg.num_texture_caches,
                cfg.texture_cache.line_bytes,
                cfg.texture_cache.size_bytes >> 10,
                cfg.texture_cache.ways,
                cfg.texture_cache.latency
            ),
        ),
        (
            "Tile Cache",
            format!("{} KiB total", cfg.tile_cache.total_bytes() >> 10),
        ),
        (
            "L2 Cache",
            format!(
                "{}B/line, {} MiB, {}-way, {} cycles",
                cfg.l2.line_bytes,
                cfg.l2.size_bytes >> 20,
                cfg.l2.ways,
                cfg.l2.latency
            ),
        ),
    ];
    for (k, v) in rows {
        t.push_row(vec![k.to_string(), v]);
    }
    t
}

/// Table II: per-benchmark characteristics, published targets vs what the
/// synthesized workloads measure — the calibration check.
pub fn table2(suite: &SuiteRun) -> Table {
    let mut t = Table::new(
        "table2",
        "Benchmark suite: Table II targets vs synthesized workloads",
        &[
            "bench",
            "genre",
            "type",
            "pb_mib_target",
            "pb_mib_measured",
            "reuse_target",
            "reuse_measured",
            "primitives",
        ],
    );
    for b in &suite.benchmarks {
        t.push_row(vec![
            b.profile.alias.to_string(),
            b.profile.genre.to_string(),
            if b.profile.is_3d { "3D" } else { "2D" }.to_string(),
            format!("{:.2}", b.profile.pb_footprint_mib),
            format!("{:.2}", b.measured_footprint_bytes as f64 / 1048576.0),
            format!("{:.1}", b.profile.avg_reuse),
            format!("{:.1}", b.measured_reuse),
            b.base64.num_primitives.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_parameters() {
        let t = table1();
        assert_eq!(t.rows.len(), 10);
        let params: Vec<&String> = t.rows.iter().map(|r| &r[0]).collect();
        assert!(params.iter().any(|p| p.contains("L2")));
        assert!(params.iter().any(|p| p.contains("Traversal")));
        let render = t.render();
        assert!(render.contains("600 MHz"));
        assert!(render.contains("1960x768"));
        assert!(render.contains("ZOrder"));
    }
}
