//! `tcor-sim bench-load`: an open-loop concurrent load generator for
//! the serving plane.
//!
//! Two in-process daemons are measured:
//!
//! * **Latency tiers** — a normally-provisioned daemon is primed once
//!   (cold computes, asserted byte-identical to an offline
//!   [`SimBackend`] run of the same [`ApiCall`]s), then hit with warm
//!   traffic at 1 / 64 / 512 / 2048 concurrent keep-alive connections.
//!   Each connection is one client thread pacing itself on a
//!   fixed-seed exponential arrival schedule (open-loop: send times
//!   come from the schedule, and latency is measured from the
//!   *scheduled* send, so a slow server inflates the tail instead of
//!   silently slowing the generator — the coordinated-omission fix).
//!   Latencies land in per-thread [`LatencyHistogram`]s merged after
//!   the run; every body is re-checked against the offline reference.
//! * **Overload** — a deliberately tiny daemon (1 worker, queue depth
//!   2) takes a synchronized burst of distinct *cold* keys. Admission
//!   control must shed the overflow gracefully: every answer is 200 or
//!   429 (no 5xx, no resets), every 429 carries `Retry-After` and the
//!   ms-precision `X-Tcor-Retry-After-Ms`, and the daemon still drains
//!   cleanly afterwards.
//!
//! Results merge into `BENCH_serve.json` under a `"load"` key (the
//! rest of the document — `bench-serve`'s cold/warm tiers — is
//! preserved via [`Json::parse`]).

use crate::suite::CELL_CONFIGS;
use crate::SimBackend;
use std::process::ExitCode;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};
use tcor_common::{fxhash64, Xoshiro256pp};
use tcor_serve::{ApiCall, Backend, HttpClient, LatencyHistogram, ServeConfig};

/// One concurrency tier of the latency phase.
struct Tier {
    /// Concurrent keep-alive connections (= client threads).
    conns: usize,
    /// Requests each connection sends.
    per_conn: usize,
    /// Per-connection arrival rate (Hz); aggregate = `conns × rate`.
    conn_rps: f64,
}

/// Parsed `tcor-sim bench-load` flags.
struct LoadOpts {
    path: String,
    smoke: bool,
    seed: u64,
}

/// What the overload burst observed, for the JSON record and the CI
/// assertions.
struct OverloadStats {
    conns: usize,
    ok: u64,
    shed: u64,
    min_hint_ms: u64,
    max_hint_ms: u64,
}

/// `tcor-sim bench-load [FILE] [--smoke] [--seed S]` entry point.
pub fn bench_load_cmd(args: &[String]) -> ExitCode {
    let mut opts = LoadOpts {
        path: "BENCH_serve.json".to_string(),
        smoke: false,
        seed: 42,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                opts.smoke = true;
                i += 1;
            }
            "--seed" => {
                let Some(Ok(seed)) = args.get(i + 1).map(|v| v.parse()) else {
                    eprintln!("bench-load: --seed needs an integer seed");
                    return ExitCode::from(2);
                };
                opts.seed = seed;
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("bench-load: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            file => {
                opts.path = file.to_string();
                i += 1;
            }
        }
    }
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench-load: FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The warm-tier request mix: the same five real-work targets
/// `bench-serve` times, paired with the [`ApiCall`] an offline backend
/// needs to recompute each body independently.
fn warm_targets() -> Vec<(String, ApiCall)> {
    let cell = |w: &str, c: &str| ApiCall::Cell {
        workload: w.to_string(),
        config: c.to_string(),
    };
    vec![
        ("/v1/cell/GTr/base64".to_string(), cell("GTr", "base64")),
        ("/v1/cell/GTr/tcor64".to_string(), cell("GTr", "tcor64")),
        ("/v1/cell/SoD/base64".to_string(), cell("SoD", "base64")),
        ("/v1/cell/SoD/tcor64".to_string(), cell("SoD", "tcor64")),
        (
            "/v1/misscurve/SoD/opt".to_string(),
            ApiCall::MissCurve {
                workload: "SoD".to_string(),
                policy: "opt".to_string(),
            },
        ),
    ]
}

/// Next exponential inter-arrival gap (seconds) at `rate_hz`.
fn exp_interval(rng: &mut Xoshiro256pp, rate_hz: f64) -> f64 {
    -(1.0 - rng.random_f64()).ln() / rate_hz
}

/// Blocks until `due`. With `spin`, the last ~300 µs busy-wait so the
/// scheduled send lands on time (oversleep would be charged to the
/// server); without it, plain `sleep` keeps thousands of pacing
/// threads off the CPU and the ~100 µs overshoot disappears into the
/// millisecond-scale latencies those tiers measure.
fn wait_until(due: Instant, spin: bool) {
    loop {
        let Some(left) = due.checked_duration_since(Instant::now()) else {
            return;
        };
        if left.is_zero() {
            return;
        }
        if !spin {
            std::thread::sleep(left);
        } else if left > Duration::from_micros(300) {
            std::thread::sleep(left - Duration::from_micros(250));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Runs one concurrency tier against a warmed daemon: `tier.conns`
/// keep-alive connections, each open-loop paced. Returns the merged
/// histogram and the measured wall time (seconds).
fn run_tier(
    addr: &str,
    tier: &Tier,
    seed: u64,
    targets: &Arc<Vec<(String, String)>>,
) -> Result<(LatencyHistogram, f64), String> {
    let barrier = Arc::new(Barrier::new(tier.conns + 1));
    // Precise (spin-finished) pacing up to 64 connections: the spin
    // window costs ≤ ~300 µs of CPU per request, affordable at these
    // tiers' aggregate rates and essential for sub-100 µs readings.
    // Above that, plain `sleep` pacing — thousands of spinners would
    // starve the daemon, and those tiers measure ≥ ms-scale queueing
    // where the overshoot noise is immaterial.
    let spin = tier.conns <= 64;
    let mut handles = Vec::with_capacity(tier.conns);
    for c in 0..tier.conns {
        let addr = addr.to_string();
        let barrier = Arc::clone(&barrier);
        let targets = Arc::clone(targets);
        let (per_conn, conn_rps) = (tier.per_conn, tier.conn_rps);
        let handle = std::thread::Builder::new()
            .name(format!("loadgen-{c}"))
            .stack_size(256 << 10)
            .spawn(move || -> Result<LatencyHistogram, String> {
                let mut client = HttpClient::new(addr, Duration::from_secs(30));
                // Prime the connection before the measured window so
                // connect storms (thousands of SYNs against a small
                // accept backlog) retry here, not on the clock.
                let mut primed = Err("no attempt".to_string());
                for _ in 0..100 {
                    match client.request("GET", "/health", None) {
                        Ok(r) if r.status == 200 => {
                            primed = Ok(());
                            break;
                        }
                        Ok(r) => primed = Err(format!("/health -> {}", r.status)),
                        Err(e) => {
                            primed = Err(e.to_string());
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
                primed.map_err(|e| format!("conn {c} never primed: {e}"))?;
                barrier.wait();
                let t0 = Instant::now();
                let mut rng = Xoshiro256pp::seed_from_u64(
                    seed ^ fxhash64(format!("loadgen-conn-{c}").as_bytes()),
                );
                let mut hist = LatencyHistogram::new();
                let mut sched = 0.0f64;
                for i in 0..per_conn {
                    sched += exp_interval(&mut rng, conn_rps);
                    let due = t0 + Duration::from_secs_f64(sched);
                    wait_until(due, spin);
                    let (path, want) = &targets[(c + i) % targets.len()];
                    match client.request("GET", path, None) {
                        Ok(r) if r.status == 200 && r.body == *want => {
                            hist.record(due.elapsed().as_micros() as u64);
                        }
                        Ok(r) if r.status != 200 => {
                            return Err(format!("conn {c}: GET {path} -> {}", r.status));
                        }
                        Ok(_) => {
                            return Err(format!(
                                "conn {c}: GET {path} body differs from the offline CLI"
                            ));
                        }
                        Err(e) => return Err(format!("conn {c}: GET {path}: {e}")),
                    }
                }
                Ok(hist)
            })
            .map_err(|e| format!("cannot spawn load thread {c}: {e}"))?;
        handles.push(handle);
    }
    barrier.wait();
    let t0 = Instant::now();
    let mut merged = LatencyHistogram::new();
    let mut first_err = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(hist)) => merged.merge(&hist),
            Ok(Err(msg)) => {
                first_err.get_or_insert(msg);
            }
            Err(_) => {
                first_err.get_or_insert("a load thread panicked".to_string());
            }
        }
    }
    if let Some(msg) = first_err {
        return Err(msg);
    }
    Ok((merged, t0.elapsed().as_secs_f64()))
}

/// A counter out of a `/metrics` body (0 when absent).
fn counter(metrics: &str, path: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{path} = ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Drains an in-process daemon over HTTP and joins it; any failure is
/// a bench failure (the "clean drain" criterion).
fn drain(server: tcor_serve::ServerHandle, addr: &str, what: &str) -> Result<(), String> {
    let mut client = HttpClient::new(addr, Duration::from_secs(10));
    match client.request("POST", "/admin/shutdown", None) {
        Ok(r) if r.status == 200 => {}
        Ok(r) => return Err(format!("{what}: shutdown -> {}", r.status)),
        Err(e) => return Err(format!("{what}: shutdown: {e}")),
    }
    server.wait();
    Ok(())
}

/// The overload burst: `conns` clients release together against a
/// 1-worker / depth-2 daemon, each asking for a distinct cold cell, so
/// all but a handful must be shed — gracefully.
fn overload_phase(conns: usize) -> Result<OverloadStats, String> {
    let cfg = ServeConfig {
        port: 0,
        workers: 1,
        event_threads: 2,
        queue_depth: 2,
        cache_cap: 64,
        deadline: Duration::from_secs(600),
        ..ServeConfig::default()
    };
    let server = tcor_serve::start(cfg, Arc::new(SimBackend::new()), None)
        .map_err(|e| format!("overload daemon: {e}"))?;
    let addr = server.addr().to_string();
    // Distinct cold keys — coalescing must not rescue the burst.
    let keys: Vec<String> = tcor_workloads::suite()
        .iter()
        .flat_map(|b| {
            CELL_CONFIGS
                .iter()
                .map(|cfg| format!("/v1/cell/{}/{cfg}", b.alias))
        })
        .take(conns)
        .collect();
    if keys.len() < conns {
        return Err(format!(
            "only {} distinct cold keys for {conns} clients",
            keys.len()
        ));
    }
    let barrier = Arc::new(Barrier::new(conns + 1));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::with_capacity(conns);
    for (c, key) in keys.into_iter().enumerate() {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        let failures = Arc::clone(&failures);
        let handle = std::thread::Builder::new()
            .name(format!("overload-{c}"))
            .stack_size(256 << 10)
            .spawn(move || -> Option<(u16, Option<u64>)> {
                let mut client = HttpClient::new(addr, Duration::from_secs(180));
                barrier.wait();
                match client.request("GET", &key, None) {
                    Ok(r) => {
                        let hint = r
                            .header("x-tcor-retry-after-ms")
                            .and_then(|v| v.parse().ok());
                        if r.status == 429 && r.header("retry-after").is_none() {
                            failures
                                .lock()
                                .unwrap()
                                .push(format!("GET {key}: 429 without Retry-After"));
                        }
                        Some((r.status, hint))
                    }
                    Err(e) => {
                        failures.lock().unwrap().push(format!("GET {key}: {e}"));
                        None
                    }
                }
            })
            .map_err(|e| format!("cannot spawn overload thread {c}: {e}"))?;
        handles.push(handle);
    }
    barrier.wait();
    let mut stats = OverloadStats {
        conns,
        ok: 0,
        shed: 0,
        min_hint_ms: u64::MAX,
        max_hint_ms: 0,
    };
    for handle in handles {
        match handle.join() {
            Ok(Some((200, _))) => stats.ok += 1,
            Ok(Some((429, Some(hint)))) => {
                stats.shed += 1;
                stats.min_hint_ms = stats.min_hint_ms.min(hint);
                stats.max_hint_ms = stats.max_hint_ms.max(hint);
            }
            Ok(Some((429, None))) => {
                return Err("a 429 arrived without a parseable X-Tcor-Retry-After-Ms".to_string());
            }
            Ok(Some((status, _))) => {
                return Err(format!(
                    "overload answered {status}; shedding must be 200-or-429"
                ));
            }
            Ok(None) => {} // failure already recorded
            Err(_) => return Err("an overload thread panicked".to_string()),
        }
    }
    let failures = failures.lock().unwrap();
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} transport/protocol failure(s) under overload, first: {first}",
            failures.len()
        ));
    }
    if stats.ok == 0 || stats.shed == 0 {
        return Err(format!(
            "overload burst did not both admit and shed (ok {}, shed {})",
            stats.ok, stats.shed
        ));
    }
    let shed_metric = counter(&server.metrics_text(), "serve/request_shed");
    if shed_metric != stats.shed {
        return Err(format!(
            "serve/request_shed = {shed_metric} but clients saw {} 429s",
            stats.shed
        ));
    }
    drain(server, &addr, "overload daemon")?;
    if stats.min_hint_ms == 0 {
        return Err("a shed hint of 0 ms is not actionable".to_string());
    }
    Ok(stats)
}

fn run(opts: &LoadOpts) -> Result<(), String> {
    use tcor_runner::Json;

    let tiers: Vec<Tier> = if opts.smoke {
        vec![
            Tier {
                conns: 1,
                per_conn: 300,
                conn_rps: 1000.0,
            },
            Tier {
                conns: 32,
                per_conn: 10,
                conn_rps: 5.0,
            },
        ]
    } else {
        vec![
            Tier {
                conns: 1,
                per_conn: 2000,
                conn_rps: 1000.0,
            },
            Tier {
                conns: 64,
                per_conn: 50,
                conn_rps: 8.0,
            },
            Tier {
                conns: 512,
                per_conn: 8,
                conn_rps: 2.0,
            },
            Tier {
                conns: 2048,
                per_conn: 4,
                conn_rps: 1.0,
            },
        ]
    };

    // Offline reference: an independent backend recomputes every body
    // the daemon will serve, so "byte-identical vs the CLI" is checked
    // on every single load-phase response.
    eprintln!("bench-load: computing offline reference bodies...");
    let offline = SimBackend::new();
    let mut targets: Vec<(String, String)> = Vec::new();
    for (path, call) in warm_targets() {
        let body = Backend::call(&offline, &call)
            .map_err(|e| format!("offline {path}: {e}"))?
            .body;
        targets.push((path, body));
    }
    let targets = Arc::new(targets);

    let cfg = ServeConfig {
        port: 0,
        workers: 2,
        event_threads: 2,
        queue_depth: 64,
        cache_cap: 256,
        deadline: Duration::from_secs(600),
        ..ServeConfig::default()
    };
    let server = tcor_serve::start(cfg, Arc::new(SimBackend::new()), None)
        .map_err(|e| format!("daemon: {e}"))?;
    let addr = server.addr().to_string();

    // Prime: cold-compute every target once, then verify the second
    // round is a memory-tier hit with the offline bytes.
    eprintln!("bench-load: priming {} targets...", targets.len());
    let mut primer = HttpClient::new(addr.clone(), Duration::from_secs(600));
    for round in 0..2 {
        for (path, want) in targets.iter() {
            let reply = primer
                .request("GET", path, None)
                .map_err(|e| format!("prime {path}: {e}"))?;
            if reply.status != 200 {
                return Err(format!("prime {path} -> {}", reply.status));
            }
            if reply.body != *want {
                return Err(format!("{path} differs from the offline CLI bytes"));
            }
            if round == 1 && reply.header("x-tcor-cache") != Some("mem") {
                return Err(format!(
                    "warm {path} served from `{}`, not mem",
                    reply.header("x-tcor-cache").unwrap_or("<absent>")
                ));
            }
        }
    }

    let mut tier_rows = Vec::new();
    let mut total_requests = 0u64;
    for tier in &tiers {
        eprintln!(
            "bench-load: tier {} conn(s) x {} request(s) at {:.1} rps/conn...",
            tier.conns, tier.per_conn, tier.conn_rps
        );
        let (hist, wall_s) = run_tier(&addr, tier, opts.seed, &targets)?;
        let (p50, p90, p99) = (
            hist.quantile_us(0.50),
            hist.quantile_us(0.90),
            hist.quantile_us(0.99),
        );
        eprintln!(
            "bench-load:   p50 {p50} us, p90 {p90} us, p99 {p99} us, max {} us \
             ({} requests in {wall_s:.2}s)",
            hist.max_us(),
            hist.count()
        );
        total_requests += hist.count();
        tier_rows.push(Json::obj([
            ("connections", Json::UInt(tier.conns as u64)),
            ("requests", Json::UInt(hist.count())),
            (
                "offered_rps",
                Json::Float(tier.conns as f64 * tier.conn_rps),
            ),
            ("achieved_rps", Json::Float(hist.count() as f64 / wall_s)),
            ("p50_us", Json::UInt(p50)),
            ("p90_us", Json::UInt(p90)),
            ("p99_us", Json::UInt(p99)),
            ("max_us", Json::UInt(hist.max_us())),
            ("mean_us", Json::Float(hist.mean_us())),
        ]));
    }

    let metrics = server.metrics_text();
    let conns_accepted = counter(&metrics, "serve/conns_accepted");
    let keepalive_reuses = counter(&metrics, "serve/keepalive_reuses");
    let eventloop_wakeups = counter(&metrics, "serve/eventloop_wakeups");
    if keepalive_reuses < total_requests / 2 {
        return Err(format!(
            "only {keepalive_reuses} keep-alive reuses across {total_requests} requests — \
             connections are not being multiplexed"
        ));
    }
    drain(server, &addr, "latency daemon")?;

    eprintln!("bench-load: overload burst...");
    let over = overload_phase(if opts.smoke { 16 } else { 32 })?;
    eprintln!(
        "bench-load:   {} admitted, {} shed with Retry-After hints {}..{} ms",
        over.ok, over.shed, over.min_hint_ms, over.max_hint_ms
    );

    let load = Json::obj([
        ("seed", Json::UInt(opts.seed)),
        ("smoke", Json::Bool(opts.smoke)),
        ("byte_identical_vs_cli", Json::Bool(true)),
        ("tiers", Json::Arr(tier_rows)),
        ("conns_accepted", Json::UInt(conns_accepted)),
        ("keepalive_reuses", Json::UInt(keepalive_reuses)),
        ("eventloop_wakeups", Json::UInt(eventloop_wakeups)),
        (
            "overload",
            Json::obj([
                ("connections", Json::UInt(over.conns as u64)),
                ("admitted", Json::UInt(over.ok)),
                ("shed", Json::UInt(over.shed)),
                ("min_retry_after_ms", Json::UInt(over.min_hint_ms)),
                ("max_retry_after_ms", Json::UInt(over.max_hint_ms)),
                ("server_5xx", Json::UInt(0)),
                ("transport_errors", Json::UInt(0)),
                ("clean_drain", Json::Bool(true)),
            ]),
        ),
    ]);

    // Merge under "load", preserving bench-serve's sections when the
    // file already exists (and starting fresh when it doesn't parse).
    let mut doc = match std::fs::read_to_string(&opts.path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
    {
        Some(Json::Obj(pairs)) => pairs,
        _ => vec![("bench".to_string(), Json::str("serve"))],
    };
    match doc.iter_mut().find(|(k, _)| k == "load") {
        Some(slot) => slot.1 = load,
        None => doc.push(("load".to_string(), load)),
    }
    std::fs::write(&opts.path, Json::Obj(doc).render() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", opts.path))?;
    eprintln!(
        "bench-load: PASS — {total_requests} warm request(s) byte-identical to the CLI, \
         graceful shedding under overload -> {}",
        opts.path
    );
    Ok(())
}
