//! # tcor-sim
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation, over the synthetic Table II suite. The `tcor-sim` binary
//! exposes them as subcommands (`tcor-sim fig14`, `tcor-sim all`, …) and
//! can dump CSV next to the pretty tables.
//!
//! | Experiment | Paper result it regenerates |
//! |---|---|
//! | `table1` | simulation parameters |
//! | `table2` | benchmark characteristics (verifies calibration) |
//! | `fig1`, `fig11` | LRU vs OPT (vs lower bound) miss curves, fully associative |
//! | `fig12` | LRU and OPT across associativities |
//! | `fig13` | LRU / MRU / DRRIP / OPT, 4-way |
//! | `fig14`–`fig15` | PB accesses to L2, normalized (64/128 KiB) |
//! | `fig16`–`fig17` | PB accesses to main memory, normalized |
//! | `fig18`–`fig19` | total main-memory accesses, normalized |
//! | `fig20`–`fig21` | memory-hierarchy energy (3 configurations) |
//! | `fig22` | total GPU energy decrease |
//! | `fig23`–`fig24` | Tile Fetcher primitives per cycle |
//! | `headline` | the abstract's summary numbers |
//!
//! All results are deterministic: scenes are seeded, the DRAM model is
//! state-machine-based, and no wall-clock enters any measurement.

pub mod ablation;
pub mod example;
pub mod figures;
pub mod misscurves;
pub mod output;
pub mod scaling;
pub mod suite;
pub mod sweep;
pub mod traversal_study;
pub mod utilization;
pub mod tables;

pub use output::Table;
pub use suite::{run_suite, BenchmarkRun, SuiteRun};

/// Every experiment id, in presentation order.
pub const EXPERIMENTS: [&str; 25] = [
    "table1", "table2", "fig1", "fig10", "fig11", "fig12", "fig13", "fig13x", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "headline",
    "ablation", "scaling", "sweep", "traversal", "utilization",
];

/// Runs one experiment by id, reusing `suite` for the full-system ones
/// (pass `None` to compute on demand).
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run_experiment(id: &str, suite: Option<&SuiteRun>) -> Vec<Table> {
    let need_suite = !matches!(
        id,
        "table1" | "fig1" | "fig10" | "fig11" | "fig12" | "fig13" | "fig13x" | "ablation"
            | "scaling" | "sweep" | "traversal"
    );
    let owned;
    let suite_ref: Option<&SuiteRun> = if need_suite && suite.is_none() {
        owned = run_suite();
        Some(&owned)
    } else {
        suite
    };
    match id {
        "table1" => vec![tables::table1()],
        "table2" => vec![tables::table2(suite_ref.expect("suite"))],
        "fig1" => vec![misscurves::fig1()],
        "fig10" => vec![example::fig10()],
        "fig11" => vec![misscurves::fig11()],
        "fig12" => misscurves::fig12(),
        "fig13" => vec![misscurves::fig13()],
        "fig13x" => vec![misscurves::fig13x()],
        "fig14" => vec![figures::fig14_15(suite_ref.expect("suite"), false)],
        "fig15" => vec![figures::fig14_15(suite_ref.expect("suite"), true)],
        "fig16" => vec![figures::fig16_17(suite_ref.expect("suite"), false)],
        "fig17" => vec![figures::fig16_17(suite_ref.expect("suite"), true)],
        "fig18" => vec![figures::fig18_19(suite_ref.expect("suite"), false)],
        "fig19" => vec![figures::fig18_19(suite_ref.expect("suite"), true)],
        "fig20" => vec![figures::fig20_21(suite_ref.expect("suite"), false)],
        "fig21" => vec![figures::fig20_21(suite_ref.expect("suite"), true)],
        "fig22" => vec![figures::fig22(suite_ref.expect("suite"))],
        "fig23" => vec![figures::fig23_24(suite_ref.expect("suite"), false)],
        "fig24" => vec![figures::fig23_24(suite_ref.expect("suite"), true)],
        "headline" => vec![figures::headline(suite_ref.expect("suite"))],
        "ablation" => vec![ablation::ablation()],
        "scaling" => vec![scaling::scaling()],
        "sweep" => vec![sweep::sweep()],
        "traversal" => vec![traversal_study::traversal_study()],
        "utilization" => vec![utilization::utilization(suite_ref.expect("suite"))],
        other => panic!("unknown experiment `{other}`"),
    }
}
