//! # tcor-sim
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation, over the synthetic Table II suite. The `tcor-sim` binary
//! exposes them as subcommands (`tcor-sim fig14`, `tcor-sim all`, …) and
//! can dump CSV next to the pretty tables.
//!
//! | Experiment | Paper result it regenerates |
//! |---|---|
//! | `table1` | simulation parameters |
//! | `table2` | benchmark characteristics (verifies calibration) |
//! | `fig1`, `fig11` | LRU vs OPT (vs lower bound) miss curves, fully associative |
//! | `fig12` | LRU and OPT across associativities |
//! | `fig13` | LRU / MRU / DRRIP / OPT, 4-way |
//! | `fig14`–`fig15` | PB accesses to L2, normalized (64/128 KiB) |
//! | `fig16`–`fig17` | PB accesses to main memory, normalized |
//! | `fig18`–`fig19` | total main-memory accesses, normalized |
//! | `fig20`–`fig21` | memory-hierarchy energy (3 configurations) |
//! | `fig22` | total GPU energy decrease |
//! | `fig23`–`fig24` | Tile Fetcher primitives per cycle |
//! | `headline` | the abstract's summary numbers |
//!
//! All results are deterministic: scenes are seeded, the DRAM model is
//! state-machine-based, and no wall-clock enters any measurement.

pub mod ablation;
pub mod chaos;
pub mod example;
pub mod figures;
pub mod loadgen;
pub mod misscurves;
pub mod orchestrate;
pub mod output;
pub mod report_json;
pub mod scaling;
pub mod serve_backend;
pub mod streamcli;
pub mod suite;
pub mod sweep;
pub mod tables;
pub mod traversal_study;
pub mod utilization;

pub use orchestrate::{
    run_experiments, run_experiments_strict, ExecMode, ExperimentOutcome, RunOptions, RunOutcome,
};
pub use output::Table;
pub use serve_backend::{sim_version, SimBackend};
pub use suite::{run_suite, BenchmarkRun, SuiteRun};

/// Every experiment id, in presentation order.
pub const EXPERIMENTS: [&str; 25] = [
    "table1",
    "table2",
    "fig1",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig13x",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "headline",
    "ablation",
    "scaling",
    "sweep",
    "traversal",
    "utilization",
];

/// Runs one experiment by id against `store`, computing (and memoizing)
/// whatever shared artifacts it needs — the full-system [`SuiteRun`],
/// the aggregated PB traces, calibrated scenes.
///
/// # Errors
///
/// Returns a config error listing the valid ids on an unknown id, and
/// propagates typed store errors from the shared-artifact lookups.
pub fn try_run_experiment(
    store: &tcor_runner::ArtifactStore,
    id: &str,
) -> tcor_common::TcorResult<Vec<Table>> {
    let suite = || orchestrate::suite_from_store(store);
    Ok(match id {
        "table1" => vec![tables::table1()],
        "table2" => vec![tables::table2(&*suite()?)],
        "fig1" => vec![misscurves::fig1(store)?],
        "fig10" => vec![example::fig10()],
        "fig11" => vec![misscurves::fig11(store)?],
        "fig12" => misscurves::fig12(store)?,
        "fig13" => vec![misscurves::fig13(store)?],
        "fig13x" => vec![misscurves::fig13x(store)?],
        "fig14" => vec![figures::fig14_15(&*suite()?, false)],
        "fig15" => vec![figures::fig14_15(&*suite()?, true)],
        "fig16" => vec![figures::fig16_17(&*suite()?, false)],
        "fig17" => vec![figures::fig16_17(&*suite()?, true)],
        "fig18" => vec![figures::fig18_19(&*suite()?, false)],
        "fig19" => vec![figures::fig18_19(&*suite()?, true)],
        "fig20" => vec![figures::fig20_21(&*suite()?, false)],
        "fig21" => vec![figures::fig20_21(&*suite()?, true)],
        "fig22" => vec![figures::fig22(&*suite()?)],
        "fig23" => vec![figures::fig23_24(&*suite()?, false)],
        "fig24" => vec![figures::fig23_24(&*suite()?, true)],
        "headline" => vec![figures::headline(&*suite()?)],
        "ablation" => vec![ablation::ablation(store)?],
        "scaling" => vec![scaling::scaling(store)?],
        "sweep" => vec![sweep::sweep(store)?],
        "traversal" => vec![traversal_study::traversal_study(store)?],
        "utilization" => vec![utilization::utilization(&*suite()?)],
        other => {
            return Err(tcor_common::TcorError::config(format!(
                "unknown experiment `{other}`\nvalid experiments: {}",
                EXPERIMENTS.join(", ")
            )))
        }
    })
}

/// Runs one experiment by id, reusing `suite` for the full-system ones
/// (pass `None` to compute on demand). Compatibility wrapper over
/// [`try_run_experiment`] with a private store.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run_experiment(id: &str, suite: Option<&SuiteRun>) -> Vec<Table> {
    let store = tcor_runner::ArtifactStore::new();
    if let Some(s) = suite {
        let s = s.clone();
        let _ = store.get_or_compute(orchestrate::artifact_key(orchestrate::SUITE_DESC), || s);
    }
    try_run_experiment(&store, id).unwrap_or_else(|e| panic!("{e}"))
}
