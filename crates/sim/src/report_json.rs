//! JSON encodings of simulator results for the serving plane.
//!
//! `tcor-serve` transports opaque bodies; this module decides what a
//! cell report or a miss curve looks like on the wire. Both encoders
//! are deterministic — same report, same bytes — which is what makes
//! the serve-vs-CLI byte-identity guarantee (and the response cache's
//! warm-equals-cold property) checkable rather than aspirational:
//! counters come from the sorted [`MetricRegistry`](tcor_common::MetricRegistry)
//! view, derived floats render through [`Json`]'s shortest-round-trip
//! formatting, and no timestamps or host state enter the document.

use tcor::FrameReport;
use tcor_runner::Json;

/// Encodes one cell report (benchmark × configuration) as a JSON
/// object: identity, every hierarchical counter from
/// [`FrameReport::metrics`], and the derived per-frame quantities the
/// paper's figures plot.
pub fn frame_report_json(workload: &str, config: &str, report: &FrameReport) -> Json {
    let counters: Vec<(String, Json)> = report
        .metrics()
        .iter()
        .map(|(path, v)| (path.to_string(), Json::UInt(v)))
        .collect();
    Json::obj([
        ("workload", Json::str(workload)),
        ("config", Json::str(config)),
        ("system", Json::str(report.system)),
        ("counters", Json::Obj(counters)),
        (
            "derived",
            Json::obj([
                ("pb_l2_accesses", Json::UInt(report.pb_l2_accesses())),
                ("pb_mm_accesses", Json::UInt(report.pb_mm_accesses())),
                ("total_l2_accesses", Json::UInt(report.total_l2_accesses())),
                ("total_mm_accesses", Json::UInt(report.total_mm_accesses())),
                ("fetch_cycles", Json::UInt(report.fetch_cycles)),
                ("plb_cycles", Json::UInt(report.plb_cycles)),
                ("raster_cycles", Json::Float(report.raster_cycles)),
                ("coupled_cycles", Json::Float(report.coupled_cycles)),
                (
                    "primitives_per_cycle",
                    Json::Float(report.primitives_per_cycle()),
                ),
                ("num_primitives", Json::UInt(report.num_primitives as u64)),
                ("pb_footprint_bytes", Json::UInt(report.pb_footprint_bytes)),
                ("fragments", Json::Float(report.fragments)),
                (
                    "shader_instructions",
                    Json::Float(report.shader_instructions),
                ),
                (
                    "attr_buffer_utilization",
                    Json::Float(report.attr_buffer_utilization),
                ),
                (
                    "attr_line_utilization",
                    Json::Float(report.attr_line_utilization),
                ),
                ("attr_stalls", Json::UInt(report.attr_stalls)),
            ]),
        ),
    ])
}

/// Encodes one miss curve as parallel `size_kb` / `miss_ratio` arrays.
/// Delegates to the shared encoder in `tcor-stream` so the offline
/// misscurve goldens and the streaming plane's finished curves are
/// byte-identical by construction, not by convention.
pub fn misscurve_json(workload: &str, policy: &str, sizes: &[usize], curve: &[f64]) -> Json {
    tcor_stream::misscurve_json(workload, policy, sizes, curve)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misscurve_json_is_deterministic_and_parallel() {
        let a = misscurve_json("GTr", "lru", &[8, 16], &[0.5, 0.25]);
        let b = misscurve_json("GTr", "lru", &[8, 16], &[0.5, 0.25]);
        assert_eq!(a.render(), b.render());
        assert_eq!(
            a.render(),
            "{\"workload\":\"GTr\",\"policy\":\"lru\",\"size_kb\":[8,16],\
             \"miss_ratio\":[0.5,0.25]}"
        );
    }

    #[test]
    fn frame_report_json_carries_identity_counters_and_derived() {
        let report = FrameReport {
            system: "tcor",
            structures: Vec::new(),
            l2_stats: tcor_common::AccessStats::new(),
            l2_traffic: tcor_mem::TrafficMatrix::default(),
            mm_traffic: tcor_mem::TrafficMatrix::default(),
            dead_drops: 0,
            l2_wb_blocks: 0,
            pb_fill_blocks: 0,
            attr_wb_blocks: 0,
            attr_opt_violations: 0,
            fetch_cycles: 10,
            prims_fetched: 5,
            plb_cycles: 3,
            raster_cycles: 2.5,
            coupled_cycles: 12.0,
            fragments: 100.0,
            shader_instructions: 400.0,
            num_primitives: 5,
            pb_footprint_bytes: 960,
            attr_buffer_utilization: 0.5,
            attr_line_utilization: 0.75,
            attr_stalls: 0,
        };
        let doc = frame_report_json("GTr", "base64", &report).render();
        assert!(doc.starts_with("{\"workload\":\"GTr\",\"config\":\"base64\""));
        assert!(doc.contains("\"counters\":{"));
        assert!(doc.contains("\"derived\":{"));
        assert!(doc.contains("\"num_primitives\":"));
    }
}
