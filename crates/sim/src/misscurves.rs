//! The replacement-policy studies: Figures 1, 11, 12 and 13.
//!
//! All four figures plot miss ratio against Attribute Cache capacity over
//! the aggregated PB-Attributes access streams of the benchmark suite, at
//! primitive granularity (§V.A's capacity conversion: a primitive
//! averages 3 attributes × 64 B = 192 B).

use crate::orchestrate::{artifact_key, calibrated_scene, paper_grid, TRACES_DESC};
use crate::output::Table;
use std::sync::Arc;
use tcor_cache::policy::{by_name, Opt};
use tcor_cache::profile::{opt_misses, simulate_policy, LruStackProfiler};
use tcor_cache::{Indexing, Trace};
use tcor_common::{CacheParams, TcorResult};
use tcor_gpu::bin_scene;
use tcor_runner::ArtifactStore;
use tcor_workloads::{primitive_trace, prims_capacity, suite};

/// One benchmark's trace plus its primitive count.
pub struct BenchTrace {
    /// Table II alias.
    pub alias: &'static str,
    /// The primitive-granularity PB-Attributes trace.
    pub trace: Trace,
    /// Total primitives (TP in the lower-bound formula).
    pub total_prims: usize,
}

/// Builds the suite's traces (deterministic), memoized in `store` and
/// sharing each benchmark's calibrated scene with the full-system cells.
///
/// # Errors
///
/// Propagates store corruption from the scene lookups.
pub fn suite_traces(store: &ArtifactStore) -> TcorResult<Arc<Vec<BenchTrace>>> {
    let key = artifact_key(TRACES_DESC);
    if let Some(traces) = store.get::<Vec<BenchTrace>>(key)? {
        return Ok(traces);
    }
    // Build fallibly outside the memoizing closure so scene-lookup
    // errors propagate as typed results instead of panics.
    let grid = paper_grid();
    let order = tcor_common::Traversal::ZOrder.order(&grid);
    let mut built = Vec::new();
    for b in &suite() {
        let cal = calibrated_scene(store, b, &grid)?;
        let frame = bin_scene(&cal.scene, &grid, &order);
        built.push(BenchTrace {
            alias: b.alias,
            total_prims: frame.binned.num_primitives(),
            trace: primitive_trace(&frame.binned, &order),
        });
    }
    store.get_or_compute(key, move || built)
}

/// Aggregate LRU miss ratio at each capacity: one Mattson pass per
/// benchmark gives every size at once.
fn lru_curve(traces: &[BenchTrace], capacities: &[usize]) -> Vec<f64> {
    let profilers: Vec<LruStackProfiler> = traces
        .iter()
        .map(|b| {
            let mut p = LruStackProfiler::new();
            for a in &b.trace {
                p.record(a.addr);
            }
            p
        })
        .collect();
    let total: u64 = traces.iter().map(|b| b.trace.len() as u64).sum();
    capacities
        .iter()
        .map(|&c| {
            let misses: u64 = profilers.iter().map(|p| p.misses_at(c)).sum();
            misses as f64 / total as f64
        })
        .collect()
}

/// Aggregate exact-Belady miss ratio per capacity.
fn opt_curve(traces: &[BenchTrace], capacities: &[usize]) -> Vec<f64> {
    let total: u64 = traces.iter().map(|b| b.trace.len() as u64).sum();
    capacities
        .iter()
        .map(|&c| {
            let misses: u64 = traces.iter().map(|b| opt_misses(&b.trace, c)).sum();
            misses as f64 / total as f64
        })
        .collect()
}

/// Aggregate lower-bound ratio (§V.A) per capacity.
fn lb_curve(traces: &[BenchTrace], capacities: &[usize]) -> Vec<f64> {
    let total: u64 = traces.iter().map(|b| b.trace.len() as u64).sum();
    capacities
        .iter()
        .map(|&c| {
            let misses: u64 = traces
                .iter()
                .map(|b| tcor_workloads::trace::lower_bound_misses(b.total_prims, c))
                .sum();
            misses as f64 / total as f64
        })
        .collect()
}

/// Aggregate miss ratio of a named policy on a set-associative geometry
/// (capacity in primitives, `ways == 0` for fully associative).
fn policy_curve(traces: &[BenchTrace], capacities: &[usize], ways: u32, policy: &str) -> Vec<f64> {
    let total: u64 = traces.iter().map(|b| b.trace.len() as u64).sum();
    capacities
        .iter()
        .map(|&c| {
            // Round capacity down to a whole number of sets.
            let lines = if ways == 0 {
                c.max(1) as u64
            } else {
                ((c as u64 / ways as u64).max(1)) * ways as u64
            };
            let params = CacheParams::new(lines, 1, ways, 1);
            let misses: u64 = traces
                .iter()
                .map(|b| {
                    let oracle = policy == "opt";
                    let stats = if oracle {
                        simulate_policy(&b.trace, params, Indexing::Modulo, Opt::new(), true)
                    } else {
                        simulate_policy(&b.trace, params, Indexing::Modulo, by_name(policy), false)
                    };
                    stats.misses()
                })
                .sum();
            misses as f64 / total as f64
        })
        .collect()
}

fn kb_sizes(from_kb: usize, to_kb: usize, step_kb: usize) -> Vec<usize> {
    (from_kb..=to_kb).step_by(step_kb).collect()
}

/// Figure 1: LRU vs OPT, fully associative, 8–152 KB.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig1(store: &ArtifactStore) -> TcorResult<Table> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(8, 152, 8);
    let caps: Vec<usize> = sizes
        .iter()
        .map(|kb| prims_capacity(*kb as u64 * 1024))
        .collect();
    let lru = lru_curve(&traces, &caps);
    let opt = opt_curve(&traces, &caps);
    let mut t = Table::new(
        "fig1",
        "LRU and OPT miss ratio, fully associative L1 (suite aggregate)",
        &["size_kb", "lru", "opt"],
    );
    for ((kb, l), o) in sizes.iter().zip(&lru).zip(&opt) {
        t.push_row(vec![kb.to_string(), format!("{l:.4}"), format!("{o:.4}")]);
    }
    Ok(t)
}

/// Figure 11: adds the lower bound and extends to 456 KB.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig11(store: &ArtifactStore) -> TcorResult<Table> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(8, 456, 16);
    let caps: Vec<usize> = sizes
        .iter()
        .map(|kb| prims_capacity(*kb as u64 * 1024))
        .collect();
    let lb = lb_curve(&traces, &caps);
    let lru = lru_curve(&traces, &caps);
    let opt = opt_curve(&traces, &caps);
    let mut t = Table::new(
        "fig11",
        "Lower bound, LRU and OPT miss ratio, fully associative L1",
        &["size_kb", "lower_bound", "lru", "opt"],
    );
    for (((kb, b), l), o) in sizes.iter().zip(&lb).zip(&lru).zip(&opt) {
        t.push_row(vec![
            kb.to_string(),
            format!("{b:.4}"),
            format!("{l:.4}"),
            format!("{o:.4}"),
        ]);
    }
    Ok(t)
}

/// Figure 12: LRU and OPT across associativities (two tables).
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig12(store: &ArtifactStore) -> TcorResult<Vec<Table>> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(8, 152, 16);
    let caps: Vec<usize> = sizes
        .iter()
        .map(|kb| prims_capacity(*kb as u64 * 1024))
        .collect();
    let lb = lb_curve(&traces, &caps);
    let assocs: [(u32, &str); 5] = [
        (1, "direct"),
        (2, "assoc2"),
        (4, "assoc4"),
        (8, "assoc8"),
        (0, "full"),
    ];
    let mut out = Vec::new();
    for (policy, id) in [("lru", "fig12-lru"), ("opt", "fig12-opt")] {
        let mut cols = vec!["size_kb".to_string(), "lower_bound".to_string()];
        cols.extend(assocs.iter().map(|(_, n)| n.to_string()));
        let mut t = Table {
            id: id.to_string(),
            title: format!("{policy} miss ratio across associativities"),
            columns: cols,
            rows: Vec::new(),
        };
        let curves: Vec<Vec<f64>> = assocs
            .iter()
            .map(|(w, _)| policy_curve(&traces, &caps, *w, policy))
            .collect();
        for (i, kb) in sizes.iter().enumerate() {
            let mut row = vec![kb.to_string(), format!("{:.4}", lb[i])];
            row.extend(curves.iter().map(|c| format!("{:.4}", c[i])));
            t.push_row(row);
        }
        out.push(t);
    }
    Ok(out)
}

/// Figure 13: LRU, MRU, DRRIP and OPT in a 4-way cache, plus the lower
/// bound.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig13(store: &ArtifactStore) -> TcorResult<Table> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(40, 160, 8);
    let caps: Vec<usize> = sizes
        .iter()
        .map(|kb| prims_capacity(*kb as u64 * 1024))
        .collect();
    let lb = lb_curve(&traces, &caps);
    let policies = ["mru", "drrip", "lru", "opt"];
    let curves: Vec<Vec<f64>> = policies
        .iter()
        .map(|p| policy_curve(&traces, &caps, 4, p))
        .collect();
    let mut t = Table::new(
        "fig13",
        "MRU, DRRIP, LRU and OPT miss ratio in a 4-way L1",
        &["size_kb", "lower_bound", "mru", "drrip", "lru", "opt"],
    );
    for (i, kb) in sizes.iter().enumerate() {
        let mut row = vec![kb.to_string(), format!("{:.4}", lb[i])];
        row.extend(curves.iter().map(|c| format!("{:.4}", c[i])));
        t.push_row(row);
    }
    Ok(t)
}

/// Figure 13 extended: every policy in the toolbox (including the
/// LIP/BIP/DIP insertion family and the PC-less Hawkeye) against OPT and
/// the lower bound, 4-way.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig13x(store: &ArtifactStore) -> TcorResult<Table> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(48, 144, 32);
    let caps: Vec<usize> = sizes
        .iter()
        .map(|kb| prims_capacity(*kb as u64 * 1024))
        .collect();
    let lb = lb_curve(&traces, &caps);
    let policies = [
        "random", "fifo", "mru", "nru", "plru", "lip", "bip", "dip", "srrip", "brrip", "drrip",
        "lru",
    ];
    let curves: Vec<Vec<f64>> = policies
        .iter()
        .map(|p| policy_curve(&traces, &caps, 4, p))
        .collect();
    // Hawkeye needs the address signal; use its dedicated driver.
    let total: u64 = traces.iter().map(|b| b.trace.len() as u64).sum();
    let hawkeye: Vec<f64> = caps
        .iter()
        .map(|&c| {
            let lines = ((c as u64 / 4).max(1)) * 4;
            let params = CacheParams::new(lines, 1, 4, 1);
            let misses: u64 = traces
                .iter()
                .map(|b| tcor_cache::policy::simulate_hawkeye(&b.trace, params).misses())
                .sum();
            misses as f64 / total as f64
        })
        .collect();
    let opt = policy_curve(&traces, &caps, 4, "opt");

    let mut cols = vec!["size_kb".to_string(), "lower_bound".to_string()];
    cols.extend(policies.iter().map(|p| p.to_string()));
    cols.push("hawkeye".to_string());
    cols.push("opt".to_string());
    let mut t = Table {
        id: "fig13x".to_string(),
        title: "Extended policy comparison (4-way): the full toolbox vs OPT".to_string(),
        columns: cols,
        rows: Vec::new(),
    };
    for (i, kb) in sizes.iter().enumerate() {
        let mut row = vec![kb.to_string(), format!("{:.4}", lb[i])];
        row.extend(curves.iter().map(|c| format!("{:.4}", c[i])));
        row.push(format!("{:.4}", hawkeye[i]));
        row.push(format!("{:.4}", opt[i]));
        t.push_row(row);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced trace set for fast shape checks.
    fn mini_traces() -> Vec<BenchTrace> {
        let grid = tcor_common::TileGrid::new(1960, 768, 32);
        suite()[..2]
            .iter()
            .map(|b| {
                let scene = tcor_workloads::generate_scene(b, &grid);
                let order = tcor_common::Traversal::ZOrder.order(&grid);
                let frame = bin_scene(&scene, &grid, &order);
                BenchTrace {
                    alias: b.alias,
                    total_prims: frame.binned.num_primitives(),
                    trace: primitive_trace(&frame.binned, &order),
                }
            })
            .collect()
    }

    #[test]
    fn opt_dominates_lru_and_lb_dominates_opt() {
        let traces = mini_traces();
        let caps = vec![64, 128, 256, 512];
        let lb = lb_curve(&traces, &caps);
        let lru = lru_curve(&traces, &caps);
        let opt = opt_curve(&traces, &caps);
        for i in 0..caps.len() {
            assert!(
                lb[i] <= opt[i] + 1e-12,
                "LB {} > OPT {} at {}",
                lb[i],
                opt[i],
                caps[i]
            );
            assert!(
                opt[i] <= lru[i] + 1e-12,
                "OPT {} > LRU {} at {}",
                opt[i],
                lru[i],
                caps[i]
            );
        }
    }

    #[test]
    fn curves_fall_with_capacity() {
        let traces = mini_traces();
        let caps = vec![32, 128, 1024];
        for curve in [lru_curve(&traces, &caps), opt_curve(&traces, &caps)] {
            assert!(curve[0] >= curve[1] && curve[1] >= curve[2]);
        }
    }

    #[test]
    fn opt_gap_grows_with_lower_associativity_pressure() {
        // At 4-way, OPT still beats LRU (Fig. 13's key shape).
        let traces = mini_traces();
        let caps = vec![256];
        let lru4 = policy_curve(&traces, &caps, 4, "lru");
        let opt4 = policy_curve(&traces, &caps, 4, "opt");
        assert!(opt4[0] <= lru4[0]);
    }

    #[test]
    fn mru_is_worst_at_moderate_capacity() {
        let traces = mini_traces();
        let caps = vec![256];
        let mru = policy_curve(&traces, &caps, 4, "mru");
        let lru = policy_curve(&traces, &caps, 4, "lru");
        assert!(mru[0] >= lru[0], "MRU {} < LRU {}", mru[0], lru[0]);
    }
}
