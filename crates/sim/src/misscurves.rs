//! The replacement-policy studies: Figures 1, 11, 12 and 13.
//!
//! All four figures plot miss ratio against Attribute Cache capacity over
//! the aggregated PB-Attributes access streams of the benchmark suite, at
//! primitive granularity (§V.A's capacity conversion: a primitive
//! averages 3 attributes × 64 B = 192 B).
//!
//! Since PR 4 the figures run on a **single-pass engine**: fully
//! associative LRU/OPT come off Mattson stack profilers (one trace pass
//! yields every capacity), set-associative sweeps stream each trace once
//! through a bank of cache instances per policy, and each benchmark's
//! next-use annotation is computed once and shared by every figure. The
//! pre-engine per-(policy, capacity) replay is retained as
//! [`CurveEngine::Replay`] — the reference that `bench-misscurves` and
//! the equivalence tests pin the engine against, bit for bit.

use crate::orchestrate::{artifact_key, calibrated_scene, paper_grid, TRACES_DESC};
use crate::output::Table;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tcor_cache::policy::{by_name, simulate_hawkeye, simulate_hawkeye_bank, Opt};
use tcor_cache::profile::{
    opt_misses, simulate_policy, simulate_policy_annotated, simulate_policy_bank, LruStackProfiler,
    OptStackProfiler,
};
use tcor_cache::{annotate_next_use, simulate_policy_shard_range, Indexing, ShardCache, Trace};
use tcor_common::{CacheParams, TcorError, TcorResult};
use tcor_gpu::bin_scene;
use tcor_runner::{scatter, ArtifactStore};
use tcor_workloads::{primitive_trace, prims_capacity, suite};

/// One benchmark's trace plus its primitive count and shared annotation.
pub struct BenchTrace {
    /// Table II alias.
    pub alias: &'static str,
    /// The primitive-granularity PB-Attributes trace.
    pub trace: Trace,
    /// [`annotate_next_use`] of `trace`, computed once and shared by
    /// every figure that needs oracle metadata.
    pub next_use: Vec<u64>,
    /// Total primitives (TP in the lower-bound formula).
    pub total_prims: usize,
    /// Memoized per-set bucketings of `trace` (see
    /// [`tcor_cache::shard`]): every set-local policy sweeping the same
    /// geometry bank shares one counting-sort pass per set count.
    pub shards: ShardCache,
}

impl BenchTrace {
    /// Builds a benchmark trace, annotating it once.
    pub fn new(alias: &'static str, trace: Trace, total_prims: usize) -> Self {
        let next_use = annotate_next_use(&trace);
        BenchTrace {
            alias,
            trace,
            next_use,
            total_prims,
            shards: ShardCache::new(),
        }
    }
}

/// Which computational engine drives the miss-curve experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CurveEngine {
    /// Stack profilers plus banked simulation: one trace pass per policy
    /// (the production path).
    SinglePass,
    /// One full replay per (policy, capacity), re-annotating where the
    /// pre-engine code did. Retained as the reference implementation for
    /// `bench-misscurves` and the equivalence tests.
    Replay,
}

/// Builds the suite's traces (deterministic), memoized in `store` and
/// sharing each benchmark's calibrated scene with the full-system cells.
/// The memoized value includes each trace's next-use annotation, so
/// fig1/fig11/fig12/fig13/fig13x annotate each benchmark exactly once.
///
/// # Errors
///
/// Propagates store corruption from the scene lookups.
pub fn suite_traces(store: &ArtifactStore) -> TcorResult<Arc<Vec<BenchTrace>>> {
    let key = artifact_key(TRACES_DESC);
    if let Some(traces) = store.get::<Vec<BenchTrace>>(key)? {
        return Ok(traces);
    }
    // Build fallibly outside the memoizing closure so scene-lookup
    // errors propagate as typed results instead of panics.
    let grid = paper_grid();
    let order = tcor_common::Traversal::ZOrder.order(&grid);
    let mut built = Vec::new();
    for b in &suite() {
        let cal = calibrated_scene(store, b, &grid)?;
        let frame = bin_scene(&cal.scene, &grid, &order);
        built.push(BenchTrace::new(
            b.alias,
            primitive_trace(&frame.binned, &order),
            frame.binned.num_primitives(),
        ));
    }
    store.get_or_compute(key, move || built)
}

/// Replacement policies the serving plane accepts for
/// `/v1/misscurve/{workload}/{policy}`: every name
/// [`by_name`] resolves, plus the PC-free Hawkeye variant.
pub const SERVE_POLICIES: [&str; 14] = [
    "lru", "mru", "fifo", "random", "plru", "nru", "lip", "bip", "dip", "srrip", "brrip", "drrip",
    "opt", "hawkeye",
];

/// One benchmark's trace, memoized in `store` under its own key so a
/// single-workload query (the serving plane's unit of work) never
/// builds the other nine scenes the way [`suite_traces`] does. Shares
/// the calibrated scene with the full-system cells.
///
/// # Errors
///
/// Returns a config error listing the valid aliases on an unknown
/// workload, and propagates store corruption from the scene lookup.
pub fn workload_trace(store: &ArtifactStore, alias: &str) -> TcorResult<Arc<BenchTrace>> {
    let Some(profile) = suite().into_iter().find(|b| b.alias == alias) else {
        let known: Vec<&str> = suite().iter().map(|b| b.alias).collect();
        return Err(TcorError::config(format!(
            "unknown workload `{alias}` (expected one of {})",
            known.join(", ")
        )));
    };
    let key = artifact_key(&format!("trace/{alias}/zorder"));
    if let Some(trace) = store.get::<BenchTrace>(key)? {
        return Ok(trace);
    }
    let grid = paper_grid();
    let order = tcor_common::Traversal::ZOrder.order(&grid);
    let cal = calibrated_scene(store, &profile, &grid)?;
    let frame = bin_scene(&cal.scene, &grid, &order);
    let built = BenchTrace::new(
        profile.alias,
        primitive_trace(&frame.binned, &order),
        frame.binned.num_primitives(),
    );
    store.get_or_compute(key, move || built)
}

/// The serving plane's miss curve: one workload, one policy, the
/// paper's 8–152 KB capacity sweep. Fully associative for every
/// [`by_name`] policy (the single-pass profilers answer LRU/OPT in one
/// trace pass); Hawkeye runs on its native 4-way geometry. Returns
/// `(size_kb, miss_ratio)` columns.
///
/// # Errors
///
/// Returns a config error for an unknown workload or policy.
pub fn workload_curve(
    store: &ArtifactStore,
    alias: &str,
    policy: &str,
) -> TcorResult<(Vec<usize>, Vec<f64>)> {
    if !SERVE_POLICIES.contains(&policy) {
        return Err(TcorError::config(format!(
            "unknown policy `{policy}` (expected one of {})",
            SERVE_POLICIES.join(", ")
        )));
    }
    let bt = workload_trace(store, alias)?;
    let traces = std::slice::from_ref(bt.as_ref());
    let sizes = kb_sizes(8, 152, 8);
    let caps = prim_caps(&sizes);
    let mut passes = 0u64;
    // The serving plane answers one workload per request: curves stay
    // strictly serial (workers = 1) so request latency is predictable.
    let curve = match policy {
        "hawkeye" => hawkeye_curve(traces, &caps, CurveEngine::SinglePass, 1, &mut passes),
        "lru" => lru_curve(traces, &caps, &mut passes),
        _ => policy_curve(
            traces,
            &caps,
            0,
            policy,
            CurveEngine::SinglePass,
            1,
            &mut passes,
        ),
    };
    Ok((sizes, curve))
}

fn passes_key(id: &str) -> u64 {
    artifact_key(&format!("misscurves/passes/{id}"))
}

/// Publishes the suite-level trace-pass count of experiment `id` into the
/// store, where the orchestrator picks it up as a telemetry counter.
fn record_trace_passes(store: &ArtifactStore, id: &str, passes: u64) -> TcorResult<()> {
    let cell = store.get_or_compute(passes_key(id), || AtomicU64::new(0))?;
    cell.store(passes, Ordering::Relaxed);
    Ok(())
}

/// Trace passes recorded by the most recent run of experiment `id` in
/// this store (one pass = one full streaming of every benchmark trace).
pub fn trace_passes(store: &ArtifactStore, id: &str) -> Option<u64> {
    store
        .get::<AtomicU64>(passes_key(id))
        .ok()
        .flatten()
        .map(|c| c.load(Ordering::Relaxed))
}

fn engine_workers_key() -> u64 {
    artifact_key("misscurves/engine-workers")
}

/// Publishes the worker count the miss-curve engine's sharded dispatch
/// may fan set ranges across. The orchestrator sets this from the
/// execution mode (1 for `--serial`, the pool width for parallel runs);
/// unset, the engine stays strictly serial.
///
/// # Errors
///
/// Propagates store corruption.
pub fn set_engine_workers(store: &ArtifactStore, workers: usize) -> TcorResult<()> {
    let cell = store.get_or_compute(engine_workers_key(), || AtomicU64::new(1))?;
    cell.store(workers.max(1) as u64, Ordering::Relaxed);
    Ok(())
}

/// The worker count published by [`set_engine_workers`] (1 when unset).
pub fn engine_workers(store: &ArtifactStore) -> usize {
    store
        .get::<AtomicU64>(engine_workers_key())
        .ok()
        .flatten()
        .map(|c| c.load(Ordering::Relaxed) as usize)
        .unwrap_or(1)
        .max(1)
}

/// Set-associative geometry for a capacity of `c` primitives.
///
/// The line count rounds *down* to a whole number of sets. When
/// `c < ways` the cache degenerates to a single `c`-way set — exactly the
/// requested capacity — instead of silently inflating to one full set of
/// `ways` lines as the pre-PR-4 rounding did. (The paper's sweeps never
/// enter that region: their smallest capacity, 8 KB ≈ 42 primitives,
/// exceeds every associativity studied.)
fn geometry(c: usize, ways: u32) -> CacheParams {
    let lines = c.max(1) as u64;
    if ways == 0 {
        CacheParams::new(lines, 1, 0, 1)
    } else if lines <= ways as u64 {
        CacheParams::new(lines, 1, lines as u32, 1)
    } else {
        CacheParams::new((lines / ways as u64) * ways as u64, 1, ways, 1)
    }
}

fn total_accesses(traces: &[BenchTrace]) -> u64 {
    traces.iter().map(|b| b.trace.len() as u64).sum()
}

/// Aggregate LRU miss ratio at each capacity: one Mattson pass per
/// benchmark gives every size at once (this was already single-pass
/// before the engine; both engines share it).
fn lru_curve(traces: &[BenchTrace], capacities: &[usize], passes: &mut u64) -> Vec<f64> {
    *passes += 1;
    let profilers: Vec<LruStackProfiler> = traces
        .iter()
        .map(|b| {
            let mut p = LruStackProfiler::new();
            for a in &b.trace {
                p.record(a.addr);
            }
            p
        })
        .collect();
    let total = total_accesses(traces);
    capacities
        .iter()
        .map(|&c| {
            let misses: u64 = profilers.iter().map(|p| p.misses_at(c)).sum();
            misses as f64 / total as f64
        })
        .collect()
}

/// Aggregate exact-Belady miss ratio per capacity: one OPT stack pass per
/// benchmark, or (replay engine) one self-annotating replay per capacity.
fn opt_curve(
    traces: &[BenchTrace],
    capacities: &[usize],
    engine: CurveEngine,
    passes: &mut u64,
) -> Vec<f64> {
    let total = total_accesses(traces);
    match engine {
        CurveEngine::SinglePass => {
            *passes += 1;
            let profilers: Vec<OptStackProfiler> = traces
                .iter()
                .map(|b| OptStackProfiler::profile(&b.trace, &b.next_use))
                .collect();
            capacities
                .iter()
                .map(|&c| {
                    let misses: u64 = profilers.iter().map(|p| p.misses_at(c)).sum();
                    misses as f64 / total as f64
                })
                .collect()
        }
        CurveEngine::Replay => {
            *passes += capacities.len() as u64;
            capacities
                .iter()
                .map(|&c| {
                    let misses: u64 = traces.iter().map(|b| opt_misses(&b.trace, c)).sum();
                    misses as f64 / total as f64
                })
                .collect()
        }
    }
}

/// Aggregate lower-bound ratio (§V.A) per capacity (arithmetic only — no
/// trace pass).
fn lb_curve(traces: &[BenchTrace], capacities: &[usize]) -> Vec<f64> {
    let total = total_accesses(traces);
    capacities
        .iter()
        .map(|&c| {
            let misses: u64 = traces
                .iter()
                .map(|b| tcor_workloads::trace::lower_bound_misses(b.total_prims, c))
                .sum();
            misses as f64 / total as f64
        })
        .collect()
}

/// Below this many geometries, the interleaved capacity bank loses: its
/// per-access loop over N cache instances has worse locality than N
/// dense replays, and a non-OPT replay pays no annotation cost either.
/// This is the fig13x regression threshold — fig13x sweeps 4 capacities
/// and was 0.94× *slower* through the unconditional bank; fig13 (16)
/// and the full-associativity sweeps (10–28) keep their bank wins.
const BANK_MIN_GEOMS: usize = 8;

/// Splits `num_sets` into contiguous near-even ranges for the scatter
/// dispatch: about two chunks per worker (so a straggler set range can
/// be stolen), one chunk when there is nothing to parallelize.
fn chunk_sets(num_sets: usize, workers: usize) -> Vec<Range<usize>> {
    if workers <= 1 || num_sets <= 1 {
        // One chunk covering every set (not a collected 0..num_sets).
        return std::iter::once(0..num_sets).collect();
    }
    let chunks = (workers * 2).min(num_sets);
    let base = num_sets / chunks;
    let extra = num_sets % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Per-geometry miss sums via the data-oriented sharded core: bucket
/// each trace by set index once per set count (memoized on the
/// [`BenchTrace`]), then replay dense per-set streams — scattered
/// across `workers` threads as contiguous set ranges. Only sound for
/// [set-local](tcor_cache::ReplacementPolicy::set_local) policies;
/// bit-identical to the whole-cache replay (`oracle` selects the
/// annotated OPT drive).
fn sharded_miss_sums(
    traces: &[BenchTrace],
    geoms: &[CacheParams],
    policy: &str,
    workers: usize,
) -> Vec<u64> {
    let oracle = policy == "opt";
    let mut miss_sums = vec![0u64; geoms.len()];
    for b in traces {
        let mut tasks: Vec<Box<dyn FnOnce() -> (usize, u64) + Send + '_>> = Vec::new();
        for (gi, &params) in geoms.iter().enumerate() {
            // Always gather the (already computed) annotation so OPT and
            // the non-oracle policies share one memoized bucketing per
            // set count.
            let shard = b.shards.get_or_build(
                &b.trace,
                Some(&b.next_use),
                params.num_sets(),
                Indexing::Modulo,
            );
            for sets in chunk_sets(shard.num_sets(), workers) {
                let shard = Arc::clone(&shard);
                tasks.push(Box::new(move || {
                    // Static dispatch: the per-set loops monomorphize
                    // per policy type instead of paying a virtual call
                    // per access.
                    let stats = tcor_cache::dispatch_policy!(policy, make => {
                        simulate_policy_shard_range(&shard, params, sets, oracle, make)
                    });
                    (gi, stats.misses())
                }));
            }
        }
        // Scatter returns in input order; the sums are commutative
        // anyway, so the accumulation is deterministic either way.
        for (gi, misses) in scatter(workers, tasks) {
            miss_sums[gi] += misses;
        }
    }
    miss_sums
}

/// Per-geometry miss sums via one whole-cache replay per geometry,
/// scattered across `workers` — the small-bank path for policies whose
/// cross-set state forbids sharding. OPT reuses the shared annotation
/// instead of re-deriving it the way [`CurveEngine::Replay`] does.
fn chunked_miss_sums(
    traces: &[BenchTrace],
    geoms: &[CacheParams],
    policy: &str,
    workers: usize,
) -> Vec<u64> {
    let oracle = policy == "opt";
    let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = geoms
        .iter()
        .map(|&params| {
            Box::new(move || {
                traces
                    .iter()
                    .map(|b| {
                        let stats = if oracle {
                            simulate_policy_annotated(
                                &b.trace,
                                &b.next_use,
                                params,
                                Indexing::Modulo,
                                Opt::new(),
                            )
                        } else {
                            // Static dispatch: the replay loop
                            // monomorphizes per policy type instead of
                            // paying a virtual call per access.
                            tcor_cache::dispatch_policy!(policy, make => {
                                simulate_policy(
                                    &b.trace,
                                    params,
                                    Indexing::Modulo,
                                    make(),
                                    false,
                                )
                            })
                        };
                        stats.misses()
                    })
                    .sum()
            }) as Box<dyn FnOnce() -> u64 + Send + '_>
        })
        .collect();
    scatter(workers, tasks)
}

/// Aggregate miss ratio of a named policy on a set-associative geometry
/// (capacity in primitives, `ways == 0` for fully associative).
///
/// Single-pass engine cost model: fully-associative LRU/OPT read
/// straight off the stack profilers; banks of [`BANK_MIN_GEOMS`] or
/// more geometries keep the interleaved capacity bank (one trace walk
/// amortized across the whole sweep); smaller banks of set-local
/// policies go through the per-set sharded core when more than one
/// worker is available (the only path that scales), and fall back to
/// chunked per-geometry replays on one worker — dense single-cache
/// replays with no bucketing cost, reusing the suite's shared next-use
/// annotation for OPT where the replay engine re-annotates per
/// capacity. Every path is bit-identical — the model only chooses
/// where the time goes. Replay engine: one simulation per (capacity,
/// benchmark), re-annotating per capacity for OPT.
fn policy_curve(
    traces: &[BenchTrace],
    capacities: &[usize],
    ways: u32,
    policy: &str,
    engine: CurveEngine,
    workers: usize,
    passes: &mut u64,
) -> Vec<f64> {
    let total = total_accesses(traces);
    let geoms: Vec<CacheParams> = capacities.iter().map(|&c| geometry(c, ways)).collect();
    match engine {
        CurveEngine::Replay => {
            *passes += capacities.len() as u64;
            geoms
                .iter()
                .map(|&params| {
                    let misses: u64 = traces
                        .iter()
                        .map(|b| {
                            let stats = if policy == "opt" {
                                simulate_policy(
                                    &b.trace,
                                    params,
                                    Indexing::Modulo,
                                    Opt::new(),
                                    true,
                                )
                            } else {
                                simulate_policy(
                                    &b.trace,
                                    params,
                                    Indexing::Modulo,
                                    by_name(policy),
                                    false,
                                )
                            };
                            stats.misses()
                        })
                        .sum();
                    misses as f64 / total as f64
                })
                .collect()
        }
        // One dispatch for both profiler-backed fully-associative
        // curves: a single arm can't let the lru and opt special cases
        // silently diverge from the banked path (or each other) again.
        CurveEngine::SinglePass if ways == 0 && matches!(policy, "lru" | "opt") => match policy {
            "lru" => lru_curve(traces, capacities, passes),
            _ => opt_curve(traces, capacities, CurveEngine::SinglePass, passes),
        },
        CurveEngine::SinglePass => {
            if geoms.len() >= BANK_MIN_GEOMS {
                // Wide bank: one interleaved trace walk amortizes best,
                // and beats per-set sharding until the worker count
                // rivals the bank width (far beyond this machine).
                *passes += 1;
                let mut miss_sums = vec![0u64; geoms.len()];
                for b in traces {
                    let stats = if policy == "opt" {
                        simulate_policy_bank(
                            &b.trace,
                            Some(&b.next_use),
                            &geoms,
                            Indexing::Modulo,
                            Opt::new,
                        )
                    } else {
                        // Static dispatch: the bank walk monomorphizes
                        // per policy type instead of paying a virtual
                        // call per access per bank member.
                        tcor_cache::dispatch_policy!(policy, make => {
                            simulate_policy_bank(&b.trace, None, &geoms, Indexing::Modulo, make)
                        })
                    };
                    for (sum, s) in miss_sums.iter_mut().zip(&stats) {
                        *sum += s.misses();
                    }
                }
                miss_sums.iter().map(|&m| m as f64 / total as f64).collect()
            } else if by_name(policy).set_local() && workers > 1 {
                // Small bank, set-local policy, real parallelism: dense
                // per-set streams scatter across the workers (the only
                // path whose wall time scales with the worker count).
                *passes += geoms.len() as u64;
                let sums = sharded_miss_sums(traces, &geoms, policy, workers);
                sums.iter().map(|&m| m as f64 / total as f64).collect()
            } else {
                // Small bank on one worker (or cross-set policy state):
                // dense per-geometry replays beat the interleaved bank's
                // scattered per-access dispatch, with no bucketing cost.
                *passes += geoms.len() as u64;
                let sums = chunked_miss_sums(traces, &geoms, policy, workers);
                sums.iter().map(|&m| m as f64 / total as f64).collect()
            }
        }
    }
}

/// Aggregate Hawkeye miss ratio per capacity, 4-way (its dedicated
/// driver carries the address training signal). Hawkeye's global
/// predictor forbids set sharding, so the cost model picks between the
/// interleaved bank (wide sweeps) and chunked per-geometry replays
/// (small banks, scattered across `workers`).
fn hawkeye_curve(
    traces: &[BenchTrace],
    capacities: &[usize],
    engine: CurveEngine,
    workers: usize,
    passes: &mut u64,
) -> Vec<f64> {
    let total = total_accesses(traces);
    let geoms: Vec<CacheParams> = capacities.iter().map(|&c| geometry(c, 4)).collect();
    match engine {
        CurveEngine::Replay => {
            *passes += capacities.len() as u64;
            geoms
                .iter()
                .map(|&params| {
                    let misses: u64 = traces
                        .iter()
                        .map(|b| simulate_hawkeye(&b.trace, params).misses())
                        .sum();
                    misses as f64 / total as f64
                })
                .collect()
        }
        CurveEngine::SinglePass if geoms.len() < BANK_MIN_GEOMS => {
            *passes += geoms.len() as u64;
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = geoms
                .iter()
                .map(|&params| {
                    Box::new(move || {
                        traces
                            .iter()
                            .map(|b| simulate_hawkeye(&b.trace, params).misses())
                            .sum()
                    }) as Box<dyn FnOnce() -> u64 + Send + '_>
                })
                .collect();
            let sums = scatter(workers, tasks);
            sums.iter().map(|&m| m as f64 / total as f64).collect()
        }
        CurveEngine::SinglePass => {
            *passes += 1;
            let mut miss_sums = vec![0u64; geoms.len()];
            for b in traces {
                for (sum, s) in miss_sums
                    .iter_mut()
                    .zip(&simulate_hawkeye_bank(&b.trace, &geoms))
                {
                    *sum += s.misses();
                }
            }
            miss_sums.iter().map(|&m| m as f64 / total as f64).collect()
        }
    }
}

fn kb_sizes(from_kb: usize, to_kb: usize, step_kb: usize) -> Vec<usize> {
    (from_kb..=to_kb).step_by(step_kb).collect()
}

fn prim_caps(sizes: &[usize]) -> Vec<usize> {
    sizes
        .iter()
        .map(|kb| prims_capacity(*kb as u64 * 1024))
        .collect()
}

/// Figure 1: LRU vs OPT, fully associative, 8–152 KB.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig1(store: &ArtifactStore) -> TcorResult<Table> {
    let (t, passes) = fig1_engine(store, CurveEngine::SinglePass)?;
    record_trace_passes(store, "fig1", passes)?;
    Ok(t)
}

/// [`fig1`] on an explicit engine, returning the table and its
/// suite-level trace-pass count.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig1_engine(store: &ArtifactStore, engine: CurveEngine) -> TcorResult<(Table, u64)> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(8, 152, 8);
    let caps = prim_caps(&sizes);
    let mut passes = 0u64;
    let lru = lru_curve(&traces, &caps, &mut passes);
    let opt = opt_curve(&traces, &caps, engine, &mut passes);
    let mut t = Table::new(
        "fig1",
        "LRU and OPT miss ratio, fully associative L1 (suite aggregate)",
        &["size_kb", "lru", "opt"],
    );
    for ((kb, l), o) in sizes.iter().zip(&lru).zip(&opt) {
        t.push_row(vec![kb.to_string(), format!("{l:.4}"), format!("{o:.4}")]);
    }
    Ok((t, passes))
}

/// Figure 11: adds the lower bound and extends to 456 KB.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig11(store: &ArtifactStore) -> TcorResult<Table> {
    let (t, passes) = fig11_engine(store, CurveEngine::SinglePass)?;
    record_trace_passes(store, "fig11", passes)?;
    Ok(t)
}

/// [`fig11`] on an explicit engine, returning the table and its
/// suite-level trace-pass count.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig11_engine(store: &ArtifactStore, engine: CurveEngine) -> TcorResult<(Table, u64)> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(8, 456, 16);
    let caps = prim_caps(&sizes);
    let mut passes = 0u64;
    let lb = lb_curve(&traces, &caps);
    let lru = lru_curve(&traces, &caps, &mut passes);
    let opt = opt_curve(&traces, &caps, engine, &mut passes);
    let mut t = Table::new(
        "fig11",
        "Lower bound, LRU and OPT miss ratio, fully associative L1",
        &["size_kb", "lower_bound", "lru", "opt"],
    );
    for (((kb, b), l), o) in sizes.iter().zip(&lb).zip(&lru).zip(&opt) {
        t.push_row(vec![
            kb.to_string(),
            format!("{b:.4}"),
            format!("{l:.4}"),
            format!("{o:.4}"),
        ]);
    }
    Ok((t, passes))
}

/// Figure 12: LRU and OPT across associativities (two tables).
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig12(store: &ArtifactStore) -> TcorResult<Vec<Table>> {
    let (tables, passes) = fig12_engine(store, CurveEngine::SinglePass)?;
    record_trace_passes(store, "fig12", passes)?;
    Ok(tables)
}

/// [`fig12`] on an explicit engine, returning the tables and their
/// suite-level trace-pass count.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig12_engine(store: &ArtifactStore, engine: CurveEngine) -> TcorResult<(Vec<Table>, u64)> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(8, 152, 16);
    let caps = prim_caps(&sizes);
    let lb = lb_curve(&traces, &caps);
    let assocs: [(u32, &str); 5] = [
        (1, "direct"),
        (2, "assoc2"),
        (4, "assoc4"),
        (8, "assoc8"),
        (0, "full"),
    ];
    let workers = engine_workers(store);
    let mut passes = 0u64;
    let mut out = Vec::new();
    for (policy, id) in [("lru", "fig12-lru"), ("opt", "fig12-opt")] {
        let mut cols = vec!["size_kb".to_string(), "lower_bound".to_string()];
        cols.extend(assocs.iter().map(|(_, n)| n.to_string()));
        let mut t = Table {
            id: id.to_string(),
            title: format!("{policy} miss ratio across associativities"),
            columns: cols,
            rows: Vec::new(),
        };
        let curves: Vec<Vec<f64>> = assocs
            .iter()
            .map(|(w, _)| policy_curve(&traces, &caps, *w, policy, engine, workers, &mut passes))
            .collect();
        for (i, kb) in sizes.iter().enumerate() {
            let mut row = vec![kb.to_string(), format!("{:.4}", lb[i])];
            row.extend(curves.iter().map(|c| format!("{:.4}", c[i])));
            t.push_row(row);
        }
        out.push(t);
    }
    Ok((out, passes))
}

/// Figure 13: LRU, MRU, DRRIP and OPT in a 4-way cache, plus the lower
/// bound.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig13(store: &ArtifactStore) -> TcorResult<Table> {
    let (t, passes) = fig13_engine(store, CurveEngine::SinglePass)?;
    record_trace_passes(store, "fig13", passes)?;
    Ok(t)
}

/// [`fig13`] on an explicit engine, returning the table and its
/// suite-level trace-pass count.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig13_engine(store: &ArtifactStore, engine: CurveEngine) -> TcorResult<(Table, u64)> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(40, 160, 8);
    let caps = prim_caps(&sizes);
    let lb = lb_curve(&traces, &caps);
    let policies = ["mru", "drrip", "lru", "opt"];
    let workers = engine_workers(store);
    let mut passes = 0u64;
    let curves: Vec<Vec<f64>> = policies
        .iter()
        .map(|p| policy_curve(&traces, &caps, 4, p, engine, workers, &mut passes))
        .collect();
    let mut t = Table::new(
        "fig13",
        "MRU, DRRIP, LRU and OPT miss ratio in a 4-way L1",
        &["size_kb", "lower_bound", "mru", "drrip", "lru", "opt"],
    );
    for (i, kb) in sizes.iter().enumerate() {
        let mut row = vec![kb.to_string(), format!("{:.4}", lb[i])];
        row.extend(curves.iter().map(|c| format!("{:.4}", c[i])));
        t.push_row(row);
    }
    Ok((t, passes))
}

/// Figure 13 extended: every policy in the toolbox (including the
/// LIP/BIP/DIP insertion family and the PC-less Hawkeye) against OPT and
/// the lower bound, 4-way.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig13x(store: &ArtifactStore) -> TcorResult<Table> {
    let (t, passes) = fig13x_engine(store, CurveEngine::SinglePass)?;
    record_trace_passes(store, "fig13x", passes)?;
    Ok(t)
}

/// [`fig13x`] on an explicit engine, returning the table and its
/// suite-level trace-pass count.
///
/// # Errors
///
/// Propagates store corruption.
pub fn fig13x_engine(store: &ArtifactStore, engine: CurveEngine) -> TcorResult<(Table, u64)> {
    let traces = suite_traces(store)?;
    let sizes = kb_sizes(48, 144, 32);
    let caps = prim_caps(&sizes);
    let lb = lb_curve(&traces, &caps);
    let policies = [
        "random", "fifo", "mru", "nru", "plru", "lip", "bip", "dip", "srrip", "brrip", "drrip",
        "lru",
    ];
    let workers = engine_workers(store);
    let mut passes = 0u64;
    let curves: Vec<Vec<f64>> = policies
        .iter()
        .map(|p| policy_curve(&traces, &caps, 4, p, engine, workers, &mut passes))
        .collect();
    // Hawkeye needs the address signal; use its dedicated driver.
    let hawkeye = hawkeye_curve(&traces, &caps, engine, workers, &mut passes);
    let opt = policy_curve(&traces, &caps, 4, "opt", engine, workers, &mut passes);

    let mut cols = vec!["size_kb".to_string(), "lower_bound".to_string()];
    cols.extend(policies.iter().map(|p| p.to_string()));
    cols.push("hawkeye".to_string());
    cols.push("opt".to_string());
    let mut t = Table {
        id: "fig13x".to_string(),
        title: "Extended policy comparison (4-way): the full toolbox vs OPT".to_string(),
        columns: cols,
        rows: Vec::new(),
    };
    for (i, kb) in sizes.iter().enumerate() {
        let mut row = vec![kb.to_string(), format!("{:.4}", lb[i])];
        row.extend(curves.iter().map(|c| format!("{:.4}", c[i])));
        row.push(format!("{:.4}", hawkeye[i]));
        row.push(format!("{:.4}", opt[i]));
        t.push_row(row);
    }
    Ok((t, passes))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced trace set for fast shape checks.
    fn mini_traces() -> Vec<BenchTrace> {
        let grid = tcor_common::TileGrid::new(1960, 768, 32);
        suite()[..2]
            .iter()
            .map(|b| {
                let scene = tcor_workloads::generate_scene(b, &grid);
                let order = tcor_common::Traversal::ZOrder.order(&grid);
                let frame = bin_scene(&scene, &grid, &order);
                BenchTrace::new(
                    b.alias,
                    primitive_trace(&frame.binned, &order),
                    frame.binned.num_primitives(),
                )
            })
            .collect()
    }

    fn sp(traces: &[BenchTrace], caps: &[usize], ways: u32, policy: &str) -> Vec<f64> {
        let mut p = 0;
        policy_curve(
            traces,
            caps,
            ways,
            policy,
            CurveEngine::SinglePass,
            1,
            &mut p,
        )
    }

    /// Manual profiling aid for the engine cost model: per-policy
    /// replay-vs-single-pass wall times on the real fig13x workload.
    /// Run with `cargo test -p tcor-sim --release -- --ignored
    /// profile_fig13x_paths --nocapture`.
    #[test]
    #[ignore = "manual profiling aid"]
    fn profile_fig13x_paths() {
        let store = ArtifactStore::new();
        let traces = suite_traces(&store).unwrap();
        let caps = prim_caps(&kb_sizes(48, 144, 32));
        let geoms: Vec<CacheParams> = caps.iter().map(|&c| geometry(c, 4)).collect();
        let total: usize = traces.iter().map(|b| b.trace.len()).sum();
        eprintln!(
            "trace total {total} accesses, geoms {:?}",
            geoms.iter().map(|g| g.num_sets()).collect::<Vec<_>>()
        );
        for policy in [
            "random", "fifo", "mru", "nru", "plru", "lip", "bip", "dip", "srrip", "brrip", "drrip",
            "lru", "opt",
        ] {
            let t0 = std::time::Instant::now();
            let mut p = 0;
            let r = policy_curve(&traces, &caps, 4, policy, CurveEngine::Replay, 1, &mut p);
            let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = std::time::Instant::now();
            let mut p = 0;
            let s = policy_curve(
                &traces,
                &caps,
                4,
                policy,
                CurveEngine::SinglePass,
                1,
                &mut p,
            );
            let single_ms = t0.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "{policy}: replay {replay_ms:.1}ms single {single_ms:.1}ms (agree: {})",
                s == r
            );
        }
        for (what, engine) in [
            ("replay", CurveEngine::Replay),
            ("single", CurveEngine::SinglePass),
        ] {
            let t0 = std::time::Instant::now();
            let mut p = 0;
            let _ = hawkeye_curve(&traces, &caps, engine, 1, &mut p);
            eprintln!("hawkeye {what}: {:.1}ms", t0.elapsed().as_secs_f64() * 1e3);
        }
        let t0 = std::time::Instant::now();
        let _ = lb_curve(&traces, &caps);
        eprintln!("lb_curve: {:.1}ms", t0.elapsed().as_secs_f64() * 1e3);
    }

    #[test]
    fn opt_dominates_lru_and_lb_dominates_opt() {
        let traces = mini_traces();
        let caps = vec![64, 128, 256, 512];
        let mut passes = 0;
        let lb = lb_curve(&traces, &caps);
        let lru = lru_curve(&traces, &caps, &mut passes);
        let opt = opt_curve(&traces, &caps, CurveEngine::SinglePass, &mut passes);
        for i in 0..caps.len() {
            assert!(
                lb[i] <= opt[i] + 1e-12,
                "LB {} > OPT {} at {}",
                lb[i],
                opt[i],
                caps[i]
            );
            assert!(
                opt[i] <= lru[i] + 1e-12,
                "OPT {} > LRU {} at {}",
                opt[i],
                lru[i],
                caps[i]
            );
        }
    }

    #[test]
    fn curves_fall_with_capacity() {
        let traces = mini_traces();
        let caps = vec![32, 128, 1024];
        let mut passes = 0;
        for curve in [
            lru_curve(&traces, &caps, &mut passes),
            opt_curve(&traces, &caps, CurveEngine::SinglePass, &mut passes),
        ] {
            assert!(curve[0] >= curve[1] && curve[1] >= curve[2]);
        }
    }

    #[test]
    fn opt_gap_grows_with_lower_associativity_pressure() {
        // At 4-way, OPT still beats LRU (Fig. 13's key shape).
        let traces = mini_traces();
        let caps = vec![256];
        let lru4 = sp(&traces, &caps, 4, "lru");
        let opt4 = sp(&traces, &caps, 4, "opt");
        assert!(opt4[0] <= lru4[0]);
    }

    #[test]
    fn mru_is_worst_at_moderate_capacity() {
        let traces = mini_traces();
        let caps = vec![256];
        let mru = sp(&traces, &caps, 4, "mru");
        let lru = sp(&traces, &caps, 4, "lru");
        assert!(mru[0] >= lru[0], "MRU {} < LRU {}", mru[0], lru[0]);
    }

    /// The single-pass engine reproduces the replay engine bit for bit —
    /// miss counts are integers, so the f64 ratios must be *exactly*
    /// equal, across associativities and policies (incl. oracle OPT and
    /// the profiler-backed fully-associative columns).
    #[test]
    fn engines_agree_exactly() {
        let traces = mini_traces();
        let caps = vec![8, 64, 256, 513];
        for ways in [0u32, 1, 2, 4, 8] {
            for policy in ["lru", "opt", "mru", "drrip"] {
                let (mut p1, mut p2) = (0, 0);
                let fast = policy_curve(
                    &traces,
                    &caps,
                    ways,
                    policy,
                    CurveEngine::SinglePass,
                    1,
                    &mut p1,
                );
                let slow = policy_curve(
                    &traces,
                    &caps,
                    ways,
                    policy,
                    CurveEngine::Replay,
                    1,
                    &mut p2,
                );
                assert_eq!(fast, slow, "ways={ways} policy={policy}");
                assert!(
                    p1 <= p2,
                    "single-pass must not stream more than replay ({p1} > {p2})"
                );
            }
        }
        let (mut p1, mut p2) = (0, 0);
        assert_eq!(
            opt_curve(&traces, &caps, CurveEngine::SinglePass, &mut p1),
            opt_curve(&traces, &caps, CurveEngine::Replay, &mut p2),
        );
        assert_eq!(p1, 1, "OPT stack profiling is one pass");
        assert_eq!(p2, caps.len() as u64, "replay is one pass per capacity");
        let (mut p1, mut p2) = (0, 0);
        assert_eq!(
            hawkeye_curve(&traces, &caps, CurveEngine::SinglePass, 1, &mut p1),
            hawkeye_curve(&traces, &caps, CurveEngine::Replay, 1, &mut p2),
        );
        // 4 capacities < BANK_MIN_GEOMS: the cost model picks chunked
        // per-geometry replays over the interleaved bank for Hawkeye.
        assert_eq!((p1, p2), (caps.len() as u64, caps.len() as u64));
    }

    /// The cost model's paths are interchangeable: sharded dispatch (any
    /// worker count), the interleaved bank, chunked replays and the
    /// reference replay all produce the same f64 ratios, exactly.
    #[test]
    fn worker_counts_and_paths_are_bit_identical() {
        let traces = mini_traces();
        let small = vec![8usize, 64, 256]; // < BANK_MIN_GEOMS
        let wide: Vec<usize> = (1..=BANK_MIN_GEOMS).map(|i| i * 32).collect();
        for policy in ["lru", "opt", "fifo", "srrip", "drrip"] {
            for caps in [&small, &wide] {
                let mut p = 0;
                let reference =
                    policy_curve(&traces, caps, 4, policy, CurveEngine::Replay, 1, &mut p);
                for workers in [1usize, 2, 4] {
                    let mut p = 0;
                    let got = policy_curve(
                        &traces,
                        caps,
                        4,
                        policy,
                        CurveEngine::SinglePass,
                        workers,
                        &mut p,
                    );
                    assert_eq!(
                        got,
                        reference,
                        "policy={policy} workers={workers} caps={}",
                        caps.len()
                    );
                }
            }
        }
        // Hawkeye's chunked path under parallel dispatch.
        let mut p = 0;
        let reference = hawkeye_curve(&traces, &small, CurveEngine::Replay, 1, &mut p);
        for workers in [1usize, 3] {
            let mut p = 0;
            assert_eq!(
                hawkeye_curve(&traces, &small, CurveEngine::SinglePass, workers, &mut p),
                reference,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn engine_workers_roundtrip_and_default() {
        let store = ArtifactStore::new();
        assert_eq!(engine_workers(&store), 1, "unset store means serial");
        set_engine_workers(&store, 6).unwrap();
        assert_eq!(engine_workers(&store), 6);
        set_engine_workers(&store, 0).unwrap();
        assert_eq!(engine_workers(&store), 1, "0 clamps to 1");
    }

    /// Satellite fix: `geometry` must never *inflate* a capacity below
    /// the associativity — `c = 2, ways = 4` is a 2-line single set, not
    /// a full 4-line set.
    #[test]
    fn geometry_clamps_instead_of_inflating() {
        let g = geometry(2, 4);
        assert_eq!(g.num_lines(), 2, "c=2 ways=4 must stay 2 lines");
        let g = geometry(0, 4);
        assert_eq!(g.num_lines(), 1);
        // At and above the associativity, round down to whole sets.
        assert_eq!(geometry(4, 4).num_lines(), 4);
        assert_eq!(geometry(43, 8).num_lines(), 40);
        assert_eq!(geometry(43, 0).num_lines(), 43);
    }

    /// Behavioral boundary check for the clamp: a 2-line degenerate cache
    /// holds exactly 2 blocks, so a 2-block loop hits and a 3-block loop
    /// cannot fit (the inflated pre-fix geometry would have held it).
    #[test]
    fn clamped_geometry_has_requested_capacity() {
        use tcor_cache::Access;
        use tcor_common::BlockAddr;
        let fits: Vec<Access> = (0..2u64)
            .cycle()
            .take(40)
            .map(|b| Access::read(BlockAddr(b)))
            .collect();
        let thrash: Vec<Access> = (0..3u64)
            .cycle()
            .take(60)
            .map(|b| Access::read(BlockAddr(b)))
            .collect();
        let g = geometry(2, 4);
        let s = simulate_policy(&fits, g, Indexing::Modulo, by_name("lru"), false);
        assert_eq!(s.misses(), 2, "2-block loop fits in the 2-line clamp");
        let s = simulate_policy(&thrash, g, Indexing::Modulo, by_name("lru"), false);
        assert_eq!(s.misses(), 60, "3-block LRU loop thrashes 2 lines");
    }

    #[test]
    fn trace_passes_roundtrip_through_store() {
        let store = ArtifactStore::new();
        assert_eq!(trace_passes(&store, "fig1"), None);
        record_trace_passes(&store, "fig1", 2).unwrap();
        assert_eq!(trace_passes(&store, "fig1"), Some(2));
        record_trace_passes(&store, "fig1", 7).unwrap();
        assert_eq!(trace_passes(&store, "fig1"), Some(7));
        assert_eq!(trace_passes(&store, "fig12"), None);
    }
}
