//! Experiment orchestration over the `tcor-runner` job graph.
//!
//! The harness used to run everything sequentially and recompute shared
//! inputs per experiment: every miss-curve figure rebuilt all ten suite
//! traces, and every suite cell re-calibrated its scene. Here each
//! experiment becomes a node of a dependency DAG whose shared inputs —
//! calibrated scenes, the aggregated PB traces, the 60 full-system cell
//! reports, the assembled [`SuiteRun`] — live in a content-addressed
//! [`ArtifactStore`], computed exactly once per process and shared
//! across however many workers the executor runs.
//!
//! Keys are `fxhash64` over a stable textual description of the
//! artifact's configuration, so a key is a pure function of *what* is
//! being computed, never of scheduling.
//!
//! Failure model: a panicking cell is contained by the executor; its
//! experiment reports [`ExperimentOutcome::Failed`] (or `Skipped`, for
//! experiments downstream of the failure) while every independent
//! experiment completes normally. [`run_experiments`] never panics on
//! a cell failure — callers that want all-or-nothing semantics use
//! [`run_experiments_strict`].

use crate::misscurves;
use crate::output::Table;
use crate::suite::{assemble_run, run_cell, SuiteRun, CELL_CONFIGS};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use tcor::FrameReport;
use tcor_common::{TcorError, TcorResult, TileGrid};
use tcor_runner::{
    execute, execute_serial, ArtifactStore, ExecOptions, FaultPlan, JobCtx, JobGraph, JobId,
    JobOutcome, Telemetry,
};
use tcor_workloads::synth::CalibratedScene;
use tcor_workloads::{suite as benchmarks, BenchmarkProfile};

/// The screen/tile geometry every paper experiment uses.
pub fn paper_grid() -> TileGrid {
    TileGrid::new(1960, 768, 32)
}

/// Stable store key for an artifact described by `desc`.
pub fn artifact_key(desc: &str) -> u64 {
    tcor_common::fxhash64(desc.as_bytes())
}

fn scene_key(profile: &BenchmarkProfile, grid: &TileGrid) -> u64 {
    artifact_key(&format!(
        "scene/{}/seed={:#x}/{}x{}/tile={}",
        profile.alias,
        profile.seed,
        grid.screen_width(),
        grid.screen_height(),
        grid.tile_size()
    ))
}

fn cell_key(profile: &BenchmarkProfile, cfg: &str) -> u64 {
    artifact_key(&format!("cell/{}/{cfg}", profile.alias))
}

/// Store key of the aggregated suite PB traces
/// ([`misscurves::suite_traces`]).
pub const TRACES_DESC: &str = "traces/suite/zorder";

/// Store key of the assembled full-system [`SuiteRun`].
pub const SUITE_DESC: &str = "suite/paper";

/// The calibrated scene of one Table II benchmark, computed once per
/// process and shared by every consumer (suite cells, miss-curve
/// traces, the ablation/scaling/sweep/traversal studies).
///
/// # Errors
///
/// Propagates store corruption (key collision) as a typed error.
pub fn calibrated_scene(
    store: &ArtifactStore,
    profile: &BenchmarkProfile,
    grid: &TileGrid,
) -> TcorResult<Arc<CalibratedScene>> {
    let (p, g) = (*profile, *grid);
    store.get_or_compute(scene_key(profile, grid), move || {
        tcor_workloads::synth::calibrate(&p, &g)
    })
}

/// One full-system cell (benchmark × configuration), memoized.
///
/// # Errors
///
/// Propagates store corruption (key collision) as a typed error.
pub fn cell_report(
    store: &ArtifactStore,
    profile: &BenchmarkProfile,
    scene: &CalibratedScene,
    cfg: &str,
) -> TcorResult<Arc<FrameReport>> {
    store.get_or_compute(cell_key(profile, cfg), || {
        run_cell(profile, &scene.scene, cfg)
    })
}

/// The full Table II suite, assembled from memoized cells. Any cells
/// already computed by the job graph are reused; missing ones are
/// computed here (the serial / on-demand path).
///
/// # Errors
///
/// Propagates store corruption from any scene or cell lookup.
pub fn suite_from_store(store: &ArtifactStore) -> TcorResult<Arc<SuiteRun>> {
    let key = artifact_key(SUITE_DESC);
    if let Some(suite) = store.get::<SuiteRun>(key)? {
        return Ok(suite);
    }
    // Build fallibly *outside* the memoizing closure so store errors
    // propagate as typed results instead of panics.
    let grid = paper_grid();
    let mut runs = Vec::new();
    for p in &benchmarks() {
        let cal = calibrated_scene(store, p, &grid)?;
        let mut cells: Vec<Arc<FrameReport>> = Vec::with_capacity(CELL_CONFIGS.len());
        for cfg in CELL_CONFIGS {
            cells.push(cell_report(store, p, &cal, cfg)?);
        }
        runs.push(assemble_run(p, &cal, |cfg| {
            let i = CELL_CONFIGS
                .iter()
                .position(|c| *c == cfg)
                .expect("assemble_run only asks for CELL_CONFIGS names");
            (*cells[i]).clone()
        }));
    }
    store.get_or_compute(key, move || SuiteRun { benchmarks: runs })
}

/// Whether `id` consumes the full-system [`SuiteRun`].
pub(crate) fn needs_suite(id: &str) -> bool {
    !matches!(
        id,
        "table1"
            | "fig1"
            | "fig10"
            | "fig11"
            | "fig12"
            | "fig13"
            | "fig13x"
            | "ablation"
            | "scaling"
            | "sweep"
            | "traversal"
    )
}

/// Whether `id` consumes the aggregated suite PB traces.
fn needs_traces(id: &str) -> bool {
    matches!(id, "fig1" | "fig11" | "fig12" | "fig13" | "fig13x")
}

/// Whether `id` reads calibrated scenes directly (outside suite/traces).
fn needs_scenes(id: &str) -> bool {
    matches!(id, "ablation" | "scaling" | "sweep" | "traversal")
}

/// How to execute a job graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Reference path: every job in id order on the calling thread.
    #[default]
    Serial,
    /// Work-stealing pool with this many workers.
    Parallel(usize),
}

/// Everything that shapes one run besides the experiment list.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Serial reference path or the work-stealing pool.
    pub mode: ExecMode,
    /// Wall-time budget per job; over-budget jobs are flagged by the
    /// watchdog (they are never killed — results stay deterministic).
    pub job_timeout: Option<Duration>,
    /// Deterministic fault injection (`--inject-faults <seed>`).
    pub fault_plan: Option<FaultPlan>,
}

/// How one requested experiment ended.
#[derive(Clone, Debug)]
pub enum ExperimentOutcome {
    /// Completed; its rendered tables.
    Tables(Vec<Table>),
    /// Its job panicked (or returned a typed error).
    Failed {
        /// The panic message or error rendering.
        message: String,
    },
    /// Not attempted: an upstream scene/cell/suite job failed.
    Skipped {
        /// Label of the failed dependency.
        dep_label: String,
    },
}

impl ExperimentOutcome {
    /// The tables, if the experiment completed.
    pub fn tables(self) -> Option<Vec<Table>> {
        match self {
            ExperimentOutcome::Tables(t) => Some(t),
            _ => None,
        }
    }
}

/// The result of one (fault-tolerant) run over a set of experiments.
#[derive(Debug)]
pub struct RunOutcome {
    /// `(id, outcome)` in input order — every requested id appears,
    /// completed or not.
    pub experiments: Vec<(String, ExperimentOutcome)>,
    /// The executor's structured failure report (panics, skips,
    /// watchdog flags), when any job misbehaved.
    pub failure_summary: Option<String>,
    /// Labels of jobs the watchdog flagged as over budget.
    pub timed_out: Vec<String>,
}

impl RunOutcome {
    /// Whether every requested experiment produced tables.
    pub fn all_ok(&self) -> bool {
        self.experiments
            .iter()
            .all(|(_, o)| matches!(o, ExperimentOutcome::Tables(_)))
    }

    /// Ids that did not complete, with a one-line reason each.
    pub fn failed_ids(&self) -> Vec<(String, String)> {
        self.experiments
            .iter()
            .filter_map(|(id, o)| match o {
                ExperimentOutcome::Tables(_) => None,
                ExperimentOutcome::Failed { message } => Some((id.clone(), message.clone())),
                ExperimentOutcome::Skipped { dep_label } => Some((
                    id.clone(),
                    format!("skipped: dependency `{dep_label}` failed"),
                )),
            })
            .collect()
    }
}

/// Runs `ids` through the job graph and reports per-experiment
/// outcomes in input order. Shared artifacts are computed once; with
/// [`ExecMode::Parallel`] independent cells and experiments run
/// concurrently, and completed output is identical to
/// [`ExecMode::Serial`]. A panicking job (organic or injected via
/// [`RunOptions::fault_plan`]) fails its experiment and skips its
/// dependents; independent experiments complete.
///
/// # Errors
///
/// Returns a config error listing the valid ids if any id is unknown.
/// Job failures are *not* errors here — they are reported per
/// experiment in the [`RunOutcome`].
pub fn run_experiments(
    ids: &[String],
    opts: &RunOptions,
    store: &ArtifactStore,
    telemetry: &Telemetry,
) -> TcorResult<RunOutcome> {
    for id in ids {
        if !crate::EXPERIMENTS.contains(&id.as_str()) {
            return Err(TcorError::config(format!(
                "unknown experiment `{id}`\nvalid experiments: {}",
                crate::EXPERIMENTS.join(", ")
            )));
        }
    }

    let grid = paper_grid();
    let profiles = benchmarks();
    let want_suite = ids.iter().any(|id| needs_suite(id));
    let want_traces = ids.iter().any(|id| needs_traces(id));
    let want_scenes = want_suite || want_traces || ids.iter().any(|id| needs_scenes(id));

    type JobResult = TcorResult<Option<(usize, Vec<Table>)>>;
    let mut g: JobGraph<'_, JobResult> = JobGraph::new();

    // Tier 1: one calibration job per benchmark scene.
    let mut scene_ids: Vec<JobId> = Vec::new();
    if want_scenes {
        for p in &profiles {
            let (p, grid) = (*p, grid);
            scene_ids.push(g.add_job(
                format!("scene:{}", p.alias),
                &[],
                move |ctx: &JobCtx<'_>| {
                    let cal = calibrated_scene(ctx.store(), &p, &grid)?;
                    ctx.counter("prims", cal.num_prims as u64);
                    Ok(None)
                },
            ));
        }
    }

    // Tier 2a: the aggregated PB traces (miss-curve substrate).
    let traces_job = want_traces.then(|| {
        g.add_job("traces:suite", &scene_ids, |ctx: &JobCtx<'_>| {
            let traces = misscurves::suite_traces(ctx.store())?;
            ctx.counter(
                "trace_accesses",
                traces.iter().map(|b| b.trace.len() as u64).sum(),
            );
            Ok(None)
        })
    });

    // Tier 2b: the 60 full-system cells, each depending only on its
    // scene, then one assembly barrier producing the SuiteRun.
    let suite_job = want_suite.then(|| {
        let mut cells = Vec::with_capacity(profiles.len() * CELL_CONFIGS.len());
        for (p, sid) in profiles.iter().zip(&scene_ids) {
            for cfg in CELL_CONFIGS {
                let (p, grid) = (*p, grid);
                cells.push(g.add_job(
                    format!("cell:{}/{cfg}", p.alias),
                    &[*sid],
                    move |ctx: &JobCtx<'_>| {
                        let cal = calibrated_scene(ctx.store(), &p, &grid)?;
                        let r = cell_report(ctx.store(), &p, &cal, cfg)?;
                        ctx.counter("pb_l2_accesses", r.pb_l2_accesses());
                        ctx.counter("pb_mm_accesses", r.pb_mm_accesses());
                        ctx.counter("l2_hits", r.l2_stats.hits());
                        ctx.counter("l2_misses", r.l2_stats.misses());
                        Ok(None)
                    },
                ));
            }
        }
        g.add_job("suite:assemble", &cells, |ctx: &JobCtx<'_>| {
            let suite = suite_from_store(ctx.store())?;
            ctx.counter("benchmarks", suite.benchmarks.len() as u64);
            Ok(None)
        })
    });

    // Tier 3: the experiments themselves, in input order.
    let mut exp_jobs: Vec<JobId> = Vec::with_capacity(ids.len());
    for (idx, id) in ids.iter().enumerate() {
        let mut deps = Vec::new();
        if needs_suite(id) {
            deps.extend(suite_job);
        }
        if needs_traces(id) {
            deps.extend(traces_job);
        }
        if needs_scenes(id) {
            deps.extend_from_slice(&scene_ids);
        }
        let id = id.clone();
        exp_jobs.push(
            g.add_job(format!("exp:{id}"), &deps, move |ctx: &JobCtx<'_>| {
                let tables = crate::try_run_experiment(ctx.store(), &id)?;
                // Miss-curve experiments publish how many times they
                // streamed the suite; surface it on the job-end event.
                if let Some(n) = misscurves::trace_passes(ctx.store(), &id) {
                    ctx.counter("trace_passes", n);
                }
                Ok(Some((idx, tables)))
            }),
        );
    }

    telemetry.enable_progress(g.len());
    let exec_opts = ExecOptions {
        job_timeout: opts.job_timeout,
        fault_plan: opts.fault_plan.clone(),
    };
    // Tell the miss-curve engine how wide its sharded set dispatch may
    // fan out: serial runs stay strictly serial (bit-identity is then
    // trivially preserved), parallel runs may split set ranges across
    // the pool width.
    misscurves::set_engine_workers(
        store,
        match opts.mode {
            ExecMode::Serial => 1,
            ExecMode::Parallel(workers) => workers.max(1),
        },
    )?;
    let report = match opts.mode {
        ExecMode::Serial => execute_serial(g, &exec_opts, store, telemetry),
        ExecMode::Parallel(workers) => execute(g, workers, &exec_opts, store, telemetry),
    };

    let failure_summary = (!report.all_completed()).then(|| report.failure_summary());
    let timed_out = report
        .timed_out
        .iter()
        .filter_map(|&j| report.labels.get(j).cloned())
        .collect();
    let owner: HashMap<usize, usize> = exp_jobs
        .iter()
        .enumerate()
        .map(|(input_idx, jid)| (jid.0, input_idx))
        .collect();
    let labels = report.labels;
    let mut experiments: Vec<Option<(String, ExperimentOutcome)>> =
        ids.iter().map(|_| None).collect();
    for (job_idx, outcome) in report.outcomes.into_iter().enumerate() {
        let Some(&input_idx) = owner.get(&job_idx) else {
            continue; // scene/trace/cell/assembly jobs: errors cascade
                      // to the experiments that consume them.
        };
        let out = match outcome {
            JobOutcome::Completed(Ok(Some((idx, tables)))) => {
                debug_assert_eq!(idx, input_idx);
                ExperimentOutcome::Tables(tables)
            }
            // Experiment jobs always return `Some` on success; treat a
            // bare `None` as a failure rather than fabricating tables.
            JobOutcome::Completed(Ok(None)) => ExperimentOutcome::Failed {
                message: "experiment job produced no tables".to_string(),
            },
            JobOutcome::Completed(Err(e)) => ExperimentOutcome::Failed {
                message: e.to_string(),
            },
            JobOutcome::Failed { panic_msg } => ExperimentOutcome::Failed { message: panic_msg },
            JobOutcome::Skipped { failed_dep } => ExperimentOutcome::Skipped {
                dep_label: labels.get(failed_dep).cloned().unwrap_or_default(),
            },
        };
        experiments[input_idx] = Some((ids[input_idx].clone(), out));
    }
    Ok(RunOutcome {
        experiments: experiments.into_iter().flatten().collect(),
        failure_summary,
        timed_out,
    })
}

/// All-or-nothing wrapper over [`run_experiments`]: any failed or
/// skipped experiment becomes a typed execution error. This is the
/// path tests and benchmarks use.
///
/// # Errors
///
/// Config error on unknown ids; execution error (with the executor's
/// failure report) if any experiment did not complete.
pub fn run_experiments_strict(
    ids: &[String],
    mode: ExecMode,
    store: &ArtifactStore,
    telemetry: &Telemetry,
) -> TcorResult<Vec<(String, Vec<Table>)>> {
    let opts = RunOptions {
        mode,
        ..RunOptions::default()
    };
    let out = run_experiments(ids, &opts, store, telemetry)?;
    if !out.all_ok() {
        let mut msg = String::from("experiment run failed:");
        for (id, reason) in out.failed_ids() {
            msg.push_str(&format!("\n  {id}: {reason}"));
        }
        if let Some(summary) = &out.failure_summary {
            msg.push('\n');
            msg.push_str(summary);
        }
        return Err(TcorError::execution(msg));
    }
    Ok(out
        .experiments
        .into_iter()
        .filter_map(|(id, o)| o.tables().map(|t| (id, t)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_keys_distinguish_benchmarks_and_grids() {
        let profiles = benchmarks();
        let g1 = paper_grid();
        let g2 = TileGrid::new(256, 256, 32);
        let mut keys: Vec<u64> = profiles.iter().map(|p| scene_key(p, &g1)).collect();
        keys.extend(profiles.iter().map(|p| scene_key(p, &g2)));
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 2 * profiles.len());
    }

    #[test]
    fn calibrated_scene_is_shared() {
        let store = ArtifactStore::new();
        let grid = TileGrid::new(256, 256, 32);
        let p = benchmarks()[9]; // GTr: smallest
        let a = calibrated_scene(&store, &p, &grid).unwrap();
        let b = calibrated_scene(&store, &p, &grid).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.computes(), 1);
    }

    #[test]
    fn unknown_ids_are_rejected_with_the_valid_list() {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let err = run_experiments(&["fig999".to_string()], &RunOptions::default(), &store, &t)
            .unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Config);
        let msg = err.to_string();
        assert!(msg.contains("fig999"));
        assert!(msg.contains("fig14"));
    }

    #[test]
    fn cheap_experiments_run_through_the_graph() {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let out = run_experiments_strict(
            &["table1".to_string(), "fig10".to_string()],
            ExecMode::Parallel(2),
            &store,
            &t,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "table1");
        assert_eq!(out[1].0, "fig10");
        assert!(!out[0].1.is_empty() && !out[1].1.is_empty());
    }

    #[test]
    fn an_injected_experiment_panic_is_contained() {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let opts = RunOptions {
            fault_plan: Some(FaultPlan::panic_on("exp:table1")),
            ..RunOptions::default()
        };
        let ids = vec!["table1".to_string(), "fig10".to_string()];
        let out = run_experiments(&ids, &opts, &store, &t).unwrap();
        assert!(!out.all_ok());
        match &out.experiments[0].1 {
            ExperimentOutcome::Failed { message } => {
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected table1 to fail, got {other:?}"),
        }
        assert!(
            matches!(&out.experiments[1].1, ExperimentOutcome::Tables(t) if !t.is_empty()),
            "independent experiment must complete"
        );
        assert!(out.failure_summary.is_some());
        // The strict wrapper turns the same situation into an error.
        let err = run_experiments_strict(&ids, ExecMode::Serial, &store, &t);
        assert!(err.is_ok(), "no fault plan: strict path passes");
    }
}
