//! Experiment orchestration over the `tcor-runner` job graph.
//!
//! The harness used to run everything sequentially and recompute shared
//! inputs per experiment: every miss-curve figure rebuilt all ten suite
//! traces, and every suite cell re-calibrated its scene. Here each
//! experiment becomes a node of a dependency DAG whose shared inputs —
//! calibrated scenes, the aggregated PB traces, the 60 full-system cell
//! reports, the assembled [`SuiteRun`] — live in a content-addressed
//! [`ArtifactStore`], computed exactly once per process and shared
//! across however many workers the executor runs.
//!
//! Keys are `fxhash64` over a stable textual description of the
//! artifact's configuration, so a key is a pure function of *what* is
//! being computed, never of scheduling.

use crate::misscurves;
use crate::output::Table;
use crate::suite::{assemble_run, run_cell, SuiteRun, CELL_CONFIGS};
use std::sync::Arc;
use tcor::FrameReport;
use tcor_common::TileGrid;
use tcor_runner::{execute, execute_serial, ArtifactStore, JobCtx, JobGraph, JobId, Telemetry};
use tcor_workloads::synth::CalibratedScene;
use tcor_workloads::{suite as benchmarks, BenchmarkProfile};

/// The screen/tile geometry every paper experiment uses.
pub fn paper_grid() -> TileGrid {
    TileGrid::new(1960, 768, 32)
}

/// Stable store key for an artifact described by `desc`.
pub fn artifact_key(desc: &str) -> u64 {
    tcor_common::fxhash64(desc.as_bytes())
}

fn scene_key(profile: &BenchmarkProfile, grid: &TileGrid) -> u64 {
    artifact_key(&format!(
        "scene/{}/seed={:#x}/{}x{}/tile={}",
        profile.alias,
        profile.seed,
        grid.screen_width(),
        grid.screen_height(),
        grid.tile_size()
    ))
}

fn cell_key(profile: &BenchmarkProfile, cfg: &str) -> u64 {
    artifact_key(&format!("cell/{}/{cfg}", profile.alias))
}

/// Store key of the aggregated suite PB traces
/// ([`misscurves::suite_traces`]).
pub const TRACES_DESC: &str = "traces/suite/zorder";

/// Store key of the assembled full-system [`SuiteRun`].
pub const SUITE_DESC: &str = "suite/paper";

/// The calibrated scene of one Table II benchmark, computed once per
/// process and shared by every consumer (suite cells, miss-curve
/// traces, the ablation/scaling/sweep/traversal studies).
pub fn calibrated_scene(
    store: &ArtifactStore,
    profile: &BenchmarkProfile,
    grid: &TileGrid,
) -> Arc<CalibratedScene> {
    let (p, g) = (*profile, *grid);
    store.get_or_compute(scene_key(profile, grid), move || {
        tcor_workloads::synth::calibrate(&p, &g)
    })
}

/// One full-system cell (benchmark × configuration), memoized.
pub fn cell_report(
    store: &ArtifactStore,
    profile: &BenchmarkProfile,
    scene: &CalibratedScene,
    cfg: &str,
) -> Arc<FrameReport> {
    store.get_or_compute(cell_key(profile, cfg), || {
        run_cell(profile, &scene.scene, cfg)
    })
}

/// The full Table II suite, assembled from memoized cells. Any cells
/// already computed by the job graph are reused; missing ones are
/// computed here (the serial / on-demand path).
pub fn suite_from_store(store: &ArtifactStore) -> Arc<SuiteRun> {
    store.get_or_compute(artifact_key(SUITE_DESC), || {
        let grid = paper_grid();
        SuiteRun {
            benchmarks: benchmarks()
                .iter()
                .map(|p| {
                    let cal = calibrated_scene(store, p, &grid);
                    assemble_run(p, &cal, |cfg| (*cell_report(store, p, &cal, cfg)).clone())
                })
                .collect(),
        }
    })
}

/// Whether `id` consumes the full-system [`SuiteRun`].
pub(crate) fn needs_suite(id: &str) -> bool {
    !matches!(
        id,
        "table1"
            | "fig1"
            | "fig10"
            | "fig11"
            | "fig12"
            | "fig13"
            | "fig13x"
            | "ablation"
            | "scaling"
            | "sweep"
            | "traversal"
    )
}

/// Whether `id` consumes the aggregated suite PB traces.
fn needs_traces(id: &str) -> bool {
    matches!(id, "fig1" | "fig11" | "fig12" | "fig13" | "fig13x")
}

/// Whether `id` reads calibrated scenes directly (outside suite/traces).
fn needs_scenes(id: &str) -> bool {
    matches!(id, "ablation" | "scaling" | "sweep" | "traversal")
}

/// How to execute a job graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Reference path: every job in id order on the calling thread.
    Serial,
    /// Work-stealing pool with this many workers.
    Parallel(usize),
}

/// Runs `ids` through the job graph and returns `(id, tables)` pairs in
/// input order. Shared artifacts are computed once; with
/// [`ExecMode::Parallel`] independent cells and experiments run
/// concurrently, and the output is identical to [`ExecMode::Serial`].
///
/// # Errors
///
/// Returns an error listing the valid ids if any id is unknown.
pub fn run_experiments(
    ids: &[String],
    mode: ExecMode,
    store: &ArtifactStore,
    telemetry: &Telemetry,
) -> Result<Vec<(String, Vec<Table>)>, String> {
    for id in ids {
        if !crate::EXPERIMENTS.contains(&id.as_str()) {
            return Err(format!(
                "unknown experiment `{id}`\nvalid experiments: {}",
                crate::EXPERIMENTS.join(", ")
            ));
        }
    }

    let grid = paper_grid();
    let profiles = benchmarks();
    let want_suite = ids.iter().any(|id| needs_suite(id));
    let want_traces = ids.iter().any(|id| needs_traces(id));
    let want_scenes = want_suite || want_traces || ids.iter().any(|id| needs_scenes(id));

    let mut g: JobGraph<'_, Option<(usize, Vec<Table>)>> = JobGraph::new();

    // Tier 1: one calibration job per benchmark scene.
    let mut scene_ids: Vec<JobId> = Vec::new();
    if want_scenes {
        for p in &profiles {
            let (p, grid) = (*p, grid);
            scene_ids.push(g.add_job(
                format!("scene:{}", p.alias),
                &[],
                move |ctx: &JobCtx<'_>| {
                    let cal = calibrated_scene(ctx.store(), &p, &grid);
                    ctx.counter("prims", cal.num_prims as u64);
                    None
                },
            ));
        }
    }

    // Tier 2a: the aggregated PB traces (miss-curve substrate).
    let traces_job = want_traces.then(|| {
        g.add_job("traces:suite", &scene_ids, |ctx: &JobCtx<'_>| {
            let traces = misscurves::suite_traces(ctx.store());
            ctx.counter(
                "trace_accesses",
                traces.iter().map(|b| b.trace.len() as u64).sum(),
            );
            None
        })
    });

    // Tier 2b: the 60 full-system cells, each depending only on its
    // scene, then one assembly barrier producing the SuiteRun.
    let suite_job = want_suite.then(|| {
        let mut cells = Vec::with_capacity(profiles.len() * CELL_CONFIGS.len());
        for (p, sid) in profiles.iter().zip(&scene_ids) {
            for cfg in CELL_CONFIGS {
                let (p, grid) = (*p, grid);
                cells.push(g.add_job(
                    format!("cell:{}/{cfg}", p.alias),
                    &[*sid],
                    move |ctx: &JobCtx<'_>| {
                        let cal = calibrated_scene(ctx.store(), &p, &grid);
                        let r = cell_report(ctx.store(), &p, &cal, cfg);
                        ctx.counter("pb_l2_accesses", r.pb_l2_accesses());
                        ctx.counter("pb_mm_accesses", r.pb_mm_accesses());
                        ctx.counter("l2_hits", r.l2_stats.hits());
                        ctx.counter("l2_misses", r.l2_stats.misses());
                        None
                    },
                ));
            }
        }
        g.add_job("suite:assemble", &cells, |ctx: &JobCtx<'_>| {
            let suite = suite_from_store(ctx.store());
            ctx.counter("benchmarks", suite.benchmarks.len() as u64);
            None
        })
    });

    // Tier 3: the experiments themselves, in input order.
    for (idx, id) in ids.iter().enumerate() {
        let mut deps = Vec::new();
        if needs_suite(id) {
            deps.extend(suite_job);
        }
        if needs_traces(id) {
            deps.extend(traces_job);
        }
        if needs_scenes(id) {
            deps.extend_from_slice(&scene_ids);
        }
        let id = id.clone();
        g.add_job(format!("exp:{id}"), &deps, move |ctx: &JobCtx<'_>| {
            let tables = crate::try_run_experiment(ctx.store(), &id)
                .expect("id validated before graph construction");
            Some((idx, tables))
        });
    }

    telemetry.enable_progress(g.len());
    let results = match mode {
        ExecMode::Serial => execute_serial(g, store, telemetry),
        ExecMode::Parallel(workers) => execute(g, workers, store, telemetry),
    };

    let mut tables: Vec<(usize, Vec<Table>)> = results.into_iter().flatten().collect();
    tables.sort_by_key(|(idx, _)| *idx);
    Ok(tables
        .into_iter()
        .map(|(idx, t)| (ids[idx].clone(), t))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_keys_distinguish_benchmarks_and_grids() {
        let profiles = benchmarks();
        let g1 = paper_grid();
        let g2 = TileGrid::new(256, 256, 32);
        let mut keys: Vec<u64> = profiles.iter().map(|p| scene_key(p, &g1)).collect();
        keys.extend(profiles.iter().map(|p| scene_key(p, &g2)));
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 2 * profiles.len());
    }

    #[test]
    fn calibrated_scene_is_shared() {
        let store = ArtifactStore::new();
        let grid = TileGrid::new(256, 256, 32);
        let p = benchmarks()[9]; // GTr: smallest
        let a = calibrated_scene(&store, &p, &grid);
        let b = calibrated_scene(&store, &p, &grid);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.computes(), 1);
    }

    #[test]
    fn unknown_ids_are_rejected_with_the_valid_list() {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let err =
            run_experiments(&["fig999".to_string()], ExecMode::Serial, &store, &t).unwrap_err();
        assert!(err.contains("fig999"));
        assert!(err.contains("fig14"));
    }

    #[test]
    fn cheap_experiments_run_through_the_graph() {
        let store = ArtifactStore::new();
        let t = Telemetry::new();
        let out = run_experiments(
            &["table1".to_string(), "fig10".to_string()],
            ExecMode::Parallel(2),
            &store,
            &t,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "table1");
        assert_eq!(out[1].0, "fig10");
        assert!(!out[0].1.is_empty() && !out[1].1.is_empty());
    }
}
