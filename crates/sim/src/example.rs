//! Figure 10: the worked example's access-by-access event log as a
//! harness table (the runnable walkthrough lives in
//! `examples/paper_example.rs`).

use crate::output::Table;
use tcor::{AttributeCache, AttributeCacheConfig, ReadResult, WriteResult};
use tcor_cache::policy::Lru;
use tcor_cache::{AccessKind, AccessMeta, Cache, Indexing};
use tcor_common::{BlockAddr, CacheParams, TileGrid, TileId, Traversal};
use tcor_pbuf::BinnedFrame;

/// Regenerates the Fig. 10 event sequence: twelve accesses (3 PLB
/// writes + 9 Tile Fetcher reads) through a two-primitive cache under
/// LRU and under TCOR's OPT.
pub fn fig10() -> Table {
    let grid = TileGrid::new(96, 96, 32);
    let order = Traversal::Scanline.order(&grid);
    let t = |i: u32| TileId(i);
    let frame = BinnedFrame::new(
        &[
            (3, vec![t(0), t(3), t(6)]),
            (3, vec![t(1), t(2)]),
            (3, vec![t(4), t(5), t(7), t(8)]),
        ],
        &order,
    );

    let mut lru = Cache::new(
        CacheParams::new(128, 64, 0, 1),
        Indexing::Modulo,
        Lru::new(),
    );
    let mut opt = AttributeCache::new(AttributeCacheConfig {
        ways: 2,
        pb_lines: 2,
        ab_entries: 6,
        indexing: Indexing::Xor,
        write_bypass: true,
    });

    let mut table = Table::new(
        "fig10",
        "The worked example (Fig. 9/10): LRU vs OPT, access by access",
        &["access", "lru_event", "opt_event"],
    );

    for p in frame.primitives() {
        let lru_out = lru.access(
            BlockAddr(p.id.0 as u64),
            AccessKind::Write,
            AccessMeta::NONE,
        );
        let lru_event = match lru_out.evicted {
            Some(e) if e.dirty => format!("evict P{} + L2 write", e.addr.0),
            Some(e) => format!("evict P{}", e.addr.0),
            None => "allocate".to_string(),
        };
        let opt_event = match opt.write(p.id, p.attr_count, p.first_use()) {
            WriteResult::Allocated { evicted } if evicted.is_empty() => "allocate".to_string(),
            WriteResult::Allocated { evicted } => format!("evict {:?}", evicted[0].prim),
            WriteResult::Bypassed => "bypass to L2".to_string(),
        };
        table.push_row(vec![
            format!("PLB write P{} (OPT#{})", p.id.0, p.first_use().value()),
            lru_event,
            opt_event,
        ]);
    }
    for tile in order.iter() {
        for &prim in frame.tile_list(tile) {
            let p = frame.primitive(prim);
            let lru_out = lru.access(BlockAddr(prim.0 as u64), AccessKind::Read, AccessMeta::NONE);
            let lru_event = if lru_out.hit {
                "hit".to_string()
            } else {
                match lru_out.evicted {
                    Some(e) if e.dirty => format!("MISS, evict P{} + L2 write", e.addr.0),
                    _ => "MISS".to_string(),
                }
            };
            let nxt = p.next_use_after(order.rank_of(tile));
            let opt_event = match opt.read(prim, p.attr_count, nxt) {
                ReadResult::Hit => "hit".to_string(),
                ReadResult::Miss { evicted } if evicted.is_empty() => "MISS".to_string(),
                ReadResult::Miss { evicted } => format!("MISS, evict {:?}", evicted[0].prim),
                ReadResult::Stalled => unreachable!("example never stalls"),
            };
            opt.unlock(prim);
            table.push_row(vec![
                format!("T{} read P{}", tile.0, prim.0),
                lru_event,
                opt_event,
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_has_twelve_accesses() {
        let t = fig10();
        assert_eq!(t.rows.len(), 12);
        // The third write: LRU evicts+writes back, OPT bypasses.
        assert!(t.rows[2][1].contains("L2 write"));
        assert_eq!(t.rows[2][2], "bypass to L2");
        // OPT hits everywhere except the bypassed primitive's first read.
        let opt_misses = t.rows[3..].iter().filter(|r| r[2].contains("MISS")).count();
        assert_eq!(opt_misses, 1);
    }
}
