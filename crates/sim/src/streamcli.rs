//! `tcor-sim stream` / `tcor-sim bench-stream`: clients for the
//! streaming profile plane.
//!
//! * **`stream`** — chunked-upload client: opens a session, uploads a
//!   trace (a suite workload via [`workload_trace`], or any CSV the
//!   `trace` subcommand exports) in bounded chunks, finishes, and
//!   prints the final curve document. With `--policy opt|lru` the
//!   finished body is byte-compatible with the offline
//!   `/v1/misscurve/{workload}/{policy}` plane — CI proves streamed ≡
//!   whole-trace with a `cmp`, not a tolerance.
//! * **`--probe-oversize`** — negative probe: declares a body over the
//!   route's limit and expects the daemon to answer 413 from the head
//!   alone (the body is never sent, so a buffering server would hang
//!   here and fail the probe's timeout).
//! * **`bench-stream`** — in-process benchmark: ingest throughput
//!   (MB/s, accesses/s), live-snapshot latency percentiles taken
//!   *while* ingesting, and the profiler's memory high-water
//!   (`peak_window`) against the session budgets, written to
//!   `BENCH_stream.json`. The finished curve is asserted byte-identical
//!   to an offline [`OptStackProfiler`] run of the same trace.

use crate::misscurves::workload_trace;
use crate::SimBackend;
use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tcor_cache::profile::OptStackProfiler;
use tcor_cache::{annotate_next_use, Access, Trace};
use tcor_common::{BlockAddr, Xoshiro256pp};
use tcor_runner::{ArtifactStore, Json};
use tcor_serve::{percentile, HttpClient, ServeConfig};
use tcor_workloads::encode_chunk;

/// Default accesses per uploaded chunk.
const DEFAULT_CHUNK_ACCESSES: usize = 4096;

/// Parsed `tcor-sim stream` flags.
struct StreamOpts {
    addr: String,
    workload: Option<String>,
    trace_csv: Option<String>,
    label: Option<String>,
    policy: Option<String>,
    chunk_accesses: usize,
    probe_oversize: bool,
}

/// `tcor-sim stream <addr> (--workload ALIAS | --trace-csv FILE | --probe-oversize)
/// [--label L] [--policy opt|lru] [--chunk-accesses N]` entry point.
pub fn stream_cmd(args: &[String]) -> ExitCode {
    let mut opts = StreamOpts {
        addr: String::new(),
        workload: None,
        trace_csv: None,
        label: None,
        policy: None,
        chunk_accesses: DEFAULT_CHUNK_ACCESSES,
        probe_oversize: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--probe-oversize" => {
                opts.probe_oversize = true;
                i += 1;
            }
            flag @ ("--workload" | "--trace-csv" | "--label" | "--policy" | "--chunk-accesses") => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("stream: {flag} needs a value");
                    return ExitCode::from(2);
                };
                match flag {
                    "--workload" => opts.workload = Some(value.clone()),
                    "--trace-csv" => opts.trace_csv = Some(value.clone()),
                    "--label" => opts.label = Some(value.clone()),
                    "--policy" => opts.policy = Some(value.clone()),
                    _ => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => opts.chunk_accesses = n,
                        _ => {
                            eprintln!("stream: --chunk-accesses needs a positive integer");
                            return ExitCode::from(2);
                        }
                    },
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("stream: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            addr => {
                opts.addr = addr.to_string();
                i += 1;
            }
        }
    }
    if opts.addr.is_empty() {
        eprintln!("stream: needs a daemon address (host:port)");
        return ExitCode::from(2);
    }
    if opts.probe_oversize {
        return match probe_oversize(&opts.addr) {
            Ok(()) => {
                eprintln!("stream: oversize body refused with 413 from the head alone");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("stream: oversize probe FAILED: {msg}");
                ExitCode::from(6)
            }
        };
    }
    let (trace, default_label) = match (&opts.workload, &opts.trace_csv) {
        (Some(alias), None) => {
            let store = ArtifactStore::new();
            match workload_trace(&store, alias) {
                Ok(bt) => (bt.trace.clone(), alias.clone()),
                Err(e) => {
                    eprintln!("stream: {e}");
                    return ExitCode::from(6);
                }
            }
        }
        (None, Some(path)) => {
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("stream: cannot open {path}: {e}");
                    return ExitCode::from(6);
                }
            };
            match tcor_cache::trace::read_csv(std::io::BufReader::new(file)) {
                Ok(t) => (t, "trace".to_string()),
                Err(e) => {
                    eprintln!("stream: {path}: {e}");
                    return ExitCode::from(6);
                }
            }
        }
        _ => {
            eprintln!("stream: needs exactly one of --workload or --trace-csv");
            return ExitCode::from(2);
        }
    };
    let label = opts.label.clone().unwrap_or(default_label);
    match upload(&opts, &trace, &label) {
        Ok(body) => {
            print!("{body}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("stream: {msg}");
            ExitCode::from(6)
        }
    }
}

/// Uploads `trace` through one session and returns the finished body.
fn upload(opts: &StreamOpts, trace: &[Access], label: &str) -> Result<String, String> {
    let mut client = HttpClient::new(opts.addr.clone(), Duration::from_secs(600));
    let open = client
        .request("POST", "/v1/stream", Some(&format!("label={label}")))
        .map_err(|e| format!("open: {e}"))?;
    if open.status != 200 {
        return Err(format!("open -> {}: {}", open.status, open.body.trim_end()));
    }
    let id = session_id(&open.body)?;
    let mut sent = 0usize;
    for chunk in trace.chunks(opts.chunk_accesses) {
        let body = encode_chunk(chunk);
        let reply = client
            .request("POST", &format!("/v1/stream/{id}/chunk"), Some(&body))
            .map_err(|e| format!("chunk at access {sent}: {e}"))?;
        if reply.status != 200 {
            return Err(format!(
                "chunk at access {sent} -> {}: {}",
                reply.status,
                reply.body.trim_end()
            ));
        }
        sent += chunk.len();
    }
    eprintln!(
        "stream: session {id}: {sent} access(es) in {} chunk(s)",
        trace.len().div_ceil(opts.chunk_accesses.max(1))
    );
    let finish_path = match &opts.policy {
        Some(p) => format!("/v1/stream/{id}/finish?policy={p}"),
        None => format!("/v1/stream/{id}/finish"),
    };
    let reply = client
        .request("POST", &finish_path, None)
        .map_err(|e| format!("finish: {e}"))?;
    if reply.status != 200 {
        return Err(format!(
            "finish -> {}: {}",
            reply.status,
            reply.body.trim_end()
        ));
    }
    Ok(reply.body)
}

/// Declares a chunk body over the 1 MiB stream limit without sending
/// it; the daemon must answer 413 from the head alone. A raw socket
/// (not [`HttpClient`]) so nothing here buffers or sends the body.
fn probe_oversize(addr: &str) -> Result<(), String> {
    let mut sock = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    let head = format!(
        "POST /v1/stream/s0/chunk HTTP/1.1\r\nHost: {addr}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        8 * 1024 * 1024
    );
    sock.write_all(head.as_bytes())
        .map_err(|e| format!("send head: {e}"))?;
    let mut reply = String::new();
    // The daemon answers and closes; a server that waited for the body
    // would hang here and trip the read timeout.
    sock.read_to_string(&mut reply)
        .map_err(|e| format!("read: {e}"))?;
    if !reply.starts_with("HTTP/1.1 413 ") {
        return Err(format!(
            "expected 413, got `{}`",
            reply.lines().next().unwrap_or("<empty>")
        ));
    }
    Ok(())
}

/// Extracts the session id from an open receipt.
fn session_id(receipt: &str) -> Result<String, String> {
    match Json::parse(receipt)
        .map_err(|e| format!("open receipt: {e}"))?
        .get("session")
    {
        Some(Json::Str(id)) => Ok(id.clone()),
        _ => Err("open receipt has no session id".to_string()),
    }
}

/// Parsed `tcor-sim bench-stream` flags.
struct BenchOpts {
    path: String,
    smoke: bool,
    seed: u64,
}

/// `tcor-sim bench-stream [FILE] [--smoke] [--seed S]` entry point.
pub fn bench_stream_cmd(args: &[String]) -> ExitCode {
    let mut opts = BenchOpts {
        path: "BENCH_stream.json".to_string(),
        smoke: false,
        seed: 42,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                opts.smoke = true;
                i += 1;
            }
            "--seed" => {
                let Some(Ok(seed)) = args.get(i + 1).map(|v| v.parse()) else {
                    eprintln!("bench-stream: --seed needs an integer seed");
                    return ExitCode::from(2);
                };
                opts.seed = seed;
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("bench-stream: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            file => {
                opts.path = file.to_string();
                i += 1;
            }
        }
    }
    match bench(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench-stream: FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// A seeded synthetic trace with frame-coherent reuse: each round
/// touches every block of the working set once, in a fresh seeded
/// shuffle (tile rendering's shape — the same tiles, a different walk
/// each frame). Every block recurs within two rounds, so the streaming
/// profiler's resolved-prefix compaction has recurrences to retire and
/// the window stays O(working set), not O(trace).
fn synthetic_trace(seed: u64, accesses: usize, blocks: u64) -> Trace {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut order: Vec<u64> = (0..blocks).collect();
    let mut trace = Vec::with_capacity(accesses);
    while trace.len() < accesses {
        // Fisher-Yates reshuffle per round.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..(i as u64 + 1)) as usize);
        }
        for &addr in order.iter().take(accesses - trace.len()) {
            trace.push(Access::read(BlockAddr(addr)));
        }
    }
    trace
}

/// The benchmark proper.
fn bench(opts: &BenchOpts) -> Result<(), String> {
    let accesses = if opts.smoke { 32_768 } else { 262_144 };
    let trace = synthetic_trace(opts.seed, accesses, 4096);

    // Offline reference: the whole-trace profiler the streaming plane
    // must match byte-for-byte.
    let opt = OptStackProfiler::profile(&trace, &annotate_next_use(&trace));
    let grid = tcor_stream::default_grid();
    let curve: Vec<f64> = grid
        .caps
        .iter()
        .map(|&c| tcor_stream::miss_ratio(opt.misses_at(c), trace.len() as u64))
        .collect();
    let want = tcor_stream::misscurve_json("bench", "opt", &grid.size_kb, &curve).render() + "\n";

    let cfg = ServeConfig {
        port: 0,
        workers: 2,
        event_threads: 2,
        queue_depth: 64,
        cache_cap: 64,
        deadline: Duration::from_secs(600),
        ..ServeConfig::default()
    };
    let stream_cfg = cfg.stream;
    let server = tcor_serve::start(cfg, Arc::new(SimBackend::new()), None)
        .map_err(|e| format!("daemon: {e}"))?;
    let addr = server.addr().to_string();
    let mut client = HttpClient::new(addr.clone(), Duration::from_secs(600));

    let open = client
        .request("POST", "/v1/stream", Some("label=bench"))
        .map_err(|e| format!("open: {e}"))?;
    if open.status != 200 {
        return Err(format!("open -> {}", open.status));
    }
    let id = session_id(&open.body)?;

    // Ingest: timed chunk uploads, with a live snapshot every 8 chunks
    // (latency measured while the session is mid-stream, as a client
    // watching a converging curve would).
    let chunk_accesses = 8192;
    let mut bytes = 0u64;
    let mut chunk_us: Vec<f64> = Vec::new();
    let mut snap_us: Vec<f64> = Vec::new();
    let ingest_start = Instant::now();
    for (n, chunk) in trace.chunks(chunk_accesses).enumerate() {
        let body = encode_chunk(chunk);
        bytes += body.len() as u64;
        let t = Instant::now();
        let reply = client
            .request("POST", &format!("/v1/stream/{id}/chunk"), Some(&body))
            .map_err(|e| format!("chunk {n}: {e}"))?;
        chunk_us.push(t.elapsed().as_secs_f64() * 1e6);
        if reply.status != 200 {
            return Err(format!("chunk {n} -> {}", reply.status));
        }
        if n % 4 == 1 {
            let t = Instant::now();
            let snap = client
                .request("GET", &format!("/v1/stream/{id}/curve"), None)
                .map_err(|e| format!("snapshot: {e}"))?;
            snap_us.push(t.elapsed().as_secs_f64() * 1e6);
            if snap.status != 200 {
                return Err(format!("snapshot -> {}", snap.status));
            }
        }
    }
    let ingest_s = ingest_start.elapsed().as_secs_f64();

    // Final combined document carries the memory high-water.
    let combined = client
        .request("GET", &format!("/v1/stream/{id}/curve"), None)
        .map_err(|e| format!("final snapshot: {e}"))?;
    let doc = Json::parse(&combined.body).map_err(|e| format!("final snapshot: {e}"))?;
    let uint = |key: &str| -> u64 {
        match doc.get(key) {
            Some(Json::UInt(v)) => *v,
            _ => 0,
        }
    };
    let (peak_window, distinct) = (uint("peak_window"), uint("distinct_blocks"));

    let finished = client
        .request("POST", &format!("/v1/stream/{id}/finish?policy=opt"), None)
        .map_err(|e| format!("finish: {e}"))?;
    if finished.status != 200 {
        return Err(format!("finish -> {}", finished.status));
    }
    if finished.body != want {
        return Err("finished curve differs from the offline profiler bytes".to_string());
    }

    match client.request("POST", "/admin/shutdown", None) {
        Ok(r) if r.status == 200 => {}
        Ok(r) => return Err(format!("shutdown -> {}", r.status)),
        Err(e) => return Err(format!("shutdown: {e}")),
    }
    server.wait();

    let mb = bytes as f64 / (1024.0 * 1024.0);
    let doc = Json::obj([
        ("bench", Json::str("stream")),
        ("seed", Json::UInt(opts.seed)),
        ("smoke", Json::Bool(opts.smoke)),
        ("accesses", Json::UInt(trace.len() as u64)),
        ("bytes", Json::UInt(bytes)),
        ("ingest_s", Json::Float(ingest_s)),
        ("ingest_mb_s", Json::Float(mb / ingest_s)),
        ("accesses_per_s", Json::Float(trace.len() as f64 / ingest_s)),
        ("chunk_p50_us", Json::Float(percentile(&chunk_us, 50.0))),
        ("chunk_p99_us", Json::Float(percentile(&chunk_us, 99.0))),
        ("snapshots", Json::UInt(snap_us.len() as u64)),
        ("snapshot_p50_us", Json::Float(percentile(&snap_us, 50.0))),
        ("snapshot_p99_us", Json::Float(percentile(&snap_us, 99.0))),
        ("distinct_blocks", Json::UInt(distinct)),
        ("peak_window", Json::UInt(peak_window)),
        ("block_budget", Json::UInt(stream_cfg.session_blocks as u64)),
        ("byte_budget", Json::UInt(stream_cfg.session_bytes)),
        ("byte_identical_vs_offline", Json::Bool(true)),
    ]);
    std::fs::write(&opts.path, doc.render() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", opts.path))?;
    eprintln!(
        "bench-stream: PASS — {:.1} MB/s ({:.0} accesses/s), snapshot p50 {:.0} us / p99 {:.0} us \
         mid-ingest, peak window {peak_window} of {distinct} distinct blocks -> {}",
        mb / ingest_s,
        trace.len() as f64 / ingest_s,
        percentile(&snap_us, 50.0),
        percentile(&snap_us, 99.0),
        opts.path
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_is_seeded_and_reusing() {
        let a = synthetic_trace(7, 4096, 1024);
        let b = synthetic_trace(7, 4096, 1024);
        assert_eq!(a, b, "same seed, same trace");
        let distinct = tcor_cache::trace::distinct_blocks(&a);
        assert!(
            distinct < a.len() / 2,
            "wanted reuse, got {distinct} distinct of {}",
            a.len()
        );
        assert_ne!(a, synthetic_trace(8, 4096, 1024));
    }
}
