//! Tile Cache budget sweep: Figures 14–17 generalized over cache size.
//!
//! The paper evaluates two budgets (64 and 128 KiB). This sweep runs
//! 32–256 KiB to expose the crossover structure: a benchmark's Parameter
//! Buffer traffic collapses once the Attribute Cache covers its working
//! set, and TCOR reaches that point at a fraction of the baseline's
//! capacity (the Fig. 11 "6.8× smaller cache" claim, measured in the
//! full system).

use crate::orchestrate::calibrated_scene;
use crate::output::Table;
use tcor::{BaselineSystem, SystemConfig, TcorSystem};
use tcor_common::{CacheParams, GpuConfig, TcorResult, TileCacheOrg, TileGrid, LINE_SIZE};
use tcor_mem::L2Mode;
use tcor_runner::ArtifactStore;
use tcor_workloads::suite;

fn baseline_cfg(total_kib: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline_64k();
    cfg.gpu = GpuConfig {
        tile_cache: TileCacheOrg::Unified {
            cache: CacheParams::new(total_kib << 10, LINE_SIZE, 4, 1),
        },
        ..GpuConfig::paper_baseline()
    };
    cfg
}

fn tcor_cfg(total_kib: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_tcor_64k();
    // The paper's split keeps a fixed 16 KiB Primitive List Cache and
    // gives the rest to the Attribute Cache.
    let list_kib = 16u64.min(total_kib / 2);
    cfg.gpu = GpuConfig {
        tile_cache: TileCacheOrg::Split {
            list_cache: CacheParams::new(list_kib << 10, LINE_SIZE, 4, 1),
            attribute_bytes: (total_kib - list_kib) << 10,
            attribute_ways: 4,
        },
        ..GpuConfig::paper_baseline()
    };
    cfg.l2_mode = L2Mode::TcorEnhanced;
    cfg
}

/// PB L2 accesses across Tile Cache budgets, for a small-PB and a
/// large-PB benchmark.
///
/// # Errors
///
/// Propagates store corruption from the scene lookups.
pub fn sweep(store: &ArtifactStore) -> TcorResult<Table> {
    let grid = TileGrid::new(1960, 768, 32);
    let all = suite();
    let picks: Vec<_> = ["CCS", "DDS"]
        .iter()
        .map(|a| all.iter().find(|b| &b.alias == a).unwrap())
        .collect();
    let mut t = Table::new(
        "sweep",
        "PB L2 accesses vs Tile Cache budget (baseline and TCOR)",
        &[
            "size_kib",
            "ccs_baseline",
            "ccs_tcor",
            "dds_baseline",
            "dds_tcor",
        ],
    );
    let scenes: Vec<_> = picks
        .iter()
        .map(|b| calibrated_scene(store, b, &grid))
        .collect::<TcorResult<_>>()?;
    for kib in [32u64, 48, 64, 96, 128, 192, 256] {
        let mut row = vec![kib.to_string()];
        for (b, cal) in picks.iter().zip(&scenes) {
            let scene = &cal.scene;
            let rp = b.raster_params();
            let base = BaselineSystem::new(baseline_cfg(kib).with_raster(rp)).run_frame(scene);
            let tcor = TcorSystem::new(tcor_cfg(kib).with_raster(rp)).run_frame(scene);
            row.push(base.pb_l2_accesses().to_string());
            row.push(tcor.pb_l2_accesses().to_string());
        }
        t.push_row(row);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_preserve_budget() {
        for kib in [32u64, 64, 128] {
            assert_eq!(baseline_cfg(kib).gpu.tile_cache.total_bytes(), kib << 10);
            assert_eq!(tcor_cfg(kib).gpu.tile_cache.total_bytes(), kib << 10);
        }
    }

    #[test]
    fn tcor_traffic_falls_with_budget() {
        // One benchmark, two budgets: more Attribute Cache, less traffic.
        let grid = TileGrid::new(1960, 768, 32);
        let b = suite().into_iter().find(|b| b.alias == "GTr").unwrap();
        let scene = tcor_workloads::generate_scene(&b, &grid);
        let rp = b.raster_params();
        let small = TcorSystem::new(tcor_cfg(32).with_raster(rp)).run_frame(&scene);
        let big = TcorSystem::new(tcor_cfg(128).with_raster(rp)).run_frame(&scene);
        assert!(big.pb_l2_accesses() <= small.pb_l2_accesses());
    }
}
