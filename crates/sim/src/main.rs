//! The `tcor-sim` binary: regenerate any table or figure of the paper.
//!
//! ```text
//! tcor-sim <experiment>...     run specific experiments (fig1, table2, …)
//! tcor-sim all                 run everything in paper order
//! tcor-sim --list              list experiment ids
//! tcor-sim all --csv DIR       also write one CSV per table into DIR
//! tcor-sim trace <alias> FILE  export a benchmark's PB trace as CSV
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use tcor_sim::{run_experiment, run_suite, EXPERIMENTS};

fn usage() {
    eprintln!("usage: tcor-sim <experiment>... | all [--csv DIR] [--list]");
    eprintln!("       tcor-sim trace <alias> <file>   export a PB trace as CSV");
    eprintln!("experiments: {}", EXPERIMENTS.join(", "));
}

/// `tcor-sim trace <alias> <file>`: export the primitive-granularity
/// Parameter Buffer trace of one Table II benchmark for external tools.
fn export_trace(alias: &str, path: &str) -> ExitCode {
    use tcor_common::{TileGrid, Traversal};
    let Some(profile) = tcor_workloads::suite().into_iter().find(|b| b.alias == alias) else {
        eprintln!("unknown benchmark `{alias}`");
        return ExitCode::FAILURE;
    };
    let grid = TileGrid::new(1960, 768, 32);
    let order = Traversal::ZOrder.order(&grid);
    let scene = tcor_workloads::generate_scene(&profile, &grid);
    let frame = tcor_gpu::bin_scene(&scene, &grid, &order);
    let trace = tcor_workloads::primitive_trace(&frame.binned, &order);
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = tcor_cache::trace::write_csv(&trace, std::io::BufWriter::new(file)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} accesses to {path}", trace.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        return match (args.get(1), args.get(2)) {
            (Some(alias), Some(path)) => export_trace(alias, path),
            _ => {
                usage();
                ExitCode::FAILURE
            }
        };
    }
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return ExitCode::SUCCESS;
            }
            "--csv" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                    None => {
                        usage();
                        return ExitCode::FAILURE;
                    }
                }
            }
            "all" => ids.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            other if EXPERIMENTS.contains(&other) => ids.push(other.to_string()),
            other => {
                eprintln!("unknown experiment `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    // Compute the expensive full-system suite once if any experiment
    // needs it.
    let needs_suite = ids.iter().any(|id| {
        !matches!(
            id.as_str(),
            "table1" | "fig1" | "fig10" | "fig11" | "fig12" | "fig13" | "fig13x" | "ablation"
                | "scaling" | "sweep" | "traversal"
        )
    });
    let suite = if needs_suite {
        eprintln!("running the full-system benchmark suite (deterministic)...");
        Some(run_suite())
    } else {
        None
    };

    for id in &ids {
        for table in run_experiment(id, suite.as_ref()) {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                if let Err(e) = table.write_csv(dir) {
                    eprintln!("failed to write {}/{}.csv: {e}", dir.display(), table.id);
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
