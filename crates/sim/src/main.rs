//! The `tcor-sim` binary: regenerate any table or figure of the paper.
//!
//! ```text
//! tcor-sim <experiment>...       run specific experiments (fig1, table2, …)
//! tcor-sim all                   run everything in paper order
//! tcor-sim --list                list experiment ids
//! tcor-sim all --csv DIR         also write one CSV per table into DIR
//! tcor-sim all --jobs N          run on N worker threads (default: all cores)
//! tcor-sim all --serial          reference single-thread path
//! tcor-sim all --check           compare against results/golden, exit 1 on drift
//! tcor-sim all --update-golden   (re)record the golden results
//! tcor-sim trace <alias> FILE    export a benchmark's PB trace as CSV
//! tcor-sim bench-runner          time serial vs parallel, write BENCH_runner.json
//! ```
//!
//! Every run writes a JSON-lines telemetry log (per-job wall time,
//! simulated counters) to `results/telemetry.jsonl` and prints a
//! summary of the slowest jobs to stderr.

use std::path::PathBuf;
use std::process::ExitCode;
use tcor_runner::{default_workers, GoldenStatus, GoldenStore, Json, Telemetry};
use tcor_sim::orchestrate::ExecMode;
use tcor_sim::{run_experiments, Table, EXPERIMENTS};

fn usage() {
    eprintln!(
        "usage: tcor-sim <experiment>... | all \
         [--csv DIR] [--jobs N] [--serial] [--check] [--update-golden] [--golden DIR] \
         [--telemetry FILE] [--list]"
    );
    eprintln!("       tcor-sim trace <alias> <file>   export a PB trace as CSV");
    eprintln!("       tcor-sim bench-runner [FILE]    serial-vs-parallel timing -> FILE");
    eprintln!("experiments: {}", EXPERIMENTS.join(", "));
}

/// `tcor-sim trace <alias> <file>`: export the primitive-granularity
/// Parameter Buffer trace of one Table II benchmark for external tools.
fn export_trace(alias: &str, path: &str) -> ExitCode {
    use tcor_common::{TileGrid, Traversal};
    let Some(profile) = tcor_workloads::suite()
        .into_iter()
        .find(|b| b.alias == alias)
    else {
        eprintln!("unknown benchmark `{alias}`");
        return ExitCode::FAILURE;
    };
    let grid = TileGrid::new(1960, 768, 32);
    let order = Traversal::ZOrder.order(&grid);
    let scene = tcor_workloads::generate_scene(&profile, &grid);
    let frame = tcor_gpu::bin_scene(&scene, &grid, &order);
    let trace = tcor_workloads::primitive_trace(&frame.binned, &order);
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = tcor_cache::trace::write_csv(&trace, std::io::BufWriter::new(file)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} accesses to {path}", trace.len());
    ExitCode::SUCCESS
}

/// Runs the whole experiment set once and returns the rendered output
/// plus per-experiment wall times, for [`bench_runner`].
fn timed_full_run(mode: ExecMode) -> (String, Vec<(String, f64)>, f64) {
    let ids: Vec<String> = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    let store = tcor_runner::ArtifactStore::new();
    let telemetry = Telemetry::new();
    let results = run_experiments(&ids, mode, &store, &telemetry).expect("all ids are valid");
    let wall_ms = telemetry.elapsed_ms();
    let mut rendered = String::new();
    for (_, tables) in &results {
        for t in tables {
            rendered.push_str(&t.render());
        }
    }
    let per_exp: Vec<(String, f64)> = telemetry
        .records()
        .into_iter()
        .filter(|r| r.label.starts_with("exp:"))
        .map(|r| (r.label["exp:".len()..].to_string(), r.wall_ms))
        .collect();
    (rendered, per_exp, wall_ms)
}

/// `tcor-sim bench-runner [FILE]`: run the full experiment set serially
/// and in parallel, assert bit-identical output, and record the timings
/// as machine-readable JSON.
fn bench_runner(path: &str) -> ExitCode {
    let cores = default_workers();
    eprintln!("bench-runner: serial pass...");
    let (serial_out, serial_exps, serial_ms) = timed_full_run(ExecMode::Serial);
    eprintln!("bench-runner: parallel pass ({cores} workers)...");
    let (parallel_out, parallel_exps, parallel_ms) = timed_full_run(ExecMode::Parallel(cores));
    if serial_out != parallel_out {
        eprintln!("bench-runner: FATAL: parallel output differs from serial output");
        return ExitCode::FAILURE;
    }
    let exps = |pairs: &[(String, f64)]| {
        Json::Obj(
            pairs
                .iter()
                .map(|(id, ms)| (id.clone(), Json::Float(*ms)))
                .collect(),
        )
    };
    let doc = Json::obj([
        ("bench", Json::str("runner")),
        ("cores", Json::UInt(cores as u64)),
        ("serial_ms", Json::Float(serial_ms)),
        ("parallel_ms", Json::Float(parallel_ms)),
        ("speedup", Json::Float(serial_ms / parallel_ms)),
        ("outputs_identical", Json::Bool(true)),
        ("serial_experiment_ms", exps(&serial_exps)),
        ("parallel_experiment_ms", exps(&parallel_exps)),
    ]);
    if let Err(e) = std::fs::write(path, doc.render() + "\n") {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench-runner: serial {serial_ms:.0}ms, parallel {parallel_ms:.0}ms on {cores} cores \
         ({:.2}x), identical output -> {path}",
        serial_ms / parallel_ms
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        return match (args.get(1), args.get(2)) {
            (Some(alias), Some(path)) => export_trace(alias, path),
            _ => {
                usage();
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("bench-runner") {
        return bench_runner(args.get(1).map_or("BENCH_runner.json", String::as_str));
    }

    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut golden_dir = PathBuf::from("results/golden");
    let mut telemetry_path = PathBuf::from("results/telemetry.jsonl");
    let mut mode = ExecMode::Parallel(default_workers());
    let mut check = false;
    let mut update_golden = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return ExitCode::SUCCESS;
            }
            "--serial" => mode = ExecMode::Serial,
            "--check" => check = true,
            "--update-golden" => update_golden = true,
            flag @ ("--csv" | "--jobs" | "--golden" | "--telemetry") => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("{flag} needs a value");
                    usage();
                    return ExitCode::FAILURE;
                };
                match flag {
                    "--csv" => csv_dir = Some(PathBuf::from(value)),
                    "--golden" => golden_dir = PathBuf::from(value),
                    "--telemetry" => telemetry_path = PathBuf::from(value),
                    _ => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => mode = ExecMode::Parallel(n),
                        _ => {
                            eprintln!("--jobs needs a positive integer, got `{value}`");
                            return ExitCode::FAILURE;
                        }
                    },
                }
            }
            "all" => ids.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    let store = tcor_runner::ArtifactStore::new();
    let telemetry = Telemetry::new();
    let results = match run_experiments(&ids, mode, &store, &telemetry) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let tables: Vec<&Table> = results.iter().flat_map(|(_, ts)| ts).collect();
    let golden = GoldenStore::new(&golden_dir);
    let mut drifted = 0usize;
    for table in &tables {
        println!("{}", table.render());
        if let Some(dir) = &csv_dir {
            if let Err(e) = table.write_csv(dir) {
                eprintln!("failed to write {}/{}.csv: {e}", dir.display(), table.id);
                return ExitCode::FAILURE;
            }
        }
        if update_golden {
            if let Err(e) = golden.update(&table.id, &table.to_csv()) {
                eprintln!("failed to record golden {}: {e}", table.id);
                return ExitCode::FAILURE;
            }
        } else if check {
            match golden.check(&table.id, &table.to_csv()) {
                GoldenStatus::Match => eprintln!("golden {}: ok", table.id),
                GoldenStatus::Missing => {
                    drifted += 1;
                    eprintln!(
                        "golden {}: MISSING (run with --update-golden to record)",
                        table.id
                    );
                }
                GoldenStatus::Corrupt => {
                    drifted += 1;
                    eprintln!(
                        "golden {}: CORRUPT ({}/{}.csv does not match MANIFEST.txt)",
                        table.id,
                        golden_dir.display(),
                        table.id
                    );
                }
                GoldenStatus::Mismatch {
                    line,
                    expected,
                    actual,
                } => {
                    drifted += 1;
                    eprintln!("golden {}: MISMATCH at line {line}", table.id);
                    eprintln!("  golden:  {expected}");
                    eprintln!("  current: {actual}");
                }
            }
        }
    }
    if update_golden {
        eprintln!(
            "recorded {} goldens under {}",
            tables.len(),
            golden_dir.display()
        );
    }

    if let Err(e) = telemetry.save_jsonl(&telemetry_path) {
        eprintln!("failed to write {}: {e}", telemetry_path.display());
    } else {
        eprintln!("telemetry: {}", telemetry_path.display());
    }
    eprint!("{}", telemetry.summary(5));
    eprintln!(
        "artifact store: {} computed, {} shared",
        store.computes(),
        store.hits()
    );

    if check && drifted > 0 {
        eprintln!("--check: {drifted} table(s) drifted from the goldens");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
