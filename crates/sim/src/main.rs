//! The `tcor-sim` binary: regenerate any table or figure of the paper.
//!
//! ```text
//! tcor-sim <experiment>...       run specific experiments (fig1, table2, …)
//! tcor-sim all                   run everything in paper order
//! tcor-sim --list                list experiment ids
//! tcor-sim all --csv DIR         also write one CSV per table into DIR
//! tcor-sim all --jobs N          run on N worker threads (default: all cores)
//! tcor-sim all --serial          reference single-thread path
//! tcor-sim all --check           compare against results/golden, exit 4 on drift
//! tcor-sim all --update-golden   (re)record the golden results
//! tcor-sim all --job-timeout MS  flag jobs running longer than MS milliseconds
//! tcor-sim all --inject-faults S deterministically inject faults from seed S
//! tcor-sim all --resume          re-run only experiments the run manifest
//!                                records as failed, skipped or unattempted
//! tcor-sim all --audit           check metric-conservation invariants over
//!                                every suite cell; violations exit 5
//! tcor-sim --trace-out FILE      export a Chrome trace of one traced frame
//! tcor-sim trace <alias> FILE    export a benchmark's PB trace as CSV
//! tcor-sim bench-runner          time serial vs parallel, write BENCH_runner.json
//! tcor-sim bench-misscurves      time replay vs single-pass miss-curve engines,
//!                                write BENCH_misscurves.json
//! tcor-sim serve                 stand up the result-serving daemon on loopback
//! tcor-sim cell <alias> <cfg>    print one cell report as JSON (the serve
//!                                byte-parity reference)
//! tcor-sim serve-req ADDR M P    one-shot HTTP client (CI probe; exit 6 on
//!                                a non-2xx answer)
//! tcor-sim bench-serve           drive a loopback daemon cold/warm/burst,
//!                                write BENCH_serve.json
//! tcor-sim bench-load            open-loop concurrent load generator: warm
//!                                latency tiers (1..2048 keep-alive conns)
//!                                plus shedding under overload, merged into
//!                                BENCH_serve.json
//! tcor-sim chaos                 torture a child daemon under seeded fault
//!                                injection and kill/restart cycles
//! ```
//!
//! `--audit` re-derives every headline counter from two independent
//! counting sites (see `tcor-obs`) after the requested experiments ran;
//! any imbalance is corruption (exit 5). `--inject-audit-fault` tampers
//! one counter copy first — the CI negative test that proves the audit
//! can fail. `--trace-out` runs one additional traced frame (first
//! benchmark, full TCOR, 64 KiB) and writes its Tiling Engine timeline
//! as Chrome trace-event JSON for `chrome://tracing` / Perfetto; it can
//! run standalone, with no experiments requested.
//!
//! Every run streams a JSON-lines telemetry log (per-job wall time,
//! simulated counters, failures) to `results/telemetry.jsonl` — flushed
//! per event, so a crashed run leaves a readable prefix — and records a
//! run manifest (`results/run-manifest.txt`) that `--resume` consults.
//!
//! Exit codes: `0` success, `1` I/O error, `2` configuration error,
//! `3` experiment/cell failure, `4` golden drift, `5` corruption
//! (tampered golden or manifest).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use tcor_common::{fxhash64, hash_hex, TcorError};
use tcor_runner::{
    default_workers, FaultPlan, GoldenStatus, GoldenStore, Json, RunManifest, RunStatus, Telemetry,
};
use tcor_sim::orchestrate::ExecMode;
use tcor_sim::{
    run_experiments, run_experiments_strict, ExperimentOutcome, RunOptions, EXPERIMENTS,
};

/// Exit code for golden drift (`--check` found mismatching tables).
const EXIT_DRIFT: u8 = 4;
/// Exit code for corruption (tampered golden or malformed manifest).
const EXIT_CORRUPTION: u8 = 5;
/// Exit code for a failed or skipped experiment.
const EXIT_CELL_FAILURE: u8 = 3;

fn usage() {
    eprintln!(
        "usage: tcor-sim <experiment>... | all \
         [--csv DIR] [--jobs N] [--serial] [--check] [--update-golden] [--golden DIR] \
         [--telemetry FILE] [--job-timeout MS] [--inject-faults SEED] [--resume] \
         [--manifest FILE] [--audit] [--inject-audit-fault] [--trace-out FILE] [--list]"
    );
    eprintln!("       tcor-sim --trace-out <file>     export a Chrome trace of one traced frame");
    eprintln!("       tcor-sim trace <alias> <file>   export a PB trace as CSV");
    eprintln!("       tcor-sim bench-runner [FILE]    serial-vs-parallel timing -> FILE");
    eprintln!(
        "       tcor-sim bench-misscurves [FILE] [--gate] replay-vs-single-pass timing -> FILE \
         (--gate: fail if any speedup < 1.0 or output drifts)"
    );
    eprintln!(
        "       tcor-sim serve [--port N] [--workers K] [--event-threads E] [--queue-depth D] \
         [--cache-cap C] \
         [--deadline-ms MS] [--cache-dir DIR] [--cache-disk-bytes B] \
         [--telemetry FILE] [--serve-trace FILE] [--port-file FILE] \
         [--breaker-threshold N] [--breaker-cooldown-ms MS] \
         [--fault-seed S] [--fault-spec SPEC] \
         [--stream-sessions N] [--stream-session-bytes B] [--stream-session-blocks K] \
         [--stream-ttl-secs S]"
    );
    eprintln!(
        "       tcor-sim stream <addr> (--workload ALIAS | --trace-csv FILE | --probe-oversize) \
         [--label L] [--policy opt|lru] [--chunk-accesses N]  chunked trace upload -> final curve"
    );
    eprintln!(
        "       tcor-sim bench-stream [FILE] [--smoke] [--seed S]  streaming ingest + live \
         snapshot timings -> FILE"
    );
    eprintln!(
        "       tcor-sim cell <alias> <config> [--cache-dir DIR]  print one cell report as JSON"
    );
    eprintln!(
        "       tcor-sim serve-req <addr> <method> <path> [body] [--expect-cache TIER] \
         [--retries N] [--backoff-ms MS]  one-shot HTTP client"
    );
    eprintln!(
        "       tcor-sim bench-serve [FILE]     cold/warm-mem/warm-disk serving timings -> FILE"
    );
    eprintln!(
        "       tcor-sim bench-load [FILE] [--smoke] [--seed S]  open-loop concurrent load \
         generator: warm latency tiers + shedding under overload, merged into FILE"
    );
    eprintln!(
        "       tcor-sim chaos [--seed S] [--fault-spec SPEC] [--kill-every N] [--rounds R] \
         [--experiments a,b] [--expect-breaker] [--retries N] [--backoff-ms MS] \
         [--cache-cap C] [--breaker-threshold N] [--breaker-cooldown-ms MS] \
         [--bench-out FILE]  torture the daemon under seeded faults/kills"
    );
    eprintln!("experiments: {}", EXPERIMENTS.join(", "));
}

fn exit_for(e: &TcorError) -> ExitCode {
    ExitCode::from(e.kind().exit_code())
}

/// `tcor-sim trace <alias> <file>`: export the primitive-granularity
/// Parameter Buffer trace of one Table II benchmark for external tools.
fn export_trace(alias: &str, path: &str) -> ExitCode {
    use tcor_common::{TileGrid, Traversal};
    let Some(profile) = tcor_workloads::suite()
        .into_iter()
        .find(|b| b.alias == alias)
    else {
        eprintln!("unknown benchmark `{alias}`");
        return ExitCode::from(2);
    };
    let grid = TileGrid::new(1960, 768, 32);
    let order = Traversal::ZOrder.order(&grid);
    let scene = tcor_workloads::generate_scene(&profile, &grid);
    let frame = tcor_gpu::bin_scene(&scene, &grid, &order);
    let trace = tcor_workloads::primitive_trace(&frame.binned, &order);
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = tcor_cache::trace::write_csv(&trace, std::io::BufWriter::new(file)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} accesses to {path}", trace.len());
    ExitCode::SUCCESS
}

/// `--audit`: re-check every conservation invariant over all 60 suite
/// cells (memoized — cells already computed by the experiments are
/// reused). With `inject_fault`, one cell's counter *copy* is tampered
/// first, so CI can prove the audit actually fails on imbalance; the
/// simulator's own state is never touched. Returns the violation count.
fn run_audit(
    store: &tcor_runner::ArtifactStore,
    inject_fault: bool,
) -> tcor_common::TcorResult<usize> {
    let suite = tcor_sim::orchestrate::suite_from_store(store)?;
    let mut violations = Vec::new();
    let mut cells = 0usize;
    for b in &suite.benchmarks {
        for (cfg, report) in b.cells() {
            cells += 1;
            violations.extend(tcor_obs::audit_report(
                &format!("{}/{cfg}", b.profile.alias),
                report,
            ));
        }
    }
    if inject_fault {
        let b = &suite.benchmarks[0];
        let mut tampered = b.tcor64.clone();
        // A simulated bookkeeping bug: one hit recorded without a probe.
        tampered.l2_stats.read_hits += 1;
        violations.extend(tcor_obs::audit_report(
            &format!("{}/tcor64 (injected fault)", b.profile.alias),
            &tampered,
        ));
    }
    for v in &violations {
        eprintln!("audit: VIOLATION {v}");
    }
    eprintln!(
        "audit: {cells} cells checked, {} violation(s)",
        violations.len()
    );
    Ok(violations.len())
}

/// `--trace-out FILE`: run one traced frame (first Table II benchmark,
/// full TCOR at the 64 KiB budget) and write its Tiling Engine timeline
/// as Chrome trace-event JSON.
fn export_chrome_trace(
    store: &tcor_runner::ArtifactStore,
    path: &std::path::Path,
) -> tcor_common::TcorResult<()> {
    use tcor::{SystemConfig, TcorSystem};
    let grid = tcor_sim::orchestrate::paper_grid();
    let profile = tcor_workloads::suite()[0];
    let cal = tcor_sim::orchestrate::calibrated_scene(store, &profile, &grid)?;
    let cfg = SystemConfig::paper_tcor_64k().with_raster(profile.raster_params());
    let (report, trace) = TcorSystem::new(cfg).run_frame_traced(&cal.scene);
    tcor_common::write_atomic(path, tcor_obs::chrome_trace_json(&trace).as_bytes())?;
    eprintln!(
        "trace: wrote {} events ({}/tcor64, {} cycles) to {}",
        trace.events().len(),
        profile.alias,
        report.plb_cycles + report.fetch_cycles,
        path.display()
    );
    Ok(())
}

/// Rendered output, per-experiment wall times, total wall time.
type TimedRun = (String, Vec<(String, f64)>, f64);

/// Runs the whole experiment set once and returns the rendered output
/// plus per-experiment wall times, for [`bench_runner`].
fn timed_full_run(mode: ExecMode) -> tcor_common::TcorResult<TimedRun> {
    let ids: Vec<String> = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    let store = tcor_runner::ArtifactStore::new();
    let telemetry = Telemetry::new();
    let results = run_experiments_strict(&ids, mode, &store, &telemetry)?;
    let wall_ms = telemetry.elapsed_ms();
    let mut rendered = String::new();
    for (_, tables) in &results {
        for t in tables {
            rendered.push_str(&t.render());
        }
    }
    let per_exp: Vec<(String, f64)> = telemetry
        .records()
        .into_iter()
        .filter(|r| r.label.starts_with("exp:"))
        .map(|r| (r.label["exp:".len()..].to_string(), r.wall_ms))
        .collect();
    Ok((rendered, per_exp, wall_ms))
}

/// `tcor-sim bench-runner [FILE]`: run the full experiment set serially
/// and in parallel, assert bit-identical output, and record the timings
/// as machine-readable JSON.
fn bench_runner(path: &str) -> ExitCode {
    let cores = default_workers();
    eprintln!("bench-runner: serial pass...");
    let (serial_out, serial_exps, serial_ms) = match timed_full_run(ExecMode::Serial) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-runner: serial pass failed: {e}");
            return exit_for(&e);
        }
    };
    eprintln!("bench-runner: parallel pass ({cores} workers)...");
    let (parallel_out, parallel_exps, parallel_ms) = match timed_full_run(ExecMode::Parallel(cores))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench-runner: parallel pass failed: {e}");
            return exit_for(&e);
        }
    };
    if serial_out != parallel_out {
        eprintln!("bench-runner: FATAL: parallel output differs from serial output");
        return ExitCode::FAILURE;
    }
    let exps = |pairs: &[(String, f64)]| {
        Json::Obj(
            pairs
                .iter()
                .map(|(id, ms)| (id.clone(), Json::Float(*ms)))
                .collect(),
        )
    };
    let doc = Json::obj([
        ("bench", Json::str("runner")),
        ("cores", Json::UInt(cores as u64)),
        ("serial_ms", Json::Float(serial_ms)),
        ("parallel_ms", Json::Float(parallel_ms)),
        ("speedup", Json::Float(serial_ms / parallel_ms)),
        ("outputs_identical", Json::Bool(true)),
        ("serial_experiment_ms", exps(&serial_exps)),
        ("parallel_experiment_ms", exps(&parallel_exps)),
    ]);
    if let Err(e) = std::fs::write(path, doc.render() + "\n") {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench-runner: serial {serial_ms:.0}ms, parallel {parallel_ms:.0}ms on {cores} cores \
         ({:.2}x), identical output -> {path}",
        serial_ms / parallel_ms
    );
    ExitCode::SUCCESS
}

/// `tcor-sim bench-misscurves [FILE] [--gate]`: run every miss-curve
/// experiment under the legacy per-capacity replay engine and the
/// single-pass engine against one shared store, assert the rendered
/// tables are bit-identical, and record both wall times (plus suite
/// trace-pass counts) as machine-readable JSON. With `--gate`, exit
/// with failure if any experiment's single-pass speedup drops below
/// 1.0× — the engine's cost model must never be a regression.
fn bench_misscurves(path: &str, gate: bool) -> ExitCode {
    use std::time::Instant;
    use tcor_sim::misscurves::{self, CurveEngine};

    let store = tcor_runner::ArtifactStore::new();
    // The bench runs the engine the way a parallel `all` run would:
    // sharded set dispatch across the machine's cores.
    if let Err(e) = misscurves::set_engine_workers(&store, default_workers()) {
        eprintln!("bench-misscurves: store setup failed: {e}");
        return exit_for(&e);
    }
    // Trace construction (and annotation) is shared by both engines;
    // build it up front so neither side pays for it.
    if let Err(e) = misscurves::suite_traces(&store) {
        eprintln!("bench-misscurves: trace build failed: {e}");
        return exit_for(&e);
    }
    type Rendered = tcor_common::TcorResult<(String, u64)>;
    type EngineFn<'a> = Box<dyn Fn(CurveEngine) -> Rendered + 'a>;
    let experiments: Vec<(&str, EngineFn)> = vec![
        (
            "fig1",
            Box::new(|e| misscurves::fig1_engine(&store, e).map(|(t, p)| (t.render(), p))),
        ),
        (
            "fig11",
            Box::new(|e| misscurves::fig11_engine(&store, e).map(|(t, p)| (t.render(), p))),
        ),
        (
            "fig12",
            Box::new(|e| {
                misscurves::fig12_engine(&store, e)
                    .map(|(ts, p)| (ts.iter().map(tcor_sim::Table::render).collect(), p))
            }),
        ),
        (
            "fig13",
            Box::new(|e| misscurves::fig13_engine(&store, e).map(|(t, p)| (t.render(), p))),
        ),
        (
            "fig13x",
            Box::new(|e| misscurves::fig13x_engine(&store, e).map(|(t, p)| (t.render(), p))),
        ),
    ];
    let mut per_exp = Vec::new();
    let (mut replay_total, mut engine_total) = (0.0f64, 0.0f64);
    let mut all_identical = true;
    let mut gate_failures: Vec<String> = Vec::new();
    // Interleaved best-of-N timing: each rep times replay then
    // single-pass back to back, and each engine keeps its minimum, so
    // background load drifting across the run hits both engines alike
    // instead of flipping the regression gate on a few-percent margin.
    const REPS: usize = 3;
    for (id, run) in &experiments {
        let mut replay_ms = f64::INFINITY;
        let mut engine_ms = f64::INFINITY;
        let mut outs = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let replay = match run(CurveEngine::Replay) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bench-misscurves: {id} replay failed: {e}");
                    return exit_for(&e);
                }
            };
            replay_ms = replay_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            let t0 = Instant::now();
            let engine = match run(CurveEngine::SinglePass) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bench-misscurves: {id} single-pass failed: {e}");
                    return exit_for(&e);
                }
            };
            engine_ms = engine_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            outs = Some((replay, engine));
        }
        let ((replay_out, replay_passes), (engine_out, engine_passes)) = outs.expect("REPS > 0");
        let identical = replay_out == engine_out;
        all_identical &= identical;
        if !identical {
            eprintln!("bench-misscurves: FATAL: {id} single-pass output differs from replay");
            gate_failures.push(format!("{id}: output drift"));
        }
        let speedup = replay_ms / engine_ms;
        if speedup < 1.0 {
            gate_failures.push(format!("{id}: {speedup:.2}x < 1.00x"));
        }
        replay_total += replay_ms;
        engine_total += engine_ms;
        eprintln!(
            "bench-misscurves: {id} replay {replay_ms:.1}ms ({replay_passes} passes), \
             single-pass {engine_ms:.1}ms ({engine_passes} passes), {:.2}x",
            replay_ms / engine_ms
        );
        per_exp.push((
            id.to_string(),
            Json::obj([
                ("replay_ms", Json::Float(replay_ms)),
                ("single_pass_ms", Json::Float(engine_ms)),
                ("speedup", Json::Float(replay_ms / engine_ms)),
                ("replay_passes", Json::UInt(replay_passes)),
                ("single_pass_passes", Json::UInt(engine_passes)),
                ("outputs_identical", Json::Bool(identical)),
            ]),
        ));
    }
    let doc = Json::obj([
        ("bench", Json::str("misscurves")),
        ("replay_ms", Json::Float(replay_total)),
        ("single_pass_ms", Json::Float(engine_total)),
        ("speedup", Json::Float(replay_total / engine_total)),
        ("outputs_identical", Json::Bool(all_identical)),
        ("experiments", Json::Obj(per_exp)),
    ]);
    if let Err(e) = std::fs::write(path, doc.render() + "\n") {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench-misscurves: replay {replay_total:.0}ms, single-pass {engine_total:.0}ms \
         ({:.2}x), {} -> {path}",
        replay_total / engine_total,
        if all_identical {
            "identical output"
        } else {
            "OUTPUT DRIFT"
        }
    );
    if gate && !gate_failures.is_empty() {
        eprintln!(
            "bench-misscurves: GATE FAILED: {}",
            gate_failures.join("; ")
        );
        return ExitCode::FAILURE;
    }
    if all_identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `tcor-sim serve`: stand up the result-serving daemon on loopback
/// and block until `POST /admin/shutdown` or SIGINT/SIGTERM drains it.
fn serve_cmd(args: &[String]) -> ExitCode {
    use std::sync::Arc;
    let mut cfg = tcor_serve::ServeConfig::default();
    let mut telemetry_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut port_file: Option<PathBuf> = None;
    let mut fault_seed: u64 = 0;
    let mut fault_spec: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("{flag} needs a value");
            usage();
            return ExitCode::from(2);
        };
        let bad = |what: &str| {
            eprintln!("{flag} needs {what}, got `{value}`");
            ExitCode::from(2)
        };
        match flag {
            "--port" => match value.parse::<u16>() {
                Ok(p) => cfg.port = p,
                Err(_) => return bad("a port number"),
            },
            "--workers" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.workers = n,
                _ => return bad("a positive integer"),
            },
            "--event-threads" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.event_threads = n,
                _ => return bad("a positive integer"),
            },
            "--queue-depth" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.queue_depth = n,
                _ => return bad("a positive integer"),
            },
            "--cache-cap" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.cache_cap = n,
                _ => return bad("a positive integer"),
            },
            "--deadline-ms" => match value.parse::<u64>() {
                Ok(ms) if ms >= 1 => cfg.deadline = Duration::from_millis(ms),
                _ => return bad("milliseconds >= 1"),
            },
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(value)),
            "--cache-disk-bytes" => match value.parse::<u64>() {
                Ok(n) if n >= 1 => cfg.cache_disk_bytes = n,
                _ => return bad("a positive byte count"),
            },
            "--telemetry" => telemetry_path = Some(PathBuf::from(value)),
            "--serve-trace" => trace_path = Some(PathBuf::from(value)),
            "--port-file" => port_file = Some(PathBuf::from(value)),
            "--breaker-threshold" => match value.parse::<u32>() {
                Ok(n) if n >= 1 => cfg.breaker_threshold = n,
                _ => return bad("a positive error count"),
            },
            "--breaker-cooldown-ms" => match value.parse::<u64>() {
                Ok(ms) if ms >= 1 => cfg.breaker_cooldown = Duration::from_millis(ms),
                _ => return bad("milliseconds >= 1"),
            },
            "--fault-seed" => match value.parse::<u64>() {
                Ok(seed) => fault_seed = seed,
                Err(_) => return bad("an integer seed"),
            },
            "--fault-spec" => fault_spec = Some(value.clone()),
            "--stream-sessions" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.stream.max_sessions = n,
                _ => return bad("a positive integer"),
            },
            "--stream-session-bytes" => match value.parse::<u64>() {
                Ok(n) if n >= 1 => cfg.stream.session_bytes = n,
                _ => return bad("a positive byte count"),
            },
            "--stream-session-blocks" => match value.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.stream.session_blocks = n,
                _ => return bad("a positive integer"),
            },
            "--stream-ttl-secs" => match value.parse::<u64>() {
                Ok(s) if s >= 1 => cfg.stream.ttl = Duration::from_secs(s),
                _ => return bad("seconds >= 1"),
            },
            other => {
                eprintln!("unknown serve flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
        i += 2;
    }
    // Arm the process-wide injector before any plane can touch disk or
    // sockets: the chaos harness forwards its schedule through these
    // flags, and the daemon runs it deterministically.
    if let Some(spec) = &fault_spec {
        match tcor_common::FaultInjector::parse(fault_seed, spec) {
            Ok(injector) => {
                eprintln!("tcor-serve: fault injector armed (seed {fault_seed}, `{spec}`)");
                tcor_common::fault::arm(injector);
            }
            Err(e) => {
                eprintln!("{e}");
                return exit_for(&e);
            }
        }
    }
    tcor_serve::signal::install();
    let telemetry = Arc::new(Telemetry::new());
    if let Some(path) = &telemetry_path {
        if let Err(e) = telemetry.stream_to(path) {
            eprintln!("telemetry streaming disabled: {e}");
        }
    }
    let (workers, depth, deadline) = (cfg.workers, cfg.queue_depth, cfg.deadline);
    // One tiered cache shared by the daemon's response path and the
    // backend's artifact persistence: results land on disk whichever
    // plane computed them, and a restart serves them back warm.
    let disk = cfg.cache_dir.clone().map(|dir| (dir, cfg.cache_disk_bytes));
    let persistent = disk.is_some();
    let cache: Arc<dyn tcor_pcache::ResultCache> =
        match tcor_pcache::TieredCache::open(cfg.cache_cap, disk) {
            Ok(c) => Arc::new(c.with_breaker_config(tcor_pcache::BreakerConfig {
                threshold: cfg.breaker_threshold,
                cooldown: cfg.breaker_cooldown,
            })),
            Err(e) => {
                eprintln!("{e}");
                return exit_for(&e);
            }
        };
    let backend = Arc::new(if persistent {
        tcor_sim::SimBackend::with_cache(Arc::clone(&cache))
    } else {
        tcor_sim::SimBackend::new()
    });
    let server =
        match tcor_serve::start_with_cache(cfg, backend, Some(Arc::clone(&telemetry)), cache) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return exit_for(&e);
            }
        };
    let addr = server.addr().to_string();
    // The bound address, machine-readable: stdout for humans and
    // scripts, `--port-file` for supervisors that started us with
    // `--port 0` and a detached stdout.
    println!("{addr}");
    let _ = std::io::Write::flush(&mut std::io::stdout());
    if let Some(path) = &port_file {
        if let Err(e) = tcor_common::write_atomic(path, addr.as_bytes()) {
            eprintln!("cannot write {}: {e}", path.display());
            server.stop();
            server.wait();
            return exit_for(&e);
        }
    }
    eprintln!(
        "tcor-serve: listening on {addr} ({workers} workers, queue depth {depth}, \
         deadline {}ms{})",
        deadline.as_millis(),
        if persistent { ", persistent cache" } else { "" }
    );
    let spans = server.wait();
    if let Some(path) = &trace_path {
        if let Err(e) =
            tcor_common::write_atomic(path, tcor_obs::serve_timeline_json(&spans).as_bytes())
        {
            eprintln!("cannot write {}: {e}", path.display());
            return exit_for(&e);
        }
        eprintln!(
            "tcor-serve: wrote {} request span(s) to {}",
            spans.len(),
            path.display()
        );
    }
    eprintln!("tcor-serve: drained after {} request(s), bye", spans.len());
    ExitCode::SUCCESS
}

/// `tcor-sim cell <alias> <config> [--cache-dir DIR [--cache-disk-bytes N]]`:
/// print one cell report as JSON — the same encoder the daemon uses,
/// so serve-vs-CLI byte parity is a `cmp`, not a claim. With
/// `--cache-dir` the result is persisted through (and served from) the
/// same disk tier the daemon uses: a CLI run warms the daemon and vice
/// versa.
fn cell_cmd(workload: &str, config: &str, rest: &[String]) -> ExitCode {
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_disk_bytes: u64 = 256 << 20;
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        let Some(value) = rest.get(i + 1) else {
            eprintln!("{flag} needs a value");
            usage();
            return ExitCode::from(2);
        };
        match flag {
            "--cache-dir" => cache_dir = Some(PathBuf::from(value)),
            "--cache-disk-bytes" => match value.parse::<u64>() {
                Ok(n) if n >= 1 => cache_disk_bytes = n,
                _ => {
                    eprintln!("--cache-disk-bytes needs a positive byte count, got `{value}`");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown cell flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
        i += 2;
    }
    let backend = match cache_dir {
        None => tcor_sim::SimBackend::new(),
        Some(dir) => match tcor_pcache::TieredCache::open(256, Some((dir, cache_disk_bytes))) {
            Ok(cache) => tcor_sim::SimBackend::with_cache(std::sync::Arc::new(cache)),
            Err(e) => {
                eprintln!("{e}");
                return exit_for(&e);
            }
        },
    };
    let call = tcor_serve::ApiCall::Cell {
        workload: workload.to_string(),
        config: config.to_string(),
    };
    match tcor_serve::Backend::call(&backend, &call) {
        Ok(body) => {
            print!("{}", body.body);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            exit_for(&e)
        }
    }
}

/// `tcor-sim serve-req <addr> <method> <path> [body]`: a dependency-free
/// one-shot HTTP client for CI probes. Prints the response body; any
/// non-2xx answer (or transport failure) exits with the serve code 6.
/// `--expect-cache TIER` additionally asserts the `X-Tcor-Cache`
/// response header (`mem`, `disk`, or `miss`) so CI can prove *where*
/// an answer came from, not just that one arrived.
fn serve_req(args: &[String]) -> ExitCode {
    let mut expect_cache: Option<String> = None;
    let mut retries: u32 = 0;
    let mut backoff_ms: u64 = 100;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--expect-cache" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--expect-cache needs a value (mem, disk, or miss)");
                    return ExitCode::from(2);
                };
                expect_cache = Some(value.clone());
                i += 2;
            }
            "--retries" => {
                let Some(Ok(n)) = args.get(i + 1).map(|v| v.parse::<u32>()) else {
                    eprintln!("--retries needs a retry count");
                    return ExitCode::from(2);
                };
                retries = n;
                i += 2;
            }
            "--backoff-ms" => {
                let Some(Ok(ms)) = args.get(i + 1).map(|v| v.parse::<u64>()) else {
                    eprintln!("--backoff-ms needs milliseconds");
                    return ExitCode::from(2);
                };
                backoff_ms = ms.max(1);
                i += 2;
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let (Some(addr), Some(method), Some(path)) =
        (positional.first(), positional.get(1), positional.get(2))
    else {
        usage();
        return ExitCode::from(2);
    };
    let body = positional.get(3).map(|s| s.as_str());
    let policy = tcor_serve::RetryPolicy::new(retries, Duration::from_millis(backoff_ms), 0);
    match tcor_serve::http_request_retrying(
        addr,
        method,
        path,
        body,
        Duration::from_secs(120),
        &policy,
    ) {
        Ok((reply, attempts)) => {
            if attempts > 0 {
                eprintln!("serve-req: {method} {path} took {attempts} retr(ies)");
            }
            print!("{}", reply.body);
            if !(200..300).contains(&reply.status) {
                eprintln!("serve-req: {method} {path} -> {}", reply.status);
                return ExitCode::from(tcor_common::ErrorKind::Serve.exit_code());
            }
            if let Some(want) = expect_cache {
                let got = reply.header("x-tcor-cache").unwrap_or("<absent>");
                if got != want {
                    eprintln!("serve-req: {method} {path} X-Tcor-Cache = {got}, expected {want}");
                    return ExitCode::from(tcor_common::ErrorKind::Serve.exit_code());
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            exit_for(&e)
        }
    }
}

/// `tcor-sim bench-serve [FILE]`: drive an in-process daemon through a
/// cold phase (every target computes), a warm phase (every target is a
/// memory-tier hit, asserted byte-identical to cold), and a coalescing
/// burst (8 concurrent clients on one uncached key); then *restart* the
/// daemon over the same persistent cache directory and measure the
/// disk-tier first hits — three latency tiers (cold / warm-disk /
/// warm-mem) recorded as machine-readable JSON.
fn bench_serve(path: &str) -> ExitCode {
    use std::sync::Arc;
    use std::time::Instant;
    use tcor_serve::percentile;

    let cache_dir = std::env::temp_dir().join(format!("tcor-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let backend = Arc::new(tcor_sim::SimBackend::new());
    let cfg = tcor_serve::ServeConfig {
        port: 0,
        workers: 4,
        queue_depth: 64,
        cache_cap: 256,
        deadline: Duration::from_secs(600),
        cache_dir: Some(cache_dir.clone()),
        cache_disk_bytes: 256 << 20,
        ..tcor_serve::ServeConfig::default()
    };
    let server = match tcor_serve::start(cfg.clone(), backend, None) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-serve: {e}");
            return exit_for(&e);
        }
    };
    let addr = server.addr().to_string();
    // Every target runs real simulation work cold (a full-system cell
    // or a trace-profiling sweep), so cold-vs-warm measures the cache,
    // not loopback overhead.
    let targets = [
        "/v1/cell/GTr/base64",
        "/v1/cell/GTr/tcor64",
        "/v1/cell/SoD/base64",
        "/v1/cell/SoD/tcor64",
        "/v1/misscurve/SoD/opt",
    ];
    let request = |addr: &str, path: &str| -> tcor_common::TcorResult<(f64, String, String)> {
        let t0 = Instant::now();
        let reply = tcor_serve::http_request(addr, "GET", path, None, Duration::from_secs(600))?;
        if reply.status != 200 {
            return Err(TcorError::serve(format!("GET {path} -> {}", reply.status)));
        }
        let tier = reply
            .header("x-tcor-cache")
            .unwrap_or("<absent>")
            .to_string();
        Ok((t0.elapsed().as_secs_f64() * 1e3, reply.body, tier))
    };

    eprintln!("bench-serve: cold phase ({} targets)...", targets.len());
    let mut cold = Vec::new();
    let mut cold_bodies = Vec::new();
    for t in targets {
        match request(&addr, t) {
            Ok((ms, body, _)) => {
                cold.push(ms);
                cold_bodies.push(body);
            }
            Err(e) => {
                eprintln!("bench-serve: cold {t} failed: {e}");
                return exit_for(&e);
            }
        }
    }

    const WARM_ROUNDS: usize = 10;
    eprintln!(
        "bench-serve: warm phase ({WARM_ROUNDS} rounds x {} targets)...",
        targets.len()
    );
    let mut warm = Vec::new();
    let warm_t0 = Instant::now();
    for _ in 0..WARM_ROUNDS {
        for (i, t) in targets.iter().enumerate() {
            match request(&addr, t) {
                Ok((ms, body, tier)) => {
                    if body != cold_bodies[i] {
                        eprintln!("bench-serve: FATAL: warm {t} differs from its cold body");
                        return ExitCode::FAILURE;
                    }
                    if tier != "mem" {
                        eprintln!("bench-serve: FATAL: warm {t} served from `{tier}`, not mem");
                        return ExitCode::FAILURE;
                    }
                    warm.push(ms);
                }
                Err(e) => {
                    eprintln!("bench-serve: warm {t} failed: {e}");
                    return exit_for(&e);
                }
            }
        }
    }
    let warm_wall_s = warm_t0.elapsed().as_secs_f64();

    // Coalescing burst: 8 concurrent clients on a key nothing has
    // computed yet — one simulation, seven followers.
    let burst_target = "/v1/misscurve/GTr/srrip";
    eprintln!("bench-serve: coalescing burst (8 clients on {burst_target})...");
    let burst_ok = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| request(&addr, burst_target)))
            .collect();
        handles
            .into_iter()
            .all(|h| h.join().map(|r| r.is_ok()).unwrap_or(false))
    });
    if !burst_ok {
        eprintln!("bench-serve: FATAL: a burst request failed");
        return ExitCode::FAILURE;
    }

    let metrics = server.metrics_text();
    let counter = |p: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{p} = ")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let (warm_hits, cold_computes) = (
        counter("serve/cache_warm_hits"),
        counter("serve/cold_computes"),
    );
    let coalesced = counter("serve/request_coalesced");
    let bye = tcor_serve::http_request(
        &addr,
        "POST",
        "/admin/shutdown",
        None,
        Duration::from_secs(10),
    );
    if !matches!(&bye, Ok(r) if r.status == 200) {
        eprintln!("bench-serve: FATAL: shutdown request failed");
        return ExitCode::FAILURE;
    }
    let spans = server.wait();

    // Restart phase: a fresh daemon (fresh backend, empty memory tier)
    // over the same cache directory. The first request per target must
    // come back from the disk tier, byte-identical to its cold body —
    // this is the persistence win the cache exists for, measured.
    eprintln!(
        "bench-serve: restart phase ({} disk-tier hits)...",
        targets.len()
    );
    let backend2 = Arc::new(tcor_sim::SimBackend::new());
    let server2 = match tcor_serve::start(cfg, backend2, None) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-serve: restart: {e}");
            return exit_for(&e);
        }
    };
    let addr2 = server2.addr().to_string();
    let mut warm_disk = Vec::new();
    for (i, t) in targets.iter().enumerate() {
        match request(&addr2, t) {
            Ok((ms, body, tier)) => {
                if body != cold_bodies[i] {
                    eprintln!("bench-serve: FATAL: restarted {t} differs from its cold body");
                    return ExitCode::FAILURE;
                }
                if tier != "disk" {
                    eprintln!("bench-serve: FATAL: restarted {t} served from `{tier}`, not disk");
                    return ExitCode::FAILURE;
                }
                warm_disk.push(ms);
            }
            Err(e) => {
                eprintln!("bench-serve: restart {t} failed: {e}");
                return exit_for(&e);
            }
        }
    }
    let metrics2 = server2.metrics_text();
    let counter2 = |p: &str| -> u64 {
        metrics2
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{p} = ")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let disk_hits = counter2("serve/cache_disk_hits");
    // The degradation ledger: on a healthy offline run every one of
    // these is expected to stay 0 / closed, and recording them makes a
    // regression (silent disk errors, a stuck-open breaker) visible as
    // a BENCH_serve.json diff.
    let pcache_io_errors = counter("pcache/io_errors") + counter2("pcache/io_errors");
    let evicted_corrupt = counter("pcache/evicted_corrupt") + counter2("pcache/evicted_corrupt");
    let evicted_version = counter("pcache/evicted_version") + counter2("pcache/evicted_version");
    let breaker_opens = counter("pcache/breaker_opens") + counter2("pcache/breaker_opens");
    let degraded = counter("serve/degraded") + counter2("serve/degraded");
    let bye2 = tcor_serve::http_request(
        &addr2,
        "POST",
        "/admin/shutdown",
        None,
        Duration::from_secs(10),
    );
    if !matches!(&bye2, Ok(r) if r.status == 200) {
        eprintln!("bench-serve: FATAL: restart shutdown request failed");
        return ExitCode::FAILURE;
    }
    server2.wait();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let (cold_p50, warm_p50) = (percentile(&cold, 50.0), percentile(&warm, 50.0));
    let disk_p50 = percentile(&warm_disk, 50.0);
    let speedup = cold_p50 / warm_p50.max(1e-9);
    let disk_speedup = cold_p50 / disk_p50.max(1e-9);
    let doc = Json::obj([
        ("bench", Json::str("serve")),
        (
            "targets",
            Json::Arr(targets.iter().map(|&t| Json::str(t)).collect()),
        ),
        ("requests", Json::UInt(spans.len() as u64)),
        (
            "cold_ms",
            Json::obj([
                ("p50", Json::Float(cold_p50)),
                ("p95", Json::Float(percentile(&cold, 95.0))),
                ("p99", Json::Float(percentile(&cold, 99.0))),
            ]),
        ),
        (
            "warm_mem_ms",
            Json::obj([
                ("p50", Json::Float(warm_p50)),
                ("p95", Json::Float(percentile(&warm, 95.0))),
                ("p99", Json::Float(percentile(&warm, 99.0))),
            ]),
        ),
        (
            "warm_disk_ms",
            Json::obj([
                ("p50", Json::Float(disk_p50)),
                ("p95", Json::Float(percentile(&warm_disk, 95.0))),
                ("p99", Json::Float(percentile(&warm_disk, 99.0))),
            ]),
        ),
        ("warm_mem_speedup_p50", Json::Float(speedup)),
        ("warm_disk_speedup_p50", Json::Float(disk_speedup)),
        (
            "warm_throughput_rps",
            Json::Float(warm.len() as f64 / warm_wall_s),
        ),
        ("cache_warm_hits", Json::UInt(warm_hits)),
        ("cache_disk_hits", Json::UInt(disk_hits)),
        ("cold_computes", Json::UInt(cold_computes)),
        ("coalesced_requests", Json::UInt(coalesced)),
        ("pcache_io_errors", Json::UInt(pcache_io_errors)),
        ("pcache_evicted_corrupt", Json::UInt(evicted_corrupt)),
        ("pcache_evicted_version", Json::UInt(evicted_version)),
        ("breaker_opens", Json::UInt(breaker_opens)),
        ("degraded", Json::UInt(degraded)),
        ("warm_equals_cold", Json::Bool(true)),
        ("restart_equals_cold", Json::Bool(true)),
    ]);
    if let Err(e) = std::fs::write(path, doc.render() + "\n") {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench-serve: cold p50 {cold_p50:.1}ms, warm-mem p50 {warm_p50:.3}ms ({speedup:.0}x), \
         warm-disk p50 {disk_p50:.3}ms ({disk_speedup:.0}x), {coalesced} coalesced -> {path}"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        return match (args.get(1), args.get(2)) {
            (Some(alias), Some(path)) => export_trace(alias, path),
            _ => {
                usage();
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("bench-runner") {
        return bench_runner(args.get(1).map_or("BENCH_runner.json", String::as_str));
    }
    if args.first().map(String::as_str) == Some("bench-misscurves") {
        let rest = &args[1..];
        let gate = rest.iter().any(|a| a == "--gate");
        let path = rest
            .iter()
            .find(|a| !a.starts_with("--"))
            .map_or("BENCH_misscurves.json", String::as_str);
        return bench_misscurves(path, gate);
    }
    if args.first().map(String::as_str) == Some("bench-serve") {
        return bench_serve(args.get(1).map_or("BENCH_serve.json", String::as_str));
    }
    if args.first().map(String::as_str) == Some("bench-load") {
        return tcor_sim::loadgen::bench_load_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench-stream") {
        return tcor_sim::streamcli::bench_stream_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("stream") {
        return tcor_sim::streamcli::stream_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve-req") {
        return serve_req(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("chaos") {
        return tcor_sim::chaos::chaos_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("cell") {
        return match (args.get(1), args.get(2)) {
            (Some(alias), Some(cfg)) => cell_cmd(alias, cfg, &args[3..]),
            _ => {
                usage();
                ExitCode::from(2)
            }
        };
    }

    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut golden_dir = PathBuf::from("results/golden");
    let mut telemetry_path = PathBuf::from("results/telemetry.jsonl");
    let mut manifest_path = PathBuf::from("results/run-manifest.txt");
    let mut mode = ExecMode::Parallel(default_workers());
    let mut check = false;
    let mut update_golden = false;
    let mut resume = false;
    let mut audit = false;
    let mut inject_audit_fault = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut job_timeout: Option<Duration> = None;
    let mut fault_plan: Option<FaultPlan> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return ExitCode::SUCCESS;
            }
            "--serial" => mode = ExecMode::Serial,
            "--check" => check = true,
            "--update-golden" => update_golden = true,
            "--resume" => resume = true,
            "--audit" => audit = true,
            "--inject-audit-fault" => inject_audit_fault = true,
            flag @ ("--csv" | "--jobs" | "--golden" | "--telemetry" | "--manifest"
            | "--job-timeout" | "--inject-faults" | "--trace-out") => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("{flag} needs a value");
                    usage();
                    return ExitCode::from(2);
                };
                match flag {
                    "--csv" => csv_dir = Some(PathBuf::from(value)),
                    "--trace-out" => trace_out = Some(PathBuf::from(value)),
                    "--golden" => golden_dir = PathBuf::from(value),
                    "--telemetry" => telemetry_path = PathBuf::from(value),
                    "--manifest" => manifest_path = PathBuf::from(value),
                    "--job-timeout" => match value.parse::<u64>() {
                        Ok(ms) if ms >= 1 => job_timeout = Some(Duration::from_millis(ms)),
                        _ => {
                            eprintln!("--job-timeout needs milliseconds >= 1, got `{value}`");
                            return ExitCode::from(2);
                        }
                    },
                    "--inject-faults" => match value.parse::<u64>() {
                        Ok(seed) => fault_plan = Some(FaultPlan::seeded(seed)),
                        _ => {
                            eprintln!("--inject-faults needs an integer seed, got `{value}`");
                            return ExitCode::from(2);
                        }
                    },
                    _ => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => mode = ExecMode::Parallel(n),
                        _ => {
                            eprintln!("--jobs needs a positive integer, got `{value}`");
                            return ExitCode::from(2);
                        }
                    },
                }
            }
            "all" => ids.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        // `--trace-out` / `--audit` work standalone: no experiments, no
        // run manifest — just the memoized cells they need.
        if trace_out.is_none() && !audit {
            usage();
            return ExitCode::from(2);
        }
        let store = tcor_runner::ArtifactStore::new();
        if let Some(path) = &trace_out {
            if let Err(e) = export_chrome_trace(&store, path) {
                eprintln!("{e}");
                return exit_for(&e);
            }
        }
        if audit {
            match run_audit(&store, inject_audit_fault) {
                Ok(0) => {}
                Ok(n) => {
                    eprintln!("--audit: {n} conservation violation(s) — counters are corrupt");
                    return ExitCode::from(EXIT_CORRUPTION);
                }
                Err(e) => {
                    eprintln!("{e}");
                    return exit_for(&e);
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    // The run manifest: resumed runs keep the previous record and only
    // re-execute what it marks failed/skipped/unattempted; fresh runs
    // start a new record.
    let mut manifest = if resume {
        match RunManifest::load(&manifest_path) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot resume: {e}");
                return exit_for(&e);
            }
        }
    } else {
        RunManifest::new(&manifest_path)
    };
    let (run_ids, reuse_ids): (Vec<String>, Vec<String>) = ids
        .iter()
        .cloned()
        .partition(|id| !resume || manifest.needs_rerun(id) || !EXPERIMENTS.contains(&id.as_str()));
    if resume && !reuse_ids.is_empty() {
        eprintln!(
            "resume: {} experiment(s) recorded ok in {}, re-running {}",
            reuse_ids.len(),
            manifest_path.display(),
            run_ids.len()
        );
    }

    let store = tcor_runner::ArtifactStore::new();
    let telemetry = Telemetry::new();
    // Stream telemetry from the start: every event is flushed as it is
    // recorded, so even a hard crash leaves a readable log.
    if let Err(e) = telemetry.stream_to(&telemetry_path) {
        eprintln!("telemetry streaming disabled: {e}");
    }

    let opts = RunOptions {
        mode,
        job_timeout,
        fault_plan: fault_plan.clone(),
    };
    let outcome = match run_experiments(&run_ids, &opts, &store, &telemetry) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return exit_for(&e);
        }
    };

    let mut golden = GoldenStore::new(&golden_dir);
    if let Some(plan) = &fault_plan {
        golden = golden.with_fault_plan(plan.clone());
    }
    let mut drifted = 0usize;
    let mut corrupt = 0usize;
    let mut golden_count = 0usize;
    for (id, exp) in &outcome.experiments {
        let tables = match exp {
            ExperimentOutcome::Tables(tables) => {
                manifest.record_ok(
                    id,
                    tables
                        .iter()
                        .map(|t| (t.id.clone(), hash_hex(fxhash64(t.to_csv().as_bytes()))))
                        .collect(),
                );
                tables
            }
            ExperimentOutcome::Failed { .. } => {
                manifest.record_status(id, RunStatus::Failed);
                continue;
            }
            ExperimentOutcome::Skipped { .. } => {
                manifest.record_status(id, RunStatus::Skipped);
                continue;
            }
        };
        for table in tables {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                if let Err(e) = table.write_csv(dir) {
                    eprintln!("failed to write {}/{}.csv: {e}", dir.display(), table.id);
                    return exit_for(&e);
                }
            }
            if update_golden {
                if let Err(e) = golden.update(&table.id, &table.to_csv()) {
                    eprintln!("failed to record golden {}: {e}", table.id);
                    return exit_for(&e);
                }
                golden_count += 1;
            } else if check {
                match golden.check(&table.id, &table.to_csv()) {
                    GoldenStatus::Match => eprintln!("golden {}: ok", table.id),
                    GoldenStatus::Missing => {
                        drifted += 1;
                        eprintln!(
                            "golden {}: MISSING (run with --update-golden to record)",
                            table.id
                        );
                    }
                    GoldenStatus::Corrupt => {
                        corrupt += 1;
                        eprintln!(
                            "golden {}: CORRUPT ({}/{}.csv does not match MANIFEST.txt)",
                            table.id,
                            golden_dir.display(),
                            table.id
                        );
                    }
                    GoldenStatus::Mismatch { diffs, total } => {
                        drifted += 1;
                        eprintln!("golden {}: MISMATCH on {total} line(s)", table.id);
                        for d in diffs.iter().take(5) {
                            eprintln!("  line {}:", d.line);
                            eprintln!("    golden:  {}", d.expected);
                            eprintln!("    current: {}", d.actual);
                        }
                        if total > 5 {
                            eprintln!("  ... and {} more differing line(s)", total - 5);
                        }
                    }
                }
            }
        }
    }

    // Experiments the manifest already records as ok (resume path):
    // their tables were not recomputed, but their recorded content
    // hashes can still be validated against the golden manifest.
    for id in &reuse_ids {
        if !check {
            eprintln!("resume: `{id}` previously completed, skipped");
            continue;
        }
        for (table_id, hash) in manifest.table_hashes(id) {
            match golden.recorded_hash(table_id) {
                Some(recorded) if recorded == *hash => {
                    eprintln!("golden {table_id}: ok (from run manifest)");
                }
                Some(_) => {
                    drifted += 1;
                    eprintln!("golden {table_id}: MISMATCH (run-manifest hash differs)");
                }
                None => {
                    drifted += 1;
                    eprintln!("golden {table_id}: MISSING from the golden manifest");
                }
            }
        }
    }

    if update_golden {
        eprintln!(
            "recorded {golden_count} goldens under {}",
            golden_dir.display()
        );
    }
    if let Err(e) = manifest.save() {
        eprintln!("failed to write {}: {e}", manifest_path.display());
    }

    eprintln!("telemetry: {}", telemetry_path.display());
    eprint!("{}", telemetry.summary(5));
    eprintln!(
        "artifact store: {} computed, {} shared",
        store.computes(),
        store.hits()
    );
    if !outcome.timed_out.is_empty() {
        eprintln!(
            "watchdog: {} job(s) exceeded the {}ms budget: {}",
            outcome.timed_out.len(),
            job_timeout.map_or(0, |d| d.as_millis() as u64),
            outcome.timed_out.join(", ")
        );
    }

    if !outcome.all_ok() {
        eprintln!(
            "run FAILED: {} experiment(s) did not complete",
            outcome.failed_ids().len()
        );
        if let Some(summary) = &outcome.failure_summary {
            eprint!("{summary}");
        }
        eprintln!("(re-run with --resume to re-execute only the failed experiments)");
        return ExitCode::from(EXIT_CELL_FAILURE);
    }
    if let Some(path) = &trace_out {
        if let Err(e) = export_chrome_trace(&store, path) {
            eprintln!("{e}");
            return exit_for(&e);
        }
    }
    let mut audit_violations = 0usize;
    if audit {
        match run_audit(&store, inject_audit_fault) {
            Ok(n) => audit_violations = n,
            Err(e) => {
                eprintln!("{e}");
                return exit_for(&e);
            }
        }
    }
    if audit_violations > 0 {
        eprintln!("--audit: {audit_violations} conservation violation(s) — counters are corrupt");
        return ExitCode::from(EXIT_CORRUPTION);
    }
    if corrupt > 0 {
        eprintln!("--check: {corrupt} golden table(s) are corrupt (tampered or damaged)");
        return ExitCode::from(EXIT_CORRUPTION);
    }
    if check && drifted > 0 {
        eprintln!("--check: {drifted} table(s) drifted from the goldens");
        return ExitCode::from(EXIT_DRIFT);
    }
    ExitCode::SUCCESS
}
