//! The "Parallel Renderers" future-work study (§VII).
//!
//! The paper's conclusion argues that the faster Tiling Engine "opens the
//! door to more aggressive Raster Pipeline implementations, including the
//! use of Parallel Renderers". This experiment scales the fragment-shading
//! throughput (processors × SIMD lanes) and measures the frame rate of
//! the baseline and TCOR: as the Raster Pipeline gets faster, the
//! baseline's slow Tile Fetcher becomes the frame-time bottleneck while
//! TCOR keeps scaling.

use crate::orchestrate::calibrated_scene;
use crate::output::Table;
use tcor::{BaselineSystem, SystemConfig, TcorSystem};
use tcor_common::{TcorResult, TileGrid};
use tcor_energy::EnergyModel;
use tcor_runner::ArtifactStore;
use tcor_workloads::suite;

/// FPS of baseline and TCOR as fragment-shading throughput scales
/// (1×..8× the Table I configuration), on a raster-heavy benchmark.
///
/// # Errors
///
/// Propagates store corruption from the scene lookup.
pub fn scaling(store: &ArtifactStore) -> TcorResult<Table> {
    let grid = TileGrid::new(1960, 768, 32);
    let profile = suite()
        .into_iter()
        .find(|b| b.alias == "Snp")
        .expect("Snp in suite");
    let cal = calibrated_scene(store, &profile, &grid)?;
    let scene = &cal.scene;
    let rp = profile.raster_params();
    let model = EnergyModel::default();

    let mut t = Table::new(
        "scaling",
        "Parallel-renderer scaling (Snp): FPS vs fragment-shading throughput",
        &[
            "processors",
            "baseline_fps",
            "tcor_fps",
            "fps_gain",
            "baseline_fetch_bound_frac",
        ],
    );
    for mult in [1u32, 2, 4, 8] {
        let procs = 4 * mult;
        let mut base_cfg = SystemConfig::paper_baseline_64k().with_raster(rp);
        base_cfg.fragment_processors = procs;
        let mut tcor_cfg = SystemConfig::paper_tcor_64k().with_raster(rp);
        tcor_cfg.fragment_processors = procs;

        let base = BaselineSystem::new(base_cfg).run_frame(scene);
        let tcor = TcorSystem::new(tcor_cfg).run_frame(scene);
        let fb = model.evaluate(&base).fps(600_000_000);
        let ft = model.evaluate(&tcor).fps(600_000_000);
        // How much of the baseline's overlapped phase is fetch-bound:
        // coupled - raster-only lower bound, as a fraction.
        let raster_only: f64 = base.raster_cycles + 32.0 * grid.num_tiles() as f64;
        let fetch_bound = ((base.coupled_cycles - raster_only) / base.coupled_cycles).max(0.0);
        t.push_row(vec![
            procs.to_string(),
            format!("{fb:.1}"),
            format!("{ft:.1}"),
            format!("{:.1}%", (ft / fb - 1.0) * 100.0),
            format!("{fetch_bound:.2}"),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcor_fps_advantage_grows_with_raster_throughput() {
        let t = scaling(&ArtifactStore::new()).unwrap();
        assert_eq!(t.rows.len(), 4);
        let gain =
            |row: &Vec<String>| -> f64 { row[3].trim_end_matches('%').parse::<f64>().unwrap() };
        let first = gain(&t.rows[0]);
        let last = gain(&t.rows[3]);
        assert!(
            last > first,
            "FPS gain should grow with parallel renderers: {first}% -> {last}%"
        );
        assert!(
            last > 5.0,
            "at 8x renderers TCOR should clearly win: {last}%"
        );
    }
}
