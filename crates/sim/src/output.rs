//! Pretty-printed and CSV table output.

use std::fmt::Write as _;
use std::path::Path;
use tcor_common::{write_atomic, TcorError, TcorResult};

/// A result table: a title, column headers and string rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Experiment id (used as the CSV file stem).
    pub id: String,
    /// Human title (figure/table caption).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "ragged row in {}", self.id);
        self.rows.push(cells);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.columns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes `<dir>/<id>.csv` atomically (stage + rename), so a crash
    /// mid-write never leaves a truncated result file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> TcorResult<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| TcorError::io(format!("creating {}", dir.display()), e))?;
        write_atomic(
            &dir.join(format!("{}.csv", self.id)),
            self.to_csv().as_bytes(),
        )
    }
}

/// Formats a ratio as a percentage decrease ("33.5%").
pub fn pct_decrease(baseline: f64, improved: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:.1}%", (1.0 - improved / baseline) * 100.0)
}

/// Formats a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("figX", "Example", &["bench", "value"]);
        t.push_row(vec!["CCS".into(), "0.5".into()]);
        t.push_row(vec!["a,b".into(), "1".into()]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let r = sample().render();
        assert!(r.contains("figX"));
        assert!(r.contains("bench"));
        assert!(r.contains("CCS"));
    }

    #[test]
    fn csv_quotes_commas() {
        let c = sample().to_csv();
        assert!(c.lines().any(|l| l.starts_with("\"a,b\"")));
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn ragged_row_panics() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct_decrease(100.0, 66.5), "33.5%");
        assert_eq!(pct_decrease(0.0, 1.0), "n/a");
        assert_eq!(f3(0.12345), "0.123");
    }
}
