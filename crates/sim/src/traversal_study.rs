//! Traversal-order sensitivity study.
//!
//! The paper fixes Z-order traversal (Table I) and §III.A only requires
//! that the order be *fixed and known beforehand* — any order works for
//! OPT-number computation. This experiment quantifies how much the choice
//! matters: scanline, serpentine and Z-order traversals over two
//! contrasting benchmarks, measuring TCOR's PB L2 traffic and Tiling
//! Engine throughput.
//!
//! Expected shape: Z-order shortens reuse distances (a primitive's tiles
//! are visited in bursts), helping both the Attribute Cache and the L2's
//! dead-line turnover; scanline stretches vertical neighbours far apart.

use crate::output::{f3, Table};
use tcor::{SystemConfig, TcorSystem};
use tcor_common::{TcorResult, Traversal};
use tcor_runner::ArtifactStore;
use tcor_workloads::suite;

/// PB L2 accesses and primitives/cycle per traversal order.
///
/// # Errors
///
/// Propagates store corruption from the scene lookups.
pub fn traversal_study(store: &ArtifactStore) -> TcorResult<Table> {
    let grid = tcor_common::TileGrid::new(1960, 768, 32);
    let all = suite();
    let picks: Vec<_> = ["CCS", "TRu"]
        .iter()
        .map(|a| all.iter().find(|b| &b.alias == a).unwrap())
        .collect();
    let mut t = Table::new(
        "traversal",
        "Traversal-order sensitivity: TCOR PB L2 accesses and PPC",
        &["bench", "order", "pb_l2", "ppc"],
    );
    for b in picks {
        let cal = crate::orchestrate::calibrated_scene(store, b, &grid)?;
        let scene = &cal.scene;
        for (order, name) in [
            (Traversal::Scanline, "scanline"),
            (Traversal::Serpentine, "serpentine"),
            (Traversal::ZOrder, "z-order"),
            (Traversal::Hilbert, "hilbert"),
        ] {
            let mut cfg = SystemConfig::paper_tcor_64k().with_raster(b.raster_params());
            cfg.gpu.traversal = order;
            let r = TcorSystem::new(cfg).run_frame(scene);
            t.push_row(vec![
                b.alias.to_string(),
                name.to_string(),
                r.pb_l2_accesses().to_string(),
                f3(r.primitives_per_cycle()),
            ]);
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_traversal_runs_and_zorder_is_listed() {
        let t = traversal_study(&ArtifactStore::new()).unwrap();
        assert_eq!(t.rows.len(), 8);
        assert!(t.rows.iter().any(|r| r[1] == "z-order"));
        // All traversals produce valid throughput.
        for r in &t.rows {
            let ppc: f64 = r[3].parse().unwrap();
            assert!(ppc > 0.0 && ppc <= 1.0, "{r:?}");
        }
    }
}
