//! Ablation studies for the design decisions called out in `DESIGN.md`.
//!
//! * **D1** — hardware OPT Numbers (12-bit next-tile ranks) vs exact
//!   Belady timestamps, on the 4-way Attribute Cache geometry.
//! * **D2** — the Polygon List Builder write bypass on/off.
//! * **D3** — TCOR's interleaved PB-Lists layout vs the baseline strided
//!   layout, under the same split caches.
//! * **D5** — XOR set indexing \[12\] vs modulo in the Primitive Buffer.

use crate::orchestrate::calibrated_scene;
use crate::output::{f3, Table};
use tcor::{SystemConfig, TcorSystem};
use tcor_cache::policy::Opt;
use tcor_cache::profile::simulate_policy;
use tcor_cache::{AccessMeta, Cache, Indexing};
use tcor_common::{CacheParams, TcorResult, TileGrid, Traversal};
use tcor_gpu::bin_scene;
use tcor_pbuf::ListsScheme;
use tcor_runner::ArtifactStore;
use tcor_workloads::trace::opt_number_annotations;
use tcor_workloads::{primitive_trace, prims_capacity, suite};

/// Runs all four ablations over the suite and tabulates the outcome.
///
/// # Errors
///
/// Propagates store corruption from the scene lookups.
pub fn ablation(store: &ArtifactStore) -> TcorResult<Table> {
    let grid = TileGrid::new(1960, 768, 32);
    let order = Traversal::ZOrder.order(&grid);
    let mut t = Table::new(
        "ablation",
        "Design-decision ablations (PB L2 accesses normalized to full TCOR; \
         miss ratios for D1/D5)",
        &[
            "bench",
            "d3_baseline_layout",
            "d2_no_bypass",
            "d5_modulo_index",
            "d1_exact_belady",
            "d1_opt_number",
        ],
    );
    for b in suite() {
        let cal = calibrated_scene(store, &b, &grid)?;
        let scene = &cal.scene;
        let rp = b.raster_params();

        // Full TCOR reference.
        let tcor = TcorSystem::new(SystemConfig::paper_tcor_64k().with_raster(rp)).run_frame(scene);
        let reference = tcor.pb_l2_accesses() as f64;

        // D3: baseline (strided) list layout under the TCOR split caches.
        let mut cfg = SystemConfig::paper_tcor_64k().with_raster(rp);
        cfg.list_scheme = ListsScheme::Baseline;
        let d3 = TcorSystem::new(cfg).run_frame(scene).pb_l2_accesses() as f64 / reference;

        // D2: write bypass disabled.
        let mut cfg = SystemConfig::paper_tcor_64k().with_raster(rp);
        cfg.attr_write_bypass = false;
        let d2 = TcorSystem::new(cfg).run_frame(scene).pb_l2_accesses() as f64 / reference;

        // D5: modulo indexing in the Primitive Buffer.
        let mut cfg = SystemConfig::paper_tcor_64k().with_raster(rp);
        cfg.attr_indexing = Indexing::Modulo;
        let d5 = TcorSystem::new(cfg).run_frame(scene).pb_l2_accesses() as f64 / reference;

        // D1: exact Belady vs hardware OPT Numbers on a 4-way,
        // 48 KiB-equivalent primitive-granularity cache.
        let frame = bin_scene(scene, &grid, &order);
        let trace = primitive_trace(&frame.binned, &order);
        let cap = prims_capacity(48 << 10);
        let lines = ((cap as u64 / 4).max(1)) * 4;
        let params = CacheParams::new(lines, 1, 4, 1);
        let exact = simulate_policy(&trace, params, Indexing::Modulo, Opt::new(), true);
        // Hardware OPT Numbers: replay manually with the rank-based
        // priorities.
        let ranks = opt_number_annotations(&frame.binned, &order);
        let mut hw = Cache::new(params, Indexing::Modulo, Opt::new());
        for (a, nu) in trace.iter().zip(&ranks) {
            hw.access(a.addr, a.kind, AccessMeta::next_use(*nu));
        }
        t.push_row(vec![
            b.alias.to_string(),
            f3(d3),
            f3(d2),
            f3(d5),
            f3(exact.miss_ratio()),
            f3(hw.stats().miss_ratio()),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_table_covers_the_suite() {
        // Run on one benchmark only (by building the table over the full
        // suite would be slow in debug); instead assert the full function
        // shape on the smallest benchmark via a scoped copy.
        let t = ablation_single("GTr");
        assert_eq!(t.rows.len(), 1);
        let row = &t.rows[0];
        // D1: the hardware OPT Number policy is close to exact Belady —
        // within a few percent of miss ratio.
        let exact: f64 = row[4].parse().unwrap();
        let hw: f64 = row[5].parse().unwrap();
        assert!(
            (hw - exact).abs() < 0.05,
            "OPT-number approximation drifted: {hw} vs {exact}"
        );
    }

    /// Single-benchmark version of [`ablation`] for tests.
    fn ablation_single(alias: &str) -> Table {
        let grid = TileGrid::new(1960, 768, 32);
        let order = Traversal::ZOrder.order(&grid);
        let b = suite().into_iter().find(|b| b.alias == alias).unwrap();
        let mut t = Table::new(
            "ablation",
            "test",
            &["bench", "d3", "d2", "d5", "exact", "hw"],
        );
        let scene = tcor_workloads::generate_scene(&b, &grid);
        let frame = bin_scene(&scene, &grid, &order);
        let trace = primitive_trace(&frame.binned, &order);
        let cap = prims_capacity(48 << 10);
        let lines = ((cap as u64 / 4).max(1)) * 4;
        let params = CacheParams::new(lines, 1, 4, 1);
        let exact = simulate_policy(&trace, params, Indexing::Modulo, Opt::new(), true);
        let ranks = opt_number_annotations(&frame.binned, &order);
        let mut hw = Cache::new(params, Indexing::Modulo, Opt::new());
        for (a, nu) in trace.iter().zip(&ranks) {
            hw.access(a.addr, a.kind, AccessMeta::next_use(*nu));
        }
        t.push_row(vec![
            b.alias.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            f3(exact.miss_ratio()),
            f3(hw.stats().miss_ratio()),
        ]);
        t
    }
}
