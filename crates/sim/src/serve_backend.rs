//! The simulator-backed [`Backend`] for `tcor-serve`.
//!
//! `tcor-serve` owns the request plane (sockets, queueing, coalescing,
//! caching); this module owns the meaning of a request. Every
//! [`ApiCall`] is validated *before* it reaches the simulator — the
//! cell and policy entry points panic on unknown names, so the backend
//! converts bad identity into typed config errors (served as 404) and
//! malformed run parameters into serve errors (served as 400). All
//! computation is memoized in the shared [`ArtifactStore`], so repeated
//! cold requests for overlapping artifacts (the same workload under
//! two configs, say) share scenes and cells exactly like the CLI runs
//! do — and the store's own get-or-compute coalescing backs up the
//! request-level singleflight. With a result cache attached
//! ([`SimBackend::with_cache`]) the rendered body of every successful
//! call is additionally persisted through
//! [`ArtifactStore::get_or_try_compute_persisted`], keyed by the call's
//! canonical hash plus [`sim_version`], so results survive the process
//! and are shared with the daemon's own response cache (same keys →
//! the disk tier dedups the double put).

use crate::misscurves::{workload_curve, SERVE_POLICIES};
use crate::orchestrate::{calibrated_scene, cell_report, paper_grid};
use crate::report_json::{frame_report_json, misscurve_json};
use crate::suite::CELL_CONFIGS;
use std::sync::Arc;
use tcor_common::{fxhash64, TcorError, TcorResult};
use tcor_pcache::ResultCache;
use tcor_runner::ArtifactStore;
use tcor_serve::{ApiBody, ApiCall, Backend};
use tcor_workloads::BenchmarkProfile;

/// The version hash folded into every persisted cache key: the crate
/// version plus a schema tag. Bump the tag whenever rendered output
/// changes without a version bump — persisted entries from older
/// schemas are then evicted on sight instead of served.
pub fn sim_version() -> u64 {
    const SCHEMA_TAG: &str = "tcor-results-v1";
    fxhash64(format!("{}|{}", env!("CARGO_PKG_VERSION"), SCHEMA_TAG).as_bytes())
}

/// [`Backend`] implementation over the real simulator.
#[derive(Default)]
pub struct SimBackend {
    store: ArtifactStore,
    cache: Option<Arc<dyn ResultCache>>,
}

impl SimBackend {
    /// A backend with a fresh artifact store and no persistence.
    pub fn new() -> Self {
        Self::default()
    }

    /// A backend that persists every rendered result through `cache` —
    /// pass the same cache the daemon serves from and the two planes
    /// share one set of entries.
    pub fn with_cache(cache: Arc<dyn ResultCache>) -> Self {
        SimBackend {
            store: ArtifactStore::new(),
            cache: Some(cache),
        }
    }

    /// The artifact store backing this backend (for observability).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    fn profile(&self, workload: &str) -> TcorResult<BenchmarkProfile> {
        tcor_workloads::suite()
            .into_iter()
            .find(|b| b.alias == workload)
            .ok_or_else(|| {
                let known: Vec<&str> = tcor_workloads::suite().iter().map(|b| b.alias).collect();
                TcorError::config(format!(
                    "unknown workload `{workload}` (expected one of {})",
                    known.join(", ")
                ))
            })
    }

    fn cell(&self, workload: &str, config: &str) -> TcorResult<ApiBody> {
        let profile = self.profile(workload)?;
        if !CELL_CONFIGS.contains(&config) {
            return Err(TcorError::config(format!(
                "unknown cell config `{config}` (expected one of {})",
                CELL_CONFIGS.join(", ")
            )));
        }
        let grid = paper_grid();
        let scene = calibrated_scene(&self.store, &profile, &grid)?;
        let report = cell_report(&self.store, &profile, &scene, config)?;
        Ok(ApiBody {
            content_type: "application/json".to_string(),
            body: frame_report_json(workload, config, &report).render() + "\n",
        })
    }

    fn misscurve(&self, workload: &str, policy: &str) -> TcorResult<ApiBody> {
        let (sizes, curve) = workload_curve(&self.store, workload, policy)?;
        Ok(ApiBody {
            content_type: "application/json".to_string(),
            body: misscurve_json(workload, policy, &sizes, &curve).render() + "\n",
        })
    }

    fn table(&self, experiment: &str) -> TcorResult<ApiBody> {
        let tables = crate::try_run_experiment(&self.store, experiment)?;
        Ok(ApiBody {
            content_type: "text/csv; charset=utf-8".to_string(),
            body: tables.iter().map(crate::Table::to_csv).collect(),
        })
    }

    /// `POST /v1/run` dispatch: `experiment=ID`, `workload=A&config=C`,
    /// or `workload=A&policy=P` — the same computations as the GET
    /// endpoints, so equal work coalesces across both spellings.
    fn run(&self, params: &[(String, String)]) -> TcorResult<ApiBody> {
        let get = |key: &str| {
            params
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        };
        for (k, _) in params {
            if !matches!(k.as_str(), "experiment" | "workload" | "config" | "policy") {
                return Err(TcorError::serve(format!(
                    "unknown run parameter `{k}` (expected experiment, workload, config, policy)"
                )));
            }
        }
        match (
            get("experiment"),
            get("workload"),
            get("config"),
            get("policy"),
        ) {
            (Some(id), None, None, None) => self.table(id),
            (None, Some(w), Some(c), None) => self.cell(w, c),
            (None, Some(w), None, Some(p)) => self.misscurve(w, p),
            _ => Err(TcorError::serve(format!(
                "a run needs `experiment=ID`, `workload=A&config=C` (configs: {}) or \
                 `workload=A&policy=P` (policies: {})",
                CELL_CONFIGS.join(", "),
                SERVE_POLICIES.join(", ")
            ))),
        }
    }
}

impl SimBackend {
    fn compute(&self, call: &ApiCall) -> TcorResult<ApiBody> {
        match call {
            ApiCall::Cell { workload, config } => self.cell(workload, config),
            ApiCall::MissCurve { workload, policy } => self.misscurve(workload, policy),
            ApiCall::Table { experiment } => self.table(experiment),
            ApiCall::Run { params } => self.run(params),
        }
    }
}

impl Backend for SimBackend {
    fn call(&self, call: &ApiCall) -> TcorResult<ApiBody> {
        let Some(cache) = &self.cache else {
            return self.compute(call);
        };
        let body: Arc<ApiBody> = self.store.get_or_try_compute_persisted(
            call.cache_key(),
            cache.as_ref(),
            self.version(),
            ApiBody::to_cached,
            |cached| Some(ApiBody::from_cached(cached)),
            || self.compute(call),
        )?;
        Ok((*body).clone())
    }

    fn version(&self) -> u64 {
        sim_version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_identity_is_a_config_error() {
        let b = SimBackend::new();
        let call = ApiCall::Cell {
            workload: "nope".into(),
            config: "base64".into(),
        };
        let err = b.call(&call).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Config);
        let call = ApiCall::Cell {
            workload: "GTr".into(),
            config: "nope".into(),
        };
        let err = b.call(&call).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Config);
        let call = ApiCall::MissCurve {
            workload: "GTr".into(),
            policy: "clock".into(),
        };
        let err = b.call(&call).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Config);
    }

    #[test]
    fn malformed_run_parameters_are_serve_errors() {
        let b = SimBackend::new();
        let run = |pairs: &[(&str, &str)]| {
            b.call(&ApiCall::Run {
                params: pairs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            })
        };
        let err = run(&[("workload", "GTr")]).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Serve);
        let err = run(&[("frobnicate", "1")]).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Serve);
        let err = run(&[("experiment", "fig10"), ("workload", "GTr")]).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Serve);
    }

    #[test]
    fn run_experiment_matches_the_table_endpoint_byte_for_byte() {
        let b = SimBackend::new();
        let via_table = b
            .call(&ApiCall::Table {
                experiment: "fig10".into(),
            })
            .unwrap();
        let via_run = b
            .call(&ApiCall::Run {
                params: vec![("experiment".into(), "fig10".into())],
            })
            .unwrap();
        assert_eq!(via_table.body, via_run.body);
        assert_eq!(via_table.content_type, "text/csv; charset=utf-8");
        let direct: String = crate::try_run_experiment(&ArtifactStore::new(), "fig10")
            .unwrap()
            .iter()
            .map(crate::Table::to_csv)
            .collect();
        assert_eq!(via_table.body, direct);
    }
}
