//! `tcor-sim chaos`: the kill/restart torture harness for the serve +
//! cache planes.
//!
//! Spawns the real daemon as a child process (same binary, `serve`
//! subcommand) — optionally under a seeded fault schedule — and drives
//! it with the retrying client while inflicting the failures the
//! robustness layer claims to survive:
//!
//! * **Seeded faults** (`--fault-spec`, forwarded to the daemon): disk
//!   I/O errors, short reads, torn writes, dropped connections,
//!   corrupted responses, stalled reads. The same seed replays the
//!   same schedule.
//! * **Kill/restart cycles** (`--kill-every N`): SIGKILL the daemon
//!   after every N answered requests and restart it over the same
//!   cache directory, proving crash-recovery plus disk-tier warm
//!   starts under fire.
//!
//! Throughout, every answered body must be byte-identical to the first
//! answer for its target — a chaos layer that changes results is worse
//! than no chaos layer. With `--expect-breaker` the run additionally
//! asserts the disk circuit breaker opened under the fault schedule
//! and, once the schedule's fault budget is exhausted, closed again
//! (open → half-open probe → closed). The final daemon must drain to
//! exit 0 on `POST /admin/shutdown`.
//!
//! `--bench-out FILE` records the run (requests, retries, kills,
//! breaker activity) as machine-readable JSON for CI.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};
use tcor_runner::Json;
use tcor_serve::{http_request_retrying, request_retrying, HttpClient, HttpReply, RetryPolicy};

/// Parsed `tcor-sim chaos` flags.
struct ChaosOpts {
    seed: u64,
    fault_spec: Option<String>,
    kill_every: u64,
    rounds: u64,
    experiments: Vec<String>,
    expect_breaker: bool,
    retries: u32,
    backoff_ms: u64,
    cache_cap: usize,
    breaker_threshold: u32,
    breaker_cooldown_ms: u64,
    bench_out: Option<PathBuf>,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts {
            seed: 42,
            fault_spec: None,
            kill_every: 0,
            rounds: 4,
            experiments: vec!["fig10".to_string(), "table1".to_string()],
            expect_breaker: false,
            retries: 4,
            backoff_ms: 50,
            cache_cap: 256,
            breaker_threshold: 3,
            breaker_cooldown_ms: 250,
            bench_out: None,
        }
    }
}

/// The daemon under torture, plus the keep-alive client pinned to this
/// generation. A SIGKILL/restart cycle yields a fresh address, so the
/// client lives and dies with its daemon; within a generation every
/// request rides the same reused connection (stale-connection replay
/// in [`HttpClient`] covers the race where a kill lands mid-reuse).
struct Daemon {
    child: Child,
    addr: String,
    client: HttpClient,
}

/// How long to wait for a (re)started daemon to publish its port.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(30);
/// Per-request client timeout (first computes run real simulations).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(120);
/// How long `--expect-breaker` waits for open → probe → closed.
const RECOVERY_TIMEOUT: Duration = Duration::from_secs(20);

fn spawn_daemon(opts: &ChaosOpts, cache_dir: &Path, port_file: &Path) -> Result<Daemon, String> {
    let _ = std::fs::remove_file(port_file);
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("serve")
        .args(["--port", "0"])
        .arg("--port-file")
        .arg(port_file)
        .arg("--cache-dir")
        .arg(cache_dir)
        .args(["--workers", "2"])
        .args(["--queue-depth", "32"])
        .args(["--cache-cap", &opts.cache_cap.to_string()])
        .args(["--breaker-threshold", &opts.breaker_threshold.to_string()])
        .args([
            "--breaker-cooldown-ms",
            &opts.breaker_cooldown_ms.to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = &opts.fault_spec {
        cmd.args(["--fault-seed", &opts.seed.to_string()]);
        cmd.args(["--fault-spec", spec]);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn daemon: {e}"))?;
    let deadline = Instant::now() + SPAWN_TIMEOUT;
    loop {
        if let Ok(addr) = std::fs::read_to_string(port_file) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                let client = HttpClient::new(addr.clone(), REQUEST_TIMEOUT);
                return Ok(Daemon {
                    child,
                    addr,
                    client,
                });
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!("daemon exited during startup: {status}"));
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err("daemon did not publish its port in time".to_string());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

impl Daemon {
    /// One retried GET over this generation's keep-alive connection;
    /// returns the reply plus the retries it took.
    fn get(&mut self, path: &str, policy: &RetryPolicy) -> Result<(HttpReply, u32), String> {
        request_retrying(&mut self.client, "GET", path, None, policy)
            .map_err(|e| format!("GET {path}: {e}"))
    }
}

/// Counter value out of a `/metrics` body (0 when absent).
fn counter(metrics: &str, path: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{path} = ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn parse_opts(args: &[String]) -> Result<ChaosOpts, String> {
    let mut opts = ChaosOpts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--expect-breaker" {
            opts.expect_breaker = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("{flag} needs a value"));
        };
        let bad = |what: &str| format!("{flag} needs {what}, got `{value}`");
        match flag {
            "--seed" => opts.seed = value.parse().map_err(|_| bad("an integer seed"))?,
            "--fault-spec" => opts.fault_spec = Some(value.clone()),
            "--kill-every" => {
                opts.kill_every = value.parse().map_err(|_| bad("a request count"))?;
            }
            "--rounds" => match value.parse() {
                Ok(n) if n >= 1 => opts.rounds = n,
                _ => return Err(bad("a positive round count")),
            },
            "--experiments" => {
                opts.experiments = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if opts.experiments.is_empty() {
                    return Err(bad("a comma-separated experiment list"));
                }
            }
            "--retries" => opts.retries = value.parse().map_err(|_| bad("a retry count"))?,
            "--backoff-ms" => match value.parse() {
                Ok(ms) if ms >= 1 => opts.backoff_ms = ms,
                _ => return Err(bad("milliseconds >= 1")),
            },
            "--cache-cap" => match value.parse() {
                Ok(n) if n >= 1 => opts.cache_cap = n,
                _ => return Err(bad("a positive entry count")),
            },
            "--breaker-threshold" => match value.parse() {
                Ok(n) if n >= 1 => opts.breaker_threshold = n,
                _ => return Err(bad("a positive error count")),
            },
            "--breaker-cooldown-ms" => match value.parse() {
                Ok(ms) if ms >= 1 => opts.breaker_cooldown_ms = ms,
                _ => return Err(bad("milliseconds >= 1")),
            },
            "--bench-out" => opts.bench_out = Some(PathBuf::from(value)),
            other => return Err(format!("unknown chaos flag `{other}`")),
        }
        i += 2;
    }
    Ok(opts)
}

/// `tcor-sim chaos` entry point.
pub fn chaos_cmd(args: &[String]) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("chaos: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("chaos: FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &ChaosOpts) -> Result<(), String> {
    let scratch = std::env::temp_dir().join(format!("tcor-chaos-{}", std::process::id()));
    let cache_dir = scratch.join("cache");
    let port_file = scratch.join("port");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&cache_dir).map_err(|e| format!("cannot create scratch: {e}"))?;
    let result = torture(opts, &cache_dir, &port_file);
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

fn torture(opts: &ChaosOpts, cache_dir: &Path, port_file: &Path) -> Result<(), String> {
    let policy = RetryPolicy::new(
        opts.retries,
        Duration::from_millis(opts.backoff_ms),
        opts.seed,
    );
    let targets: Vec<String> = opts
        .experiments
        .iter()
        .map(|e| format!("/v1/table/{e}"))
        .collect();
    eprintln!(
        "chaos: seed {}, {} round(s) x {} target(s), fault spec {}, kill every {}",
        opts.seed,
        opts.rounds,
        targets.len(),
        opts.fault_spec.as_deref().unwrap_or("<none>"),
        if opts.kill_every == 0 {
            "never".to_string()
        } else {
            format!("{} request(s)", opts.kill_every)
        },
    );

    let mut daemon = spawn_daemon(opts, cache_dir, port_file)?;
    let mut reference: HashMap<String, String> = HashMap::new();
    let (mut requests, mut retries_total, mut kills) = (0u64, 0u64, 0u64);

    for round in 0..opts.rounds {
        for target in &targets {
            let (reply, retries) = daemon.get(target, &policy)?;
            requests += 1;
            retries_total += u64::from(retries);
            if reply.status != 200 {
                return Err(format!(
                    "round {round}: GET {target} -> {} after {retries} retr(ies): {}",
                    reply.status,
                    reply.body.trim()
                ));
            }
            match reference.get(target) {
                None => {
                    reference.insert(target.clone(), reply.body);
                }
                Some(first) if *first == reply.body => {}
                Some(_) => {
                    return Err(format!(
                        "round {round}: GET {target} answered bytes that differ from round 0 \
                         — chaos must never change results"
                    ));
                }
            }
            if opts.kill_every > 0 && requests % opts.kill_every == 0 {
                let _ = daemon.child.kill();
                let _ = daemon.child.wait();
                kills += 1;
                daemon = spawn_daemon(opts, cache_dir, port_file)?;
            }
        }
        eprintln!(
            "chaos: round {} ok ({requests} request(s), {retries_total} retr(ies), \
             {kills} kill(s))",
            round + 1
        );
    }

    // The breaker phase: under a disk-fault schedule the breaker must
    // have opened; once the schedule's per-point budgets (`#limit`)
    // are exhausted, cooldown + a half-open probe must close it again.
    // Driven with real requests so the probe has traffic to ride.
    let mut final_metrics = daemon.get("/metrics", &policy)?.0.body;
    if opts.expect_breaker {
        let deadline = Instant::now() + RECOVERY_TIMEOUT;
        loop {
            let target = targets[requests as usize % targets.len()].clone();
            let (reply, retries) = daemon.get(&target, &policy)?;
            requests += 1;
            retries_total += u64::from(retries);
            if reply.status != 200 {
                return Err(format!("recovery drive -> {}", reply.status));
            }
            final_metrics = daemon.get("/metrics", &policy)?.0.body;
            let opens = counter(&final_metrics, "pcache/breaker_opens");
            let state = counter(&final_metrics, "pcache/breaker_state");
            if opens >= 1 && state == 0 {
                eprintln!(
                    "chaos: breaker opened {opens} time(s) and recovered \
                     ({} disk error(s), {} probe(s))",
                    counter(&final_metrics, "pcache/io_errors"),
                    counter(&final_metrics, "pcache/breaker_probes"),
                );
                break;
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "breaker never completed open -> closed within {RECOVERY_TIMEOUT:?} \
                     (opens {opens}, state {state})\n{final_metrics}"
                ));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        if counter(&final_metrics, "pcache/io_errors") == 0 {
            return Err("--expect-breaker but the disk tier saw no I/O errors".to_string());
        }
    }

    // Graceful drain: the tortured daemon must still exit 0.
    let (bye, _) = http_request_retrying(
        &daemon.addr,
        "POST",
        "/admin/shutdown",
        None,
        Duration::from_secs(10),
        &policy,
    )
    .map_err(|e| format!("shutdown request: {e}"))?;
    if bye.status != 200 {
        return Err(format!("shutdown -> {}", bye.status));
    }
    let status = daemon
        .child
        .wait()
        .map_err(|e| format!("waiting for daemon: {e}"))?;
    if !status.success() {
        return Err(format!("daemon exited {status}, expected success"));
    }

    if let Some(path) = &opts.bench_out {
        let doc = Json::obj([
            ("bench", Json::str("chaos")),
            ("seed", Json::UInt(opts.seed)),
            (
                "fault_spec",
                Json::str(opts.fault_spec.clone().unwrap_or_default()),
            ),
            ("rounds", Json::UInt(opts.rounds)),
            (
                "targets",
                Json::Arr(targets.iter().map(|t| Json::str(t.clone())).collect()),
            ),
            ("requests", Json::UInt(requests)),
            ("retries", Json::UInt(retries_total)),
            ("kills", Json::UInt(kills)),
            (
                "breaker_opens",
                Json::UInt(counter(&final_metrics, "pcache/breaker_opens")),
            ),
            (
                "disk_io_errors",
                Json::UInt(counter(&final_metrics, "pcache/io_errors")),
            ),
            ("byte_identical", Json::Bool(true)),
            ("clean_exit", Json::Bool(true)),
        ]);
        std::fs::write(path, doc.render() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    eprintln!(
        "chaos: PASS — {requests} request(s), {retries_total} retr(ies), {kills} kill(s), \
         every body byte-identical, clean exit"
    );
    Ok(())
}
