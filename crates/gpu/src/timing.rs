//! Tile Fetcher timing with MSHR overlap.
//!
//! Figures 23–24 measure *primitives output per cycle* by the Tile Fetcher
//! with an unbounded output queue (the Raster Pipeline never back-
//! pressures). Throughput is then bounded by the fetch issue rate (one
//! request per cycle) and by miss latency, which Miss Status Holding
//! Registers overlap up to their capacity.
//!
//! The model: each operation takes one issue cycle. A miss additionally
//! occupies an MSHR until `latency` cycles after issue; when all MSHRs are
//! busy, issue stalls until the earliest outstanding fill returns.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cycle-level MSHR occupancy model.
///
/// ```
/// use tcor_gpu::MshrTiming;
///
/// let mut t = MshrTiming::new(4);
/// t.issue_hit();            // 1 cycle
/// t.issue_miss(100);        // overlapped
/// t.issue_miss(100);        // overlapped
/// let cycles = t.finish();
/// assert!(cycles >= 100 && cycles < 210); // misses overlap, not serialize
/// ```
#[derive(Clone, Debug)]
pub struct MshrTiming {
    mshrs: usize,
    now: u64,
    outstanding: BinaryHeap<Reverse<u64>>,
    issued_ops: u64,
    issued_misses: u64,
    stall_cycles: u64,
}

impl MshrTiming {
    /// Creates a timing model with `mshrs` miss registers. A cache always
    /// has at least one, so a zero request is clamped to one (a blocking
    /// cache) instead of being a panic path.
    pub fn new(mshrs: usize) -> Self {
        MshrTiming {
            mshrs: mshrs.max(1),
            now: 0,
            outstanding: BinaryHeap::new(),
            issued_ops: 0,
            issued_misses: 0,
            stall_cycles: 0,
        }
    }

    fn retire_completed(&mut self) {
        while let Some(&Reverse(t)) = self.outstanding.peek() {
            if t <= self.now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
    }

    /// Issues an operation that hits: one cycle.
    pub fn issue_hit(&mut self) {
        self.now += 1;
        self.issued_ops += 1;
        self.retire_completed();
    }

    /// Issues an operation that misses with the given fill latency,
    /// stalling first if every MSHR is occupied.
    pub fn issue_miss(&mut self, latency: u64) {
        self.retire_completed();
        if self.outstanding.len() >= self.mshrs {
            let Reverse(earliest) = self.outstanding.pop().expect("nonempty");
            if earliest > self.now {
                self.stall_cycles += earliest - self.now;
                self.now = earliest;
            }
            self.retire_completed();
        }
        self.now += 1;
        self.issued_ops += 1;
        self.issued_misses += 1;
        self.outstanding.push(Reverse(self.now + latency));
    }

    /// Advances time by an explicit bubble (e.g. pipeline drain between
    /// tiles).
    pub fn bubble(&mut self, cycles: u64) {
        self.now += cycles;
        self.retire_completed();
    }

    /// Drains all outstanding fills and returns the total elapsed cycles.
    pub fn finish(&mut self) -> u64 {
        if let Some(&Reverse(last)) = self.outstanding.iter().max_by_key(|&&Reverse(t)| t) {
            if last > self.now {
                self.now = last;
            }
        }
        self.outstanding.clear();
        self.now
    }

    /// Cycles elapsed so far (without draining).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Operations issued.
    pub fn issued_ops(&self) -> u64 {
        self.issued_ops
    }

    /// Misses issued.
    pub fn issued_misses(&self) -> u64 {
        self.issued_misses
    }

    /// Cycles spent stalled waiting for a free MSHR.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Fills currently in flight (MSHRs occupied) — the occupancy series
    /// sampled by the timeline tracer.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_are_one_cycle_each() {
        let mut t = MshrTiming::new(2);
        for _ in 0..10 {
            t.issue_hit();
        }
        assert_eq!(t.finish(), 10);
    }

    #[test]
    fn single_miss_costs_latency() {
        let mut t = MshrTiming::new(4);
        t.issue_miss(50);
        assert_eq!(t.finish(), 51); // 1 issue + 50 fill
    }

    #[test]
    fn misses_overlap_up_to_mshr_count() {
        let mut t = MshrTiming::new(4);
        for _ in 0..4 {
            t.issue_miss(100);
        }
        // 4 issue cycles; fills overlap: last completes at 4 + 100.
        assert_eq!(t.finish(), 104);
        assert_eq!(t.stall_cycles(), 0);
    }

    #[test]
    fn mshr_exhaustion_serializes() {
        let mut t = MshrTiming::new(1);
        t.issue_miss(100);
        t.issue_miss(100);
        // Second miss waits for the first fill (at 101), issues at 102,
        // completes at 202.
        assert_eq!(t.finish(), 202);
        assert!(t.stall_cycles() >= 100);
    }

    #[test]
    fn hits_proceed_under_outstanding_misses() {
        let mut t = MshrTiming::new(4);
        t.issue_miss(100);
        for _ in 0..10 {
            t.issue_hit();
        }
        // 11 issue cycles; the miss fill (at 101) dominates.
        assert_eq!(t.finish(), 101);
    }

    #[test]
    fn counters_track_issues() {
        let mut t = MshrTiming::new(2);
        t.issue_hit();
        t.issue_miss(10);
        t.issue_hit();
        assert_eq!(t.issued_ops(), 3);
        assert_eq!(t.issued_misses(), 1);
    }

    #[test]
    fn zero_mshrs_clamps_to_blocking_cache() {
        let mut zero = MshrTiming::new(0);
        let mut one = MshrTiming::new(1);
        for t in [&mut zero, &mut one] {
            t.issue_miss(100);
            t.issue_miss(100);
        }
        assert_eq!(zero.finish(), one.finish());
    }

    #[test]
    fn outstanding_tracks_in_flight_fills() {
        let mut t = MshrTiming::new(4);
        assert_eq!(t.outstanding(), 0);
        t.issue_miss(100);
        t.issue_miss(100);
        assert_eq!(t.outstanding(), 2);
        t.bubble(200);
        assert_eq!(t.outstanding(), 0);
    }
}
