//! Raster Pipeline memory traffic: everything that shares the L2 with the
//! Parameter Buffer (Fig. 5), plus the Color Buffer flush that goes
//! straight to main memory (Fig. 2).
//!
//! TCOR's L2 dead-line policy interacts with this traffic (textures and
//! instructions are always clean; PB lines may be dirty — §III.D.2), and
//! the total-main-memory and energy figures (18–22) depend on its volume.
//! The streams are synthesized deterministically per tile with the
//! locality structure of real rasterization: texel fetches walk a window
//! of the texture footprint with mip/neighbour reuse; instruction fetches
//! loop over a small shader working set; the color buffer flushes one
//! tile's pixels per tile.

use tcor_common::{Address, BlockAddr, SmallRng, LINE_SIZE};
use tcor_pbuf::region::bases;

/// Per-benchmark raster traffic parameters (calibrated from Table II).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RasterParams {
    /// Texture working-set footprint in bytes (Table II: 0.4–6.8 MiB).
    pub texture_footprint_bytes: u64,
    /// Average texel-block fetches issued per fragment quad (through the
    /// texture caches).
    pub texel_fetches_per_quad: f64,
    /// Fragment-shader length in instructions (Table II: 4–20 per pixel).
    pub shader_instructions: u32,
    /// Bytes of shader code resident (instruction footprint).
    pub shader_footprint_bytes: u64,
    /// RGBA bytes per pixel in the color buffer.
    pub bytes_per_pixel: u32,
    /// Fraction of fragments the Early Z-Test kills before shading
    /// (§II.A): killed quads fetch no texels and execute no shader
    /// instructions. 0.0 disables depth-kill modeling.
    pub z_kill_rate: f64,
    /// Deterministic seed for the texel address stream.
    pub seed: u64,
}

impl Default for RasterParams {
    fn default() -> Self {
        RasterParams {
            texture_footprint_bytes: 4 << 20,
            texel_fetches_per_quad: 1.5,
            shader_instructions: 8,
            shader_footprint_bytes: 4096,
            bytes_per_pixel: 4,
            z_kill_rate: 0.0,
            seed: 0x7C0D,
        }
    }
}

/// Generates the per-tile raster access streams.
#[derive(Debug)]
pub struct RasterTraffic {
    params: RasterParams,
    rng: SmallRng,
    /// Sliding window base within the texture footprint — consecutive
    /// tiles sample nearby texels (screen-space locality).
    window_block: u64,
}

impl RasterTraffic {
    /// Creates a traffic generator.
    pub fn new(params: RasterParams) -> Self {
        let rng = SmallRng::seed_from_u64(params.seed);
        RasterTraffic {
            params,
            rng,
            window_block: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &RasterParams {
        &self.params
    }

    /// Texture-fetch block addresses for a tile with `fragments` estimated
    /// fragments. Quads are groups of 4 fragments (§II.A); each quad
    /// issues [`RasterParams::texel_fetches_per_quad`] block fetches on
    /// average, 75% of them within a small sliding window (bilinear
    /// neighbours / recently used mip blocks) and the rest jumping within
    /// the footprint.
    pub fn texture_blocks(&mut self, fragments: f64) -> Vec<BlockAddr> {
        let footprint_blocks = (self.params.texture_footprint_bytes / LINE_SIZE).max(1);
        let shaded = fragments * (1.0 - self.params.z_kill_rate);
        let quads = (shaded / 4.0).ceil() as u64;
        let fetches = (quads as f64 * self.params.texel_fetches_per_quad).round() as u64;
        let mut out = Vec::with_capacity(fetches as usize);
        for _ in 0..fetches {
            // 85% of fetches land in the sliding bilinear/mip window and
            // are absorbed by the L1 texture caches; the rest jump within
            // the footprint (distant mip levels, new surfaces) and mostly
            // stream through the L2 — real mobile texture traffic shows
            // little L2-level reuse once the L1s have filtered it.
            let local: bool = self.rng.random_bool(0.85);
            let block = if local {
                // Window of 64 blocks (4 KiB) around the current base.
                (self.window_block + self.rng.random_range(0..64)) % footprint_blocks
            } else {
                self.rng.random_range(0..footprint_blocks)
            };
            out.push(Address(bases::TEXTURES + block * LINE_SIZE).block());
        }
        // Slide the window: neighbouring tiles sample nearby texture.
        self.window_block = (self.window_block + 16) % footprint_blocks;
        out
    }

    /// Instruction-fetch block addresses for one tile: each fragment
    /// batch re-walks the shader, but the I-cache working set is the
    /// shader footprint — we emit one walk per tile (further iterations
    /// hit in the L1 I-cache and never reach the shared L2).
    pub fn instruction_blocks(&self) -> Vec<BlockAddr> {
        let blocks = self.params.shader_footprint_bytes.div_ceil(LINE_SIZE);
        (0..blocks)
            .map(|b| Address(bases::INSTRUCTIONS + b * LINE_SIZE).block())
            .collect()
    }

    /// Color-buffer flush for one `tile_size`×`tile_size` tile: the
    /// on-chip Color Buffer writes every pixel once to the Frame Buffer in
    /// main memory (bypassing the L2, per Fig. 2).
    pub fn framebuffer_blocks(&self, tile_index: usize, tile_size: u32) -> Vec<BlockAddr> {
        let bytes = tile_size as u64 * tile_size as u64 * self.params.bytes_per_pixel as u64;
        let blocks = bytes / LINE_SIZE;
        let base = bases::FRAME_BUFFER + tile_index as u64 * bytes;
        (0..blocks)
            .map(|b| Address(base + b * LINE_SIZE).block())
            .collect()
    }

    /// Shader work estimate for the energy model: executed instructions
    /// for `fragments` fragments.
    pub fn shader_instructions_executed(&self, fragments: f64) -> f64 {
        fragments * (1.0 - self.params.z_kill_rate) * self.params.shader_instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor_pbuf::Region;

    fn traffic() -> RasterTraffic {
        RasterTraffic::new(RasterParams::default())
    }

    #[test]
    fn texture_blocks_live_in_texture_region_and_footprint() {
        let mut t = traffic();
        let blocks = t.texture_blocks(1024.0);
        assert!(!blocks.is_empty());
        let fp = RasterParams::default().texture_footprint_bytes;
        for b in blocks {
            assert_eq!(Region::of_block(b), Region::Textures);
            assert!(b.base().0 < bases::TEXTURES + fp);
        }
    }

    #[test]
    fn texture_volume_scales_with_fragments() {
        let mut t = traffic();
        let small = t.texture_blocks(64.0).len();
        let big = t.texture_blocks(4096.0).len();
        assert!(big > small * 10);
    }

    #[test]
    fn texture_stream_is_deterministic() {
        let a: Vec<_> = traffic().texture_blocks(500.0);
        let b: Vec<_> = traffic().texture_blocks(500.0);
        assert_eq!(a, b);
    }

    #[test]
    fn instruction_blocks_cover_shader_footprint() {
        let t = traffic();
        let blocks = t.instruction_blocks();
        assert_eq!(blocks.len(), 64); // 4096 / 64
        assert!(blocks
            .iter()
            .all(|b| Region::of_block(*b) == Region::Instructions));
    }

    #[test]
    fn framebuffer_flush_is_one_tile_of_pixels() {
        let t = traffic();
        let blocks = t.framebuffer_blocks(0, 32);
        assert_eq!(blocks.len(), 64); // 32*32*4 / 64
        assert!(blocks
            .iter()
            .all(|b| Region::of_block(*b) == Region::FrameBuffer));
        // Distinct tiles flush distinct addresses.
        let other = t.framebuffer_blocks(1, 32);
        assert_ne!(blocks[0], other[0]);
    }

    #[test]
    fn zero_fragments_zero_texels() {
        let mut t = traffic();
        assert!(t.texture_blocks(0.0).is_empty());
    }

    #[test]
    fn z_kill_reduces_shading_and_texel_traffic() {
        let mut killed = RasterTraffic::new(RasterParams {
            z_kill_rate: 0.5,
            ..RasterParams::default()
        });
        let mut full = traffic();
        let k = killed.texture_blocks(4096.0).len();
        let f = full.texture_blocks(4096.0).len();
        assert!(
            k * 3 < f * 2,
            "50% z-kill should cut texel traffic: {k} vs {f}"
        );
        assert_eq!(
            killed.shader_instructions_executed(1000.0),
            0.5 * full.shader_instructions_executed(1000.0)
        );
    }
}
