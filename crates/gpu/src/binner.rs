//! The Polygon List Builder (binner) and the Tiling Engine access streams.
//!
//! Binning turns a visible scene into a [`BinnedFrame`] (bounding-box
//! overlap test per primitive, Antochi-style \[2\]) and estimates the
//! fragment load each tile will put on the Raster Pipeline.
//!
//! The two functions [`plb_ops`] and [`fetch_ops`] materialize the exact
//! logical access streams of the two Tiling Engine stages; the baseline
//! and TCOR cache organizations in `tcor` replay the *same* streams, so
//! measured differences come only from the memory hierarchy — the paper's
//! experimental setup.

use crate::scene::Scene;
use tcor_common::{PrimitiveId, TileGrid, TileId, TraversalOrder};
use tcor_pbuf::{BinnedFrame, PMDS_PER_BLOCK};

/// The tile-overlap test the Polygon List Builder uses.
///
/// The baseline (and the paper's related work \[2\]) bins by primitive
/// bounding box — fast but with false overlaps for thin diagonal
/// triangles. [`OverlapTest::Exact`] runs a separating-axis triangle/tile
/// test, eliminating false overlaps at extra binning compute (the
/// trade-off studied by Yang et al., the paper's reference \[39\]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OverlapTest {
    /// Conservative bounding-box binning (the baseline).
    #[default]
    BoundingBox,
    /// Exact triangle/tile intersection (SAT).
    Exact,
}

/// A binned frame plus raster-load estimates.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The Parameter Buffer content.
    pub binned: BinnedFrame,
    /// Estimated fragments per tile (triangle area spread uniformly over
    /// the tiles its bounding box overlaps — a coverage estimate for the
    /// raster traffic and energy models).
    pub fragments_per_tile: Vec<f64>,
}

impl Frame {
    /// Total estimated fragments in the frame.
    pub fn total_fragments(&self) -> f64 {
        self.fragments_per_tile.iter().sum()
    }
}

/// Bins `scene` over `grid` with bounding-box overlap (the baseline
/// test; see [`bin_scene_with`] for the exact variant).
///
/// Primitives whose bounding box misses the screen entirely are skipped
/// (the Geometry Pipeline should have culled them; skipping keeps the
/// binner total).
pub fn bin_scene(scene: &Scene, grid: &TileGrid, order: &TraversalOrder) -> Frame {
    bin_scene_with(scene, grid, order, OverlapTest::BoundingBox)
}

/// Bins `scene` with the chosen [`OverlapTest`].
pub fn bin_scene_with(
    scene: &Scene,
    grid: &TileGrid,
    order: &TraversalOrder,
    test: OverlapTest,
) -> Frame {
    let mut prim_tiles: Vec<(u8, Vec<TileId>)> = Vec::with_capacity(scene.len());
    let mut fragments_per_tile = vec![0.0f64; grid.num_tiles()];
    let ts = grid.tile_size() as f32;
    for prim in scene.primitives() {
        let mut tiles = grid.tiles_overlapping(&prim.tri.bbox());
        if test == OverlapTest::Exact {
            tiles.retain(|t| {
                let (tx, ty) = grid.tile_coords(*t);
                let rect = tcor_common::Rect::new(
                    tx as f32 * ts,
                    ty as f32 * ts,
                    (tx + 1) as f32 * ts,
                    (ty + 1) as f32 * ts,
                );
                prim.tri.overlaps_rect(&rect)
            });
        }
        if tiles.is_empty() {
            continue;
        }
        let frag_share = (prim.tri.area() as f64).max(1.0) / tiles.len() as f64;
        for t in &tiles {
            fragments_per_tile[t.index()] += frag_share;
        }
        prim_tiles.push((prim.attr_count, tiles));
    }
    Frame {
        binned: BinnedFrame::new(&prim_tiles, order),
        fragments_per_tile,
    }
}

/// One Polygon List Builder write (§II.C: "When a primitive is binned, a
/// write request to PB-Lists is generated to write its PMD for each tile
/// it overlaps. Then, a number of write requests to PB-Attributes are
/// generated…").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlbOp {
    /// Append `prim`'s PMD as entry `n` of `tile`'s list.
    PmdWrite {
        /// Target tile list.
        tile: TileId,
        /// Position within the list (0-based).
        n: u32,
        /// The primitive being appended.
        prim: PrimitiveId,
    },
    /// Write attribute `k` of `prim` into PB-Attributes.
    AttrWrite {
        /// The primitive whose attribute is written.
        prim: PrimitiveId,
        /// Attribute index within the primitive.
        k: u8,
    },
}

/// The Polygon List Builder write stream in program order: for each
/// primitive, its PMD appends (tiles in id order — the row-major order the
/// bounding-box walk discovers them) followed by its attribute writes.
pub fn plb_ops(frame: &BinnedFrame, order: &TraversalOrder) -> Vec<PlbOp> {
    let mut ops = Vec::with_capacity(frame.total_pmds() + frame.total_attrs());
    let mut list_len = vec![0u32; frame.num_tiles()];
    for p in frame.primitives() {
        let mut tiles: Vec<TileId> = p.tile_ranks.iter().map(|&r| order.tile_at(r)).collect();
        tiles.sort_unstable(); // discovery (row-major) order
        for t in tiles {
            let n = list_len[t.index()];
            list_len[t.index()] += 1;
            ops.push(PlbOp::PmdWrite {
                tile: t,
                n,
                prim: p.id,
            });
        }
        for k in 0..p.attr_count {
            ops.push(PlbOp::AttrWrite { prim: p.id, k });
        }
    }
    ops
}

/// One Tile Fetcher operation (§II.C reads; §III.D.1 completion signal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchOp {
    /// Read the PB-Lists block holding entries `first_n ..
    /// first_n + PMDS_PER_BLOCK` of `tile`'s list.
    ListRead {
        /// The tile whose list is read.
        tile: TileId,
        /// First PMD index covered by this block.
        first_n: u32,
    },
    /// Read all attributes of `prim` on behalf of `tile` (one
    /// primitive-granularity Attribute Cache request; `n` is the
    /// primitive's position in the tile list).
    PrimRead {
        /// The tile being rasterized.
        tile: TileId,
        /// Position in the tile's list (identifies the PMD consumed).
        n: u32,
        /// The primitive to fetch.
        prim: PrimitiveId,
    },
    /// The Tile Fetcher finished `tile` and signals the L2 (advances the
    /// dead-line watermark, §III.D.1).
    TileDone {
        /// The completed tile.
        tile: TileId,
    },
}

/// The Tile Fetcher read stream: tiles in traversal order; per tile, its
/// list blocks interleaved with the primitive reads they describe, then
/// the completion signal.
pub fn fetch_ops(frame: &BinnedFrame, order: &TraversalOrder) -> Vec<FetchOp> {
    let mut ops = Vec::new();
    for tile in order.iter() {
        let list = frame.tile_list(tile);
        for (n, &prim) in list.iter().enumerate() {
            let n = n as u32;
            if n.is_multiple_of(PMDS_PER_BLOCK) {
                ops.push(FetchOp::ListRead { tile, first_n: n });
            }
            ops.push(FetchOp::PrimRead { tile, n, prim });
        }
        ops.push(FetchOp::TileDone { tile });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::ScenePrimitive;
    use tcor_common::{Traversal, Tri2};

    fn grid() -> TileGrid {
        TileGrid::new(96, 96, 32) // 3x3 tiles
    }

    fn scanline(grid: &TileGrid) -> TraversalOrder {
        Traversal::Scanline.order(grid)
    }

    fn tri_at(x: f32, y: f32, w: f32, h: f32) -> Tri2 {
        Tri2::new((x, y), (x + w, y), (x, y + h))
    }

    fn small_scene() -> Scene {
        Scene::from_primitives(vec![
            // Covers tiles 0 and 1 (straddles x=32).
            ScenePrimitive {
                tri: tri_at(16.0, 4.0, 32.0, 8.0),
                attr_count: 2,
            },
            // Inside tile 4.
            ScenePrimitive {
                tri: tri_at(40.0, 40.0, 8.0, 8.0),
                attr_count: 3,
            },
        ])
    }

    #[test]
    fn binning_produces_expected_lists() {
        let g = grid();
        let order = scanline(&g);
        let frame = bin_scene(&small_scene(), &g, &order);
        assert_eq!(frame.binned.num_primitives(), 2);
        assert_eq!(frame.binned.tile_list(TileId(0)), &[PrimitiveId(0)]);
        assert_eq!(frame.binned.tile_list(TileId(1)), &[PrimitiveId(0)]);
        assert_eq!(frame.binned.tile_list(TileId(4)), &[PrimitiveId(1)]);
        assert!(frame.binned.tile_list(TileId(8)).is_empty());
    }

    #[test]
    fn fragment_estimates_spread_over_tiles() {
        let g = grid();
        let order = scanline(&g);
        let frame = bin_scene(&small_scene(), &g, &order);
        // Prim 0 area = 128, split over two tiles.
        assert!((frame.fragments_per_tile[0] - 64.0).abs() < 1e-9);
        assert!((frame.fragments_per_tile[1] - 64.0).abs() < 1e-9);
        // Prim 1 area = 32, one tile.
        assert!((frame.fragments_per_tile[4] - 32.0).abs() < 1e-9);
        assert!((frame.total_fragments() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn plb_stream_is_program_order_pmds_then_attrs() {
        let g = grid();
        let order = scanline(&g);
        let frame = bin_scene(&small_scene(), &g, &order);
        let ops = plb_ops(&frame.binned, &order);
        assert_eq!(
            ops,
            vec![
                PlbOp::PmdWrite {
                    tile: TileId(0),
                    n: 0,
                    prim: PrimitiveId(0)
                },
                PlbOp::PmdWrite {
                    tile: TileId(1),
                    n: 0,
                    prim: PrimitiveId(0)
                },
                PlbOp::AttrWrite {
                    prim: PrimitiveId(0),
                    k: 0
                },
                PlbOp::AttrWrite {
                    prim: PrimitiveId(0),
                    k: 1
                },
                PlbOp::PmdWrite {
                    tile: TileId(4),
                    n: 0,
                    prim: PrimitiveId(1)
                },
                PlbOp::AttrWrite {
                    prim: PrimitiveId(1),
                    k: 0
                },
                PlbOp::AttrWrite {
                    prim: PrimitiveId(1),
                    k: 1
                },
                PlbOp::AttrWrite {
                    prim: PrimitiveId(1),
                    k: 2
                },
            ]
        );
    }

    #[test]
    fn fetch_stream_visits_tiles_in_order_with_done_signals() {
        let g = grid();
        let order = scanline(&g);
        let frame = bin_scene(&small_scene(), &g, &order);
        let ops = fetch_ops(&frame.binned, &order);
        // 9 TileDone signals, one per tile, in order.
        let dones: Vec<TileId> = ops
            .iter()
            .filter_map(|op| match op {
                FetchOp::TileDone { tile } => Some(*tile),
                _ => None,
            })
            .collect();
        assert_eq!(dones, (0..9).map(TileId).collect::<Vec<_>>());
        // Tile 0: one list block read then the primitive read.
        assert_eq!(
            &ops[..3],
            &[
                FetchOp::ListRead {
                    tile: TileId(0),
                    first_n: 0
                },
                FetchOp::PrimRead {
                    tile: TileId(0),
                    n: 0,
                    prim: PrimitiveId(0)
                },
                FetchOp::TileDone { tile: TileId(0) },
            ]
        );
    }

    #[test]
    fn list_blocks_read_once_per_16_pmds() {
        let g = grid();
        let order = scanline(&g);
        // 20 primitives all in tile 0 -> 2 list blocks.
        let prims: Vec<ScenePrimitive> = (0..20)
            .map(|_| ScenePrimitive {
                tri: tri_at(2.0, 2.0, 4.0, 4.0),
                attr_count: 1,
            })
            .collect();
        let frame = bin_scene(&Scene::from_primitives(prims), &g, &order);
        let ops = fetch_ops(&frame.binned, &order);
        let list_reads = ops
            .iter()
            .filter(|op| matches!(op, FetchOp::ListRead { .. }))
            .count();
        assert_eq!(list_reads, 2);
    }

    #[test]
    fn exact_overlap_bins_fewer_tiles_for_thin_diagonals() {
        let g = grid();
        let order = scanline(&g);
        // A thin diagonal across the whole 96x96 screen: its bbox covers
        // all 9 tiles, but the triangle itself only touches the ones the
        // hypotenuse passes through.
        let scene = Scene::from_primitives(vec![ScenePrimitive {
            tri: Tri2::new((0.0, 0.0), (95.0, 0.0), (0.0, 95.0)),
            attr_count: 1,
        }]);
        let bbox = bin_scene_with(&scene, &g, &order, OverlapTest::BoundingBox);
        let exact = bin_scene_with(&scene, &g, &order, OverlapTest::Exact);
        assert_eq!(bbox.binned.total_pmds(), 9);
        assert!(exact.binned.total_pmds() < 9);
        // The far corner tile (2,2) is beyond the hypotenuse.
        assert!(exact.binned.tile_list(g.tile_id(2, 2)).is_empty());
        // Tiles along the diagonal stay binned.
        assert!(!exact.binned.tile_list(g.tile_id(0, 0)).is_empty());
        assert!(!exact.binned.tile_list(g.tile_id(2, 0)).is_empty());
    }

    #[test]
    fn exact_overlap_is_subset_of_bbox_overlap() {
        let g = grid();
        let order = scanline(&g);
        let prims: Vec<ScenePrimitive> = (0..40)
            .map(|i| {
                let x = (i as f32 * 13.0) % 80.0;
                let y = (i as f32 * 29.0) % 80.0;
                ScenePrimitive {
                    tri: Tri2::new((x, y), (x + 30.0, y + 5.0), (x + 3.0, y + 33.0)),
                    attr_count: 2,
                }
            })
            .collect();
        let scene = Scene::from_primitives(prims);
        let bbox = bin_scene_with(&scene, &g, &order, OverlapTest::BoundingBox);
        let exact = bin_scene_with(&scene, &g, &order, OverlapTest::Exact);
        assert!(exact.binned.total_pmds() <= bbox.binned.total_pmds());
        for t in 0..9u32 {
            let b = bbox.binned.tile_list(TileId(t));
            for p in exact.binned.tile_list(TileId(t)) {
                assert!(b.contains(p), "exact binned {p:?} in T{t} but bbox did not");
            }
        }
    }

    #[test]
    fn empty_scene_still_signals_all_tiles() {
        let g = grid();
        let order = scanline(&g);
        let frame = bin_scene(&Scene::new(), &g, &order);
        let ops = fetch_ops(&frame.binned, &order);
        assert_eq!(ops.len(), 9); // 9 TileDone, nothing else
    }
}
