//! # tcor-gpu
//!
//! The Tile-Based Rendering pipeline substrate (Fig. 2 of the paper):
//! everything the TCOR memory hierarchy is embedded in, modeled at
//! transaction level.
//!
//! * [`scene`] — screen-space scenes (the Geometry Pipeline's output
//!   domain): triangles with attribute counts.
//! * [`geometry`] — the Geometry Pipeline: frustum/viewport culling and
//!   the vertex-fetch traffic stream it sends through the Vertex Cache.
//! * [`binner`] — the Polygon List Builder: bins a scene into a
//!   [`tcor_pbuf::BinnedFrame`], estimates per-tile fragment load, and
//!   materializes the two Tiling Engine access streams ([`PlbOp`] writes
//!   and [`FetchOp`] reads) that the cache hierarchies replay.
//! * [`raster`] — the Raster Pipeline's *other* memory traffic (textures,
//!   shader instructions, color-buffer flushes) that shares the L2 with
//!   the Parameter Buffer and feeds the energy model.
//! * [`timing`] — an MSHR-overlap timing model for the Tile Fetcher,
//!   producing the primitives-per-cycle metric of Figs. 23–24.
//!
//! The paper evaluated on TEAPOT running real Android games; this crate is
//! the substitution documented in `DESIGN.md`: the PB access stream is
//! *exactly* determined by binned geometry plus traversal order, both of
//! which are modeled faithfully.
//!
//! ```
//! use tcor_common::{TileGrid, Traversal, Tri2};
//! use tcor_gpu::{bin_scene, plb_ops, fetch_ops, Scene, ScenePrimitive};
//!
//! let grid = TileGrid::new(96, 96, 32);
//! let order = Traversal::ZOrder.order(&grid);
//! let mut scene = Scene::new();
//! scene.push(ScenePrimitive {
//!     tri: Tri2::new((4.0, 4.0), (60.0, 4.0), (4.0, 60.0)),
//!     attr_count: 3,
//! });
//! let frame = bin_scene(&scene, &grid, &order);
//! // The two Tiling Engine streams both systems replay:
//! assert!(!plb_ops(&frame.binned, &order).is_empty());
//! assert!(!fetch_ops(&frame.binned, &order).is_empty());
//! ```

pub mod binner;
pub mod geometry;
pub mod raster;
pub mod scene;
pub mod timing;
pub mod transform;

pub use binner::{
    bin_scene, bin_scene_with, fetch_ops, plb_ops, FetchOp, Frame, OverlapTest, PlbOp,
};
pub use geometry::{GeometryOutput, GeometryPipeline, PostTransformCache};
pub use raster::{RasterParams, RasterTraffic};
pub use scene::{Scene, ScenePrimitive};
pub use timing::MshrTiming;
pub use transform::{project_triangle, transform_scene, Mat4, Vec3, WorldPrimitive};
