//! Screen-space scenes.
//!
//! A scene is the Geometry Pipeline's output for one frame: an ordered
//! list of screen-space triangles, each with the attribute count the
//! vertex program produced (colors, normals, texture coordinates… —
//! 1..=15, average ≈ 3 per the paper §III.C).

use tcor_common::Tri2;

/// One assembled primitive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenePrimitive {
    /// The screen-space triangle.
    pub tri: Tri2,
    /// Number of vertex attributes (1..=15).
    pub attr_count: u8,
}

/// An ordered list of primitives for one frame, in program order (the
/// order the Polygon List Builder receives them).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Scene {
    prims: Vec<ScenePrimitive>,
}

impl Scene {
    /// An empty scene.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a scene from primitives in program order.
    pub fn from_primitives(prims: Vec<ScenePrimitive>) -> Self {
        Scene { prims }
    }

    /// Appends a primitive.
    pub fn push(&mut self, prim: ScenePrimitive) {
        self.prims.push(prim);
    }

    /// The primitives in program order.
    pub fn primitives(&self) -> &[ScenePrimitive] {
        &self.prims
    }

    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.prims.len()
    }

    /// Whether the scene is empty.
    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }

    /// Total attribute count (the PB-Attributes footprint in blocks).
    pub fn total_attrs(&self) -> usize {
        self.prims.iter().map(|p| p.attr_count as usize).sum()
    }

    /// Mean attribute count per primitive.
    pub fn avg_attrs(&self) -> f64 {
        if self.prims.is_empty() {
            0.0
        } else {
            self.total_attrs() as f64 / self.prims.len() as f64
        }
    }
}

impl FromIterator<ScenePrimitive> for Scene {
    fn from_iter<I: IntoIterator<Item = ScenePrimitive>>(iter: I) -> Self {
        Scene {
            prims: iter.into_iter().collect(),
        }
    }
}

impl Extend<ScenePrimitive> for Scene {
    fn extend<I: IntoIterator<Item = ScenePrimitive>>(&mut self, iter: I) {
        self.prims.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Tri2 {
        Tri2::new((0.0, 0.0), (10.0, 0.0), (0.0, 10.0))
    }

    #[test]
    fn scene_accumulates() {
        let mut s = Scene::new();
        assert!(s.is_empty());
        s.push(ScenePrimitive {
            tri: tri(),
            attr_count: 3,
        });
        s.push(ScenePrimitive {
            tri: tri(),
            attr_count: 5,
        });
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_attrs(), 8);
        assert!((s.avg_attrs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn collect_from_iterator() {
        let s: Scene = (0..4)
            .map(|_| ScenePrimitive {
                tri: tri(),
                attr_count: 2,
            })
            .collect();
        assert_eq!(s.len(), 4);
    }
}
