//! The Vertex Stage's 3D transform path (§II.A): model/view/projection
//! matrices, near-plane culling, perspective divide and the viewport
//! transform that turns world-space geometry into the screen-space
//! triangles the binner consumes.
//!
//! The calibrated Table II workloads synthesize directly in screen space
//! (their statistics are what matters); this module exists for scenes
//! authored in 3D — see `examples/camera_orbit.rs`.

use crate::scene::{Scene, ScenePrimitive};
use tcor_common::Tri2;

/// A 3D point.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Vec3 {
    /// Creates a vector.
    pub fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    fn normalize(self) -> Vec3 {
        let len = self.dot(self).sqrt();
        if len == 0.0 {
            self
        } else {
            Vec3::new(self.x / len, self.y / len, self.z / len)
        }
    }
}

/// A world-space triangle with its attribute count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorldPrimitive {
    /// The three vertices.
    pub v: [Vec3; 3],
    /// Vertex attribute count (1..=15).
    pub attr_count: u8,
}

/// Column-major 4×4 matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4 {
    /// `m[col][row]`.
    pub m: [[f32; 4]; 4],
}

impl Mat4 {
    /// The identity matrix.
    pub fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        for (i, col) in m.iter_mut().enumerate() {
            col[i] = 1.0;
        }
        Mat4 { m }
    }

    /// Matrix product `self * rhs` (apply `rhs` first).
    pub fn mul(&self, rhs: &Mat4) -> Mat4 {
        let mut out = [[0.0f32; 4]; 4];
        for (c, out_col) in out.iter_mut().enumerate() {
            for (r, out_cell) in out_col.iter_mut().enumerate() {
                *out_cell = (0..4).map(|k| self.m[k][r] * rhs.m[c][k]).sum();
            }
        }
        Mat4 { m: out }
    }

    /// Translation.
    pub fn translate(t: Vec3) -> Mat4 {
        let mut m = Mat4::identity();
        m.m[3][0] = t.x;
        m.m[3][1] = t.y;
        m.m[3][2] = t.z;
        m
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotate_y(angle: f32) -> Mat4 {
        let (s, c) = angle.sin_cos();
        let mut m = Mat4::identity();
        m.m[0][0] = c;
        m.m[0][2] = -s;
        m.m[2][0] = s;
        m.m[2][2] = c;
        m
    }

    /// Right-handed perspective projection (OpenGL-style clip volume).
    ///
    /// # Panics
    ///
    /// Panics on non-positive `near`/`far` or degenerate aspect.
    pub fn perspective(fov_y_radians: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        assert!(near > 0.0 && far > near && aspect > 0.0);
        let f = 1.0 / (fov_y_radians / 2.0).tan();
        let mut m = Mat4 { m: [[0.0; 4]; 4] };
        m.m[0][0] = f / aspect;
        m.m[1][1] = f;
        m.m[2][2] = (far + near) / (near - far);
        m.m[2][3] = -1.0;
        m.m[3][2] = 2.0 * far * near / (near - far);
        m
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let f = target.sub(eye).normalize();
        let s = f.cross(up).normalize();
        let u = s.cross(f);
        let mut m = Mat4::identity();
        m.m[0][0] = s.x;
        m.m[1][0] = s.y;
        m.m[2][0] = s.z;
        m.m[0][1] = u.x;
        m.m[1][1] = u.y;
        m.m[2][1] = u.z;
        m.m[0][2] = -f.x;
        m.m[1][2] = -f.y;
        m.m[2][2] = -f.z;
        m.m[3][0] = -s.dot(eye);
        m.m[3][1] = -u.dot(eye);
        m.m[3][2] = f.dot(eye);
        m
    }

    /// Transforms a point, returning homogeneous `(x, y, z, w)`.
    pub fn transform(&self, p: Vec3) -> (f32, f32, f32, f32) {
        let col =
            |r: usize| self.m[0][r] * p.x + self.m[1][r] * p.y + self.m[2][r] * p.z + self.m[3][r];
        (col(0), col(1), col(2), col(3))
    }
}

/// Projects one world triangle through `mvp` into a `width`×`height`
/// screen. Returns `None` when any vertex lies behind the near plane
/// (conservative near culling — a full clipper would split the triangle)
/// or when the projected triangle misses the screen entirely.
pub fn project_triangle(tri: &[Vec3; 3], mvp: &Mat4, width: f32, height: f32) -> Option<Tri2> {
    let mut screen = [(0.0f32, 0.0f32); 3];
    for (i, v) in tri.iter().enumerate() {
        let (x, y, _z, w) = mvp.transform(*v);
        if w <= 1e-6 {
            return None; // behind the camera / on the near plane
        }
        let (ndc_x, ndc_y) = (x / w, y / w);
        screen[i] = (
            (ndc_x + 1.0) * 0.5 * width,
            (1.0 - ndc_y) * 0.5 * height, // screen Y grows downward
        );
    }
    let out = Tri2::new(screen[0], screen[1], screen[2]);
    out.bbox().clamp_to(width, height).map(|_| out)
}

/// Transforms a world-space scene into the screen-space [`Scene`] the
/// Tiling Engine bins: the Vertex Stage of Fig. 2.
pub fn transform_scene(prims: &[WorldPrimitive], mvp: &Mat4, width: f32, height: f32) -> Scene {
    prims
        .iter()
        .filter_map(|p| {
            project_triangle(&p.v, mvp, width, height).map(|tri| ScenePrimitive {
                tri,
                attr_count: p.attr_count,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_transform_is_identity() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        let (x, y, z, w) = Mat4::identity().transform(p);
        assert_eq!((x, y, z, w), (1.0, 2.0, 3.0, 1.0));
    }

    #[test]
    fn translation_moves_points() {
        let m = Mat4::translate(Vec3::new(10.0, -5.0, 2.0));
        let (x, y, z, _) = m.transform(Vec3::new(1.0, 1.0, 1.0));
        assert_eq!((x, y, z), (11.0, -4.0, 3.0));
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let m = Mat4::rotate_y(std::f32::consts::FRAC_PI_2);
        let (x, _, z, _) = m.transform(Vec3::new(1.0, 0.0, 0.0));
        assert!(x.abs() < 1e-6);
        assert!((z + 1.0).abs() < 1e-6, "x-axis rotates to -z, got z={z}");
    }

    #[test]
    fn matrix_mul_composes_right_to_left() {
        let t = Mat4::translate(Vec3::new(5.0, 0.0, 0.0));
        let r = Mat4::rotate_y(std::f32::consts::FRAC_PI_2);
        // (t * r): rotate first, then translate.
        let m = t.mul(&r);
        let (x, _, z, _) = m.transform(Vec3::new(1.0, 0.0, 0.0));
        assert!((x - 5.0).abs() < 1e-5);
        assert!((z + 1.0).abs() < 1e-5);
    }

    fn camera(width: f32, height: f32) -> Mat4 {
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_3, width / height, 0.1, 100.0);
        let view = Mat4::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        proj.mul(&view)
    }

    #[test]
    fn centered_point_projects_to_screen_center() {
        let (w, h) = (1960.0, 768.0);
        let mvp = camera(w, h);
        let tri = [
            Vec3::new(-0.01, -0.01, 0.0),
            Vec3::new(0.01, -0.01, 0.0),
            Vec3::new(0.0, 0.01, 0.0),
        ];
        let projected = project_triangle(&tri, &mvp, w, h).expect("visible");
        let bb = projected.bbox();
        let cx = (bb.x0 + bb.x1) / 2.0;
        let cy = (bb.y0 + bb.y1) / 2.0;
        assert!((cx - w / 2.0).abs() < 2.0, "center x {cx}");
        assert!((cy - h / 2.0).abs() < 2.0, "center y {cy}");
    }

    #[test]
    fn behind_camera_is_culled() {
        let (w, h) = (1960.0, 768.0);
        let mvp = camera(w, h);
        let tri = [
            Vec3::new(0.0, 0.0, 10.0), // camera is at z=5 looking at -z
            Vec3::new(1.0, 0.0, 10.0),
            Vec3::new(0.0, 1.0, 10.0),
        ];
        assert!(project_triangle(&tri, &mvp, w, h).is_none());
    }

    #[test]
    fn closer_triangles_project_larger() {
        let (w, h) = (1960.0, 768.0);
        let mvp = camera(w, h);
        let tri_at = |z: f32| {
            [
                Vec3::new(-0.5, -0.5, z),
                Vec3::new(0.5, -0.5, z),
                Vec3::new(0.0, 0.5, z),
            ]
        };
        let near = project_triangle(&tri_at(2.0), &mvp, w, h).unwrap();
        let far = project_triangle(&tri_at(-20.0), &mvp, w, h).unwrap();
        assert!(near.area() > 4.0 * far.area());
    }

    #[test]
    fn transform_scene_culls_and_converts() {
        let (w, h) = (1960.0, 768.0);
        let mvp = camera(w, h);
        let prims = vec![
            WorldPrimitive {
                v: [
                    Vec3::new(-0.5, -0.5, 0.0),
                    Vec3::new(0.5, -0.5, 0.0),
                    Vec3::new(0.0, 0.5, 0.0),
                ],
                attr_count: 3,
            },
            WorldPrimitive {
                v: [
                    Vec3::new(0.0, 0.0, 10.0),
                    Vec3::new(1.0, 0.0, 10.0),
                    Vec3::new(0.0, 1.0, 10.0),
                ],
                attr_count: 3,
            },
        ];
        let scene = transform_scene(&prims, &mvp, w, h);
        assert_eq!(scene.len(), 1, "behind-camera triangle culled");
    }
}
