//! The Geometry Pipeline: vertex fetch, (modeled) transform, primitive
//! assembly and viewport culling.
//!
//! The workload generator synthesizes scenes directly in screen space, so
//! the "transform" here is the viewport stage: primitives entirely outside
//! the screen are culled (they would have been frustum-culled). What the
//! memory hierarchy cares about is the *vertex-fetch traffic* this stage
//! pushes through the Vertex Cache toward the shared L2 — modeled as a
//! stream of block addresses over the input-geometry region with the
//! sharing factor of indexed triangle meshes (vertices shared by ~2
//! triangles on average in a strip-ordered mesh).

use crate::scene::Scene;
use tcor_common::BlockAddr;
use tcor_common::{Rect, TileGrid};
use tcor_pbuf::region::bases;

/// Bytes per vertex record in the input geometry (position + a couple of
/// attributes, pre-transform).
pub const VERTEX_BYTES: u64 = 32;

/// Entries in the post-transform vertex cache (the small FIFO real GPUs
/// place after the Vertex Stage so indexed meshes shade each vertex
/// once).
pub const POST_TRANSFORM_ENTRIES: usize = 16;

/// The post-transform vertex cache: a FIFO of recently shaded vertex
/// indices. A lookup hit means the vertex needs neither a memory fetch
/// nor a re-run of the vertex shader.
#[derive(Clone, Debug)]
pub struct PostTransformCache {
    fifo: std::collections::VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl PostTransformCache {
    /// Creates a cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "post-transform cache needs capacity");
        PostTransformCache {
            fifo: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a vertex index; on a miss the index is inserted (evicting
    /// the oldest). Returns whether it hit.
    pub fn lookup(&mut self, index: u64) -> bool {
        if self.fifo.contains(&index) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.fifo.len() == self.capacity {
            self.fifo.pop_front();
        }
        self.fifo.push_back(index);
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far (each one is a vertex fetch + shade).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The Geometry Pipeline stage.
#[derive(Clone, Debug)]
pub struct GeometryPipeline {
    grid: TileGrid,
}

/// Output of the Geometry Pipeline for one frame.
#[derive(Clone, Debug)]
pub struct GeometryOutput {
    /// Surviving primitives in program order (input to the Polygon List
    /// Builder).
    pub visible: Scene,
    /// Number of culled primitives.
    pub culled: usize,
    /// Vertex-fetch block addresses, in fetch order, through the Vertex
    /// Cache.
    pub vertex_fetch_blocks: Vec<BlockAddr>,
}

impl GeometryPipeline {
    /// Creates the stage for a screen described by `grid`.
    pub fn new(grid: TileGrid) -> Self {
        GeometryPipeline { grid }
    }

    /// Runs the frame: fetch vertices, assemble, cull.
    ///
    /// The vertex stream models an indexed triangle strip: triangle `i`
    /// uses vertex indices `{i, i+1, i+2}` with a strip restart every 24
    /// triangles (the workload generator's object granularity). A
    /// [`PostTransformCache`] filters the index stream — only misses
    /// fetch a vertex record from the input-geometry region.
    pub fn run(&self, scene: &Scene) -> GeometryOutput {
        let screen = Rect::new(
            0.0,
            0.0,
            self.grid.screen_width() as f32,
            self.grid.screen_height() as f32,
        );
        let mut visible = Scene::new();
        let mut culled = 0usize;
        let mut vertex_fetch_blocks = Vec::new();
        let mut ptc = PostTransformCache::new(POST_TRANSFORM_ENTRIES);
        for (i, prim) in scene.primitives().iter().enumerate() {
            // Strip restart between objects: indices jump so no sharing
            // crosses an object boundary.
            let object = (i / 24) as u64;
            let within = (i % 24) as u64;
            let base_index = object * 64 + within;
            for r in [base_index, base_index + 1, base_index + 2] {
                if !ptc.lookup(r) {
                    vertex_fetch_blocks
                        .push(tcor_common::Address(bases::VERTICES + r * VERTEX_BYTES).block());
                }
            }
            if prim.tri.bbox().clamp_to(screen.x1, screen.y1).is_some() {
                visible.push(*prim);
            } else {
                culled += 1;
            }
        }
        GeometryOutput {
            visible,
            culled,
            vertex_fetch_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::ScenePrimitive;
    use tcor_common::Tri2;

    fn prim(x: f32, y: f32) -> ScenePrimitive {
        ScenePrimitive {
            tri: Tri2::new((x, y), (x + 8.0, y), (x, y + 8.0)),
            attr_count: 3,
        }
    }

    #[test]
    fn culls_offscreen_primitives() {
        let grid = TileGrid::new(64, 64, 32);
        let gp = GeometryPipeline::new(grid);
        let scene = Scene::from_primitives(vec![prim(10.0, 10.0), prim(-100.0, -100.0)]);
        let out = gp.run(&scene);
        assert_eq!(out.visible.len(), 1);
        assert_eq!(out.culled, 1);
    }

    #[test]
    fn vertex_traffic_reflects_strip_sharing() {
        let grid = TileGrid::new(64, 64, 32);
        let gp = GeometryPipeline::new(grid);
        let scene = Scene::from_primitives(vec![prim(0.0, 0.0); 10]);
        let out = gp.run(&scene);
        // Strip indexing through the post-transform cache: the first
        // triangle fetches 3 records, each further one only 1.
        assert_eq!(out.vertex_fetch_blocks.len(), 3 + 9);
    }

    #[test]
    fn strip_restart_breaks_sharing_at_object_boundaries() {
        let grid = TileGrid::new(64, 64, 32);
        let gp = GeometryPipeline::new(grid);
        // 25 triangles: object boundary after 24 -> a fresh 3-vertex fetch.
        let scene = Scene::from_primitives(vec![prim(0.0, 0.0); 25]);
        let out = gp.run(&scene);
        assert_eq!(out.vertex_fetch_blocks.len(), (3 + 23) + 3);
    }

    #[test]
    fn post_transform_cache_fifo_semantics() {
        let mut c = PostTransformCache::new(2);
        assert!(!c.lookup(1));
        assert!(!c.lookup(2));
        assert!(c.lookup(1), "still resident");
        assert!(!c.lookup(3), "evicts the oldest (1)");
        assert!(!c.lookup(1), "1 was evicted");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_post_transform_panics() {
        PostTransformCache::new(0);
    }

    #[test]
    fn vertex_blocks_live_in_vertices_region() {
        let grid = TileGrid::new(64, 64, 32);
        let gp = GeometryPipeline::new(grid);
        let scene = Scene::from_primitives(vec![prim(0.0, 0.0); 4]);
        let out = gp.run(&scene);
        for b in &out.vertex_fetch_blocks {
            assert_eq!(tcor_pbuf::Region::of_block(*b), tcor_pbuf::Region::Vertices);
        }
    }

    #[test]
    fn empty_scene_is_empty_output() {
        let grid = TileGrid::new(64, 64, 32);
        let out = GeometryPipeline::new(grid).run(&Scene::new());
        assert!(out.visible.is_empty());
        assert_eq!(out.culled, 0);
        assert!(out.vertex_fetch_blocks.is_empty());
    }
}
