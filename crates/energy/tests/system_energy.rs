//! Integration: the energy model against full-system frames — every
//! energy component and its response to the TCOR organization.

use tcor::{BaselineSystem, SystemConfig, TcorSystem};
use tcor_common::Tri2;
use tcor_energy::EnergyModel;
use tcor_gpu::{Scene, ScenePrimitive};
use tcor_pbuf::Region;

/// A mesh-ordered scene large enough to pressure the 64 KiB Tile Cache.
fn scene(n: u32) -> Scene {
    (0..n)
        .map(|i| {
            let obj = i / 30;
            let k = i % 30;
            let ox = ((obj * 211) % 1700) as f32;
            let oy = ((obj * 137) % 650) as f32;
            let x = ox + (k % 6) as f32 * 18.0;
            let y = oy + (k / 6) as f32 * 18.0;
            ScenePrimitive {
                tri: Tri2::new((x, y), (x + 40.0, y), (x, y + 40.0)),
                attr_count: 1 + (i % 5) as u8,
            }
        })
        .collect()
}

#[test]
fn dram_dominates_cache_energy_and_tcor_reduces_it() {
    let s = scene(3000);
    let model = EnergyModel::default();
    let base = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&s);
    let tcor = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&s);
    let eb = model.evaluate(&base);
    let et = model.evaluate(&tcor);
    // Component structure: DRAM is the dominant hierarchy term.
    assert!(eb.dram_pj > eb.l2_pj && eb.dram_pj > eb.l1_pj);
    // TCOR's saving comes from DRAM and L2 activity.
    assert!(et.dram_pj < eb.dram_pj, "{} vs {}", et.dram_pj, eb.dram_pj);
    assert!(et.memory_hierarchy_pj() < eb.memory_hierarchy_pj());
    // Compute energy is identical: same scene, same fragments shaded.
    assert!((et.compute_pj - eb.compute_pj).abs() < 1e-6 * eb.compute_pj);
}

#[test]
fn tcor_frame_is_never_slower() {
    let s = scene(3000);
    let model = EnergyModel::default();
    let base = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&s);
    let tcor = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&s);
    let fb = model.evaluate(&base);
    let ft = model.evaluate(&tcor);
    assert!(ft.frame_cycles <= fb.frame_cycles);
    assert!(ft.fps(600_000_000) >= fb.fps(600_000_000));
}

#[test]
fn l2_enhancement_energy_is_incremental() {
    let s = scene(3000);
    let model = EnergyModel::default();
    let nol2 =
        TcorSystem::new(SystemConfig::paper_tcor_64k().without_l2_enhancements()).run_frame(&s);
    let full = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&s);
    assert!(
        model.evaluate(&full).memory_hierarchy_pj() <= model.evaluate(&nol2).memory_hierarchy_pj()
    );
}

#[test]
fn traffic_composition_is_plausible() {
    // The frame buffer flush and texture streams must be a large share of
    // DRAM traffic (the paper's Fig. 18 denominators), or the PB share —
    // and thus TCOR's total impact — would be distorted.
    let s = scene(3000);
    let base = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&s);
    let fb = base.mm_traffic.region(Region::FrameBuffer).mm_total();
    let tex = base.mm_traffic.region(Region::Textures).mm_total();
    let pb = base.pb_mm_accesses();
    let total = base.total_mm_accesses();
    assert!(fb + tex > total / 2, "other traffic should dominate DRAM");
    let pb_share = pb as f64 / total as f64;
    assert!(
        (0.02..0.5).contains(&pb_share),
        "PB share {pb_share:.2} outside the paper's plausible band"
    );
}
