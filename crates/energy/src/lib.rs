//! # tcor-energy
//!
//! The energy model — the McPAT/DRAMSim2-power substitution documented in
//! `DESIGN.md`. An analytic CACTI-style model assigns each SRAM structure
//! a per-access energy growing with √capacity plus capacity-proportional
//! leakage; DRAM accesses carry a fixed (much larger) per-64-byte energy;
//! compute energy scales with executed shader instructions, shaded
//! fragments and transformed primitives.
//!
//! Every figure in the paper reports energy **normalized to the
//! baseline**, so only the *ratios* between the coefficients matter: L1 ≪
//! L2 ≪ DRAM for accesses, and the compute share calibrated so the memory
//! hierarchy is a plausible fraction of total GPU energy (the paper's
//! 13.8% memory-hierarchy saving translating to ~5.5% of total GPU
//! energy implies memory ≈ 40% of the total).
//!
//! ```
//! use tcor_energy::{EnergyModel, EnergyParams};
//!
//! let model = EnergyModel::new(EnergyParams::default_32nm());
//! // 64 KiB L1 access costs less than a 1 MiB L2 access...
//! assert!(model.sram_access_pj(64 << 10) < model.sram_access_pj(1 << 20));
//! // ...which costs far less than a DRAM access.
//! assert!(model.sram_access_pj(1 << 20) * 10.0 < model.params().dram_access_pj);
//! ```

pub mod model;

pub use model::{EnergyBreakdown, EnergyModel, EnergyParams};
