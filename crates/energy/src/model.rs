//! The analytic energy model and per-frame evaluation.

use tcor::FrameReport;

/// Model coefficients. All energies in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyParams {
    /// Fixed part of an SRAM access.
    pub sram_base_pj: f64,
    /// Capacity-dependent part: `coef * sqrt(KiB)` per access.
    pub sram_sqrt_pj: f64,
    /// One 64-byte DRAM access (row activity amortized).
    pub dram_access_pj: f64,
    /// SRAM leakage per KiB per core cycle.
    pub leak_pj_per_kib_cycle: f64,
    /// One executed shader instruction (full core: fetch, registers,
    /// ALU).
    pub shader_instr_pj: f64,
    /// Fixed-function work per shaded fragment (raster, z-test, blend).
    pub fragment_pj: f64,
    /// Geometry work per primitive (vertex shading, clipping, binning
    /// compute).
    pub primitive_pj: f64,
    /// L2 capacity in bytes (for its access energy and leakage).
    pub l2_bytes: u64,
    /// Core clock in Hz (converts cycles to time for FPS).
    pub clock_hz: u64,
}

impl EnergyParams {
    /// Coefficients for the paper's 32 nm, 1 V, 600 MHz node (Table I),
    /// calibrated so that (a) access energies order L1 < L2 ≪ DRAM with
    /// CACTI-like ratios and (b) the memory hierarchy is roughly 40% of
    /// total GPU energy on the benchmark suite, matching the ratio between
    /// the paper's 13.8% memory-hierarchy and 5.5% total-GPU savings.
    pub fn default_32nm() -> Self {
        EnergyParams {
            sram_base_pj: 10.0,
            sram_sqrt_pj: 3.5,
            dram_access_pj: 20_000.0,
            leak_pj_per_kib_cycle: 0.013,
            shader_instr_pj: 650.0,
            fragment_pj: 80.0,
            primitive_pj: 1500.0,
            l2_bytes: 1 << 20,
            clock_hz: 600_000_000,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::default_32nm()
    }
}

/// Energy totals for one frame, in picojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// All L1 structures: dynamic access energy.
    pub l1_pj: f64,
    /// L2 dynamic access energy.
    pub l2_pj: f64,
    /// DRAM dynamic access energy.
    pub dram_pj: f64,
    /// SRAM leakage over the frame (L1s + L2).
    pub leakage_pj: f64,
    /// Compute energy (shader instructions + fixed-function + geometry).
    pub compute_pj: f64,
    /// Frame length in cycles (for FPS).
    pub frame_cycles: f64,
}

impl EnergyBreakdown {
    /// The paper's "memory hierarchy energy" (Figures 20–21): all cache
    /// and DRAM activity plus SRAM leakage.
    pub fn memory_hierarchy_pj(&self) -> f64 {
        self.l1_pj + self.l2_pj + self.dram_pj + self.leakage_pj
    }

    /// Total GPU energy (Figure 22).
    pub fn total_pj(&self) -> f64 {
        self.memory_hierarchy_pj() + self.compute_pj
    }

    /// Frames per second at the model's clock.
    pub fn fps(&self, clock_hz: u64) -> f64 {
        if self.frame_cycles <= 0.0 {
            0.0
        } else {
            clock_hz as f64 / self.frame_cycles
        }
    }
}

/// The energy model.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with the given coefficients.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The coefficients.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Per-access energy of an SRAM of `bytes` capacity.
    pub fn sram_access_pj(&self, bytes: u64) -> f64 {
        self.params.sram_base_pj + self.params.sram_sqrt_pj * ((bytes as f64) / 1024.0).sqrt()
    }

    /// Leakage of an SRAM of `bytes` capacity over `cycles`.
    pub fn sram_leak_pj(&self, bytes: u64, cycles: f64) -> f64 {
        self.params.leak_pj_per_kib_cycle * (bytes as f64 / 1024.0) * cycles
    }

    /// Frame length in cycles: the Polygon List Builder runs first (it
    /// produces the Parameter Buffer the fetcher consumes), then the Tile
    /// Fetcher and Raster Pipeline overlap tile by tile — each tile's
    /// rasterization waits for its primitives, so the overlapped phase
    /// costs Σ max(fetch, raster) per tile (the report's
    /// `coupled_cycles`). Falls back to the coarse max when a report
    /// carries no coupling data.
    pub fn frame_cycles(&self, report: &FrameReport) -> f64 {
        let overlapped = if report.coupled_cycles > 0.0 {
            report.coupled_cycles
        } else {
            (report.fetch_cycles as f64).max(report.raster_cycles)
        };
        report.plb_cycles as f64 + overlapped
    }

    /// Evaluates one frame report.
    pub fn evaluate(&self, report: &FrameReport) -> EnergyBreakdown {
        let frame_cycles = self.frame_cycles(report);

        let mut l1_pj = 0.0;
        let mut leakage_pj = 0.0;
        for s in &report.structures {
            let per_access = self.sram_access_pj(s.size_bytes);
            // Write-backs and bypasses are extra array reads/writes.
            let activity = s.stats.accesses() + s.stats.writebacks + s.stats.bypasses;
            l1_pj += per_access * activity as f64;
            leakage_pj += self.sram_leak_pj(s.size_bytes, frame_cycles) * s.instances as f64;
        }

        let l2_accesses = report.total_l2_accesses() + report.l2_stats.writebacks;
        let l2_pj = self.sram_access_pj(self.params.l2_bytes) * l2_accesses as f64;
        leakage_pj += self.sram_leak_pj(self.params.l2_bytes, frame_cycles);

        let dram_pj = self.params.dram_access_pj * report.total_mm_accesses() as f64;

        let compute_pj = self.params.shader_instr_pj * report.shader_instructions
            + self.params.fragment_pj * report.fragments
            + self.params.primitive_pj * report.num_primitives as f64;

        EnergyBreakdown {
            l1_pj,
            l2_pj,
            dram_pj,
            leakage_pj,
            compute_pj,
            frame_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor::{BaselineSystem, SystemConfig, TcorSystem};
    use tcor_common::Tri2;
    use tcor_gpu::{Scene, ScenePrimitive};

    fn scene(n: u32) -> Scene {
        (0..n)
            .map(|i| {
                let x = (i as f32 * 97.0) % 1800.0;
                let y = (i as f32 * 53.0) % 700.0;
                ScenePrimitive {
                    tri: Tri2::new((x, y), (x + 60.0, y), (x, y + 60.0)),
                    attr_count: 1 + (i % 5) as u8,
                }
            })
            .collect()
    }

    #[test]
    fn access_energy_grows_with_capacity() {
        let m = EnergyModel::default();
        let e16 = m.sram_access_pj(16 << 10);
        let e64 = m.sram_access_pj(64 << 10);
        let e1m = m.sram_access_pj(1 << 20);
        assert!(e16 < e64 && e64 < e1m);
        assert!(m.params().dram_access_pj > 50.0 * e1m);
    }

    #[test]
    fn breakdown_components_are_positive_on_a_real_frame() {
        let r = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&scene(500));
        let e = EnergyModel::default().evaluate(&r);
        assert!(e.l1_pj > 0.0);
        assert!(e.l2_pj > 0.0);
        assert!(e.dram_pj > 0.0);
        assert!(e.leakage_pj > 0.0);
        assert!(e.compute_pj > 0.0);
        assert!(e.total_pj() > e.memory_hierarchy_pj());
        assert!(e.fps(600_000_000) > 0.0);
    }

    #[test]
    fn tcor_consumes_less_memory_hierarchy_energy_under_pressure() {
        let s = scene(3000);
        let base = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&s);
        let tcor = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&s);
        let m = EnergyModel::default();
        let eb = m.evaluate(&base);
        let et = m.evaluate(&tcor);
        assert!(
            et.memory_hierarchy_pj() < eb.memory_hierarchy_pj(),
            "tcor {} >= baseline {}",
            et.memory_hierarchy_pj(),
            eb.memory_hierarchy_pj()
        );
        assert!(et.total_pj() < eb.total_pj());
    }

    #[test]
    fn memory_share_of_total_is_plausible() {
        // The calibration target: memory hierarchy is a meaningful chunk
        // of total GPU energy (the paper's ratio 5.5/13.8 implies ~40%),
        // not >90% and not <10%.
        let r = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&scene(2000));
        let e = EnergyModel::default().evaluate(&r);
        let share = e.memory_hierarchy_pj() / e.total_pj();
        assert!(
            (0.15..=0.75).contains(&share),
            "memory share {share:.2} out of plausible band"
        );
    }

    #[test]
    fn fps_is_inverse_of_frame_cycles() {
        let e = EnergyBreakdown {
            frame_cycles: 6e6,
            ..Default::default()
        };
        assert!((e.fps(600_000_000) - 100.0).abs() < 1e-9);
        let zero = EnergyBreakdown::default();
        assert_eq!(zero.fps(600_000_000), 0.0);
    }
}
