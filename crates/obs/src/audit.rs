//! Conservation audits over a [`FrameReport`].
//!
//! Each invariant compares counters maintained at *independent* code
//! sites, so a bookkeeping bug at either site breaks the balance instead
//! of cancelling out:
//!
//! 1. **Classification** — every structure's probe count (bumped once at
//!    the access entry point) equals its classified hits + misses.
//! 2. **L2 classification** — same balance for the shared L2.
//! 3. **L2 demand** — the L2 engine's probe count equals the traffic
//!    matrix's total L2 accesses (recorded at the hierarchy entry, before
//!    the cache is consulted).
//! 4. **Write-back containment** — every block the L1 Tile Cache side
//!    writes back (tile$/list$ dirty evictions plus Attribute Cache
//!    dirty-eviction blocks) arrives at the L2 as a Parameter-Buffer
//!    write. Bypassed attribute writes also land there, so this is a `<=`.
//! 5. **DRAM PB fills** — Parameter-Buffer blocks counted at the L2's
//!    fill site equal the DRAM model's own PB read count (PB bytes from
//!    DRAM == fills x line size).
//! 6. **Disposal** — every dirty L2 eviction is either written to DRAM
//!    or dropped dead: `writebacks == wb_blocks + dead_drops`.
//! 7. **OPT optimality** — the Attribute Cache's self-check found no
//!    victim with a nearer next-use than a surviving candidate.

use tcor::FrameReport;

/// One failed conservation check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Short stable name of the invariant ("probes", "l2-demand", …).
    pub invariant: &'static str,
    /// Human-readable imbalance, with both sides of the equation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

fn check(
    out: &mut Vec<Violation>,
    invariant: &'static str,
    ok: bool,
    detail: impl FnOnce() -> String,
) {
    if !ok {
        out.push(Violation {
            invariant,
            detail: detail(),
        });
    }
}

/// Audits every conservation invariant of one frame report. `label`
/// names the cell (e.g. `"srs/tcor64"`) in the violation text. Returns
/// the empty vector when the report balances.
pub fn audit_report(label: &str, r: &FrameReport) -> Vec<Violation> {
    let mut v = Vec::new();

    // 1. Per-structure classification balance.
    for s in &r.structures {
        let classified = s.stats.hits() + s.stats.misses();
        check(&mut v, "probes", s.stats.probes == classified, || {
            format!(
                "{label}: {} probes {} != hits+misses {}",
                s.name, s.stats.probes, classified
            )
        });
    }

    // 2. L2 classification balance.
    let l2_classified = r.l2_stats.hits() + r.l2_stats.misses();
    check(&mut v, "probes", r.l2_stats.probes == l2_classified, || {
        format!(
            "{label}: L2 probes {} != hits+misses {}",
            r.l2_stats.probes, l2_classified
        )
    });

    // 3. L2 demand: engine-side probe count vs hierarchy-side traffic.
    let l2_demand = r.total_l2_accesses();
    check(&mut v, "l2-demand", r.l2_stats.probes == l2_demand, || {
        format!(
            "{label}: L2 probes {} != traffic-matrix L2 accesses {}",
            r.l2_stats.probes, l2_demand
        )
    });

    // 4. L1 write-backs are contained in the L2's PB write stream.
    let l1_pb_writebacks: u64 = r
        .structures
        .iter()
        .filter(|s| matches!(s.name, "tile$" | "list$"))
        .map(|s| s.stats.writebacks)
        .sum::<u64>()
        + r.attr_wb_blocks;
    check(
        &mut v,
        "wb-containment",
        l1_pb_writebacks <= r.pb_l2_writes(),
        || {
            format!(
                "{label}: L1 PB write-backs {} exceed PB writes at the L2 {}",
                l1_pb_writebacks,
                r.pb_l2_writes()
            )
        },
    );

    // 5. PB fills counted at the L2 fill site vs DRAM's own PB reads.
    check(
        &mut v,
        "pb-dram-fills",
        r.pb_fill_blocks == r.pb_mm_reads(),
        || {
            format!(
                "{label}: PB fill blocks {} != DRAM PB reads {}",
                r.pb_fill_blocks,
                r.pb_mm_reads()
            )
        },
    );

    // 6. Dirty-eviction disposal balance.
    let disposed = r.l2_wb_blocks + r.dead_drops;
    check(
        &mut v,
        "wb-disposal",
        r.l2_stats.writebacks == disposed,
        || {
            format!(
                "{label}: L2 writebacks {} != DRAM write-backs {} + dead drops {}",
                r.l2_stats.writebacks, r.l2_wb_blocks, r.dead_drops
            )
        },
    );

    // 7. OPT self-check.
    check(&mut v, "opt-victim", r.attr_opt_violations == 0, || {
        format!(
            "{label}: Attribute Cache evicted {} victim(s) with a nearer \
             next-use than a surviving candidate",
            r.attr_opt_violations
        )
    });

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor::{BaselineSystem, SystemConfig, TcorSystem};
    use tcor_common::Tri2;
    use tcor_gpu::{Scene, ScenePrimitive};

    fn scene(n: u32) -> Scene {
        (0..n)
            .map(|i| {
                let x = (i as f32 * 97.0) % 1800.0;
                let y = (i as f32 * 53.0) % 700.0;
                ScenePrimitive {
                    tri: Tri2::new((x, y), (x + 40.0, y), (x, y + 40.0)),
                    attr_count: 1 + (i % 5) as u8,
                }
            })
            .collect()
    }

    #[test]
    fn real_runs_balance() {
        let s = scene(800);
        for (label, r) in [
            (
                "base64",
                BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&s),
            ),
            (
                "tcor64",
                TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&s),
            ),
            (
                "tcor_nol2_64",
                TcorSystem::new(SystemConfig::paper_tcor_64k().without_l2_enhancements())
                    .run_frame(&s),
            ),
        ] {
            let violations = audit_report(label, &r);
            assert!(violations.is_empty(), "{label}: {violations:?}");
        }
    }

    #[test]
    fn each_tampered_counter_is_caught() {
        let s = scene(200);
        let clean = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&s);
        assert!(audit_report("clean", &clean).is_empty());

        type Tamper = fn(&mut tcor::FrameReport);
        let cases: [(&str, Tamper); 5] = [
            ("probes", |r| r.structures[0].stats.probes += 1),
            ("l2-demand", |r| r.l2_stats.probes += 1),
            ("pb-dram-fills", |r| r.pb_fill_blocks += 1),
            ("wb-disposal", |r| r.dead_drops += 1),
            ("opt-victim", |r| r.attr_opt_violations = 2),
        ];
        for (expect, tamper) in cases {
            let mut r = clean.clone();
            tamper(&mut r);
            let violations = audit_report("tampered", &r);
            assert!(
                violations.iter().any(|v| v.invariant == expect),
                "tampering should trip `{expect}`, got {violations:?}"
            );
        }
    }

    #[test]
    fn violation_displays_invariant_and_detail() {
        let v = Violation {
            invariant: "probes",
            detail: "x: tile$ probes 3 != hits+misses 2".to_string(),
        };
        assert_eq!(v.to_string(), "[probes] x: tile$ probes 3 != hits+misses 2");
    }
}
