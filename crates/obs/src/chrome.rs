//! Chrome trace-event export of a [`FrameTrace`].
//!
//! The output is the JSON object form of the trace-event format
//! (`{"traceEvents": [...]}`) that `chrome://tracing` and Perfetto load
//! directly. Cycle timestamps map 1:1 onto the format's microsecond
//! field — the viewer's time axis simply reads as cycles.

use tcor_common::{FrameTrace, TraceEvent, TracePhase};
use tcor_runner::Json;

/// Process/thread ids under which all events are filed (single simulated
/// Tiling Engine).
const PID: u64 = 1;

fn event_json(e: &TraceEvent) -> Json {
    let mut obj = vec![
        ("name".to_string(), Json::str(e.name.clone())),
        ("cat".to_string(), Json::str(e.cat)),
        ("ph".to_string(), Json::str(e.phase.code())),
        ("ts".to_string(), Json::UInt(e.ts)),
        ("pid".to_string(), Json::UInt(PID)),
        ("tid".to_string(), Json::UInt(PID)),
    ];
    if e.phase == TracePhase::Complete {
        obj.insert(4, ("dur".to_string(), Json::UInt(e.dur)));
    }
    if !e.args.is_empty() {
        obj.push((
            "args".to_string(),
            Json::Obj(
                e.args
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::UInt(*v)))
                    .collect(),
            ),
        ));
    }
    Json::Obj(obj)
}

/// Renders the trace as a Chrome trace-event JSON document.
pub fn chrome_trace_json(trace: &FrameTrace) -> String {
    let doc = Json::obj([
        (
            "traceEvents",
            Json::Arr(trace.events().iter().map(event_json).collect()),
        ),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj([("timeUnit", Json::str("gpu cycles"))]),
        ),
    ]);
    doc.render() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_phase_kinds() {
        let mut t = FrameTrace::enabled();
        t.complete("phase", "plb".to_string(), 0, 100, vec![]);
        t.counter("mshr", "mshr_outstanding", 50, vec![("in_flight", 3)]);
        t.instant("phase", "end of frame", 100);
        let json = chrome_trace_json(&t);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":100"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"in_flight\":3"));
        assert!(json.contains("\"ph\":\"i\""));
        // Counter/instant events carry no `dur` field.
        assert_eq!(json.matches("\"dur\":").count(), 1);
    }

    #[test]
    fn disabled_trace_renders_empty_event_list() {
        let json = chrome_trace_json(&FrameTrace::disabled());
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn traced_system_run_exports_nonempty_timeline() {
        use tcor::{SystemConfig, TcorSystem};
        use tcor_common::Tri2;
        use tcor_gpu::ScenePrimitive;
        let scene: tcor_gpu::Scene = (0..150u32)
            .map(|i| {
                let x = (i as f32 * 97.0) % 1800.0;
                let y = (i as f32 * 53.0) % 700.0;
                ScenePrimitive {
                    tri: Tri2::new((x, y), (x + 40.0, y), (x, y + 40.0)),
                    attr_count: 1 + (i % 5) as u8,
                }
            })
            .collect();
        let (_, trace) = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame_traced(&scene);
        let json = chrome_trace_json(&trace);
        assert!(json.contains("\"cat\":\"fetch\""));
        assert!(json.contains("\"name\":\"polygon list builder\""));
        assert!(json.contains("\"cat\":\"mshr\""));
    }
}
