//! Chrome trace-event export of the serving-plane request timeline.
//!
//! `tcor-serve` records one [`RequestSpan`] per answered request; this
//! module renders those spans in the same trace-event JSON dialect as
//! [`super::chrome`] so a serving run loads into `chrome://tracing` or
//! Perfetto next to a simulation timeline. Wall-clock milliseconds map
//! onto the format's microsecond field; spans are filed under one
//! thread per worker so queueing and coalescing are visible as lane
//! structure.

use tcor_runner::Json;

/// Process id under which all serve events are filed.
const PID: u64 = 2;

/// One answered request, as the server's timeline records it.
#[derive(Clone, Debug)]
pub struct RequestSpan {
    /// Request path ("/v1/cell/GTr/base64").
    pub endpoint: String,
    /// Worker index that answered it (trace lane).
    pub worker: u64,
    /// Start offset from server start, milliseconds.
    pub start_ms: f64,
    /// Wall time from accept to response written, milliseconds.
    pub wall_ms: f64,
    /// HTTP status sent.
    pub status: u16,
    /// How the body was produced: "compute" (simulated fresh),
    /// "cache" (memory-tier hit), "disk" (persistent-tier hit after a
    /// restart, promoted to memory), or "coalesced" (followed another
    /// in-flight request for the same key).
    pub source: &'static str,
}

fn span_json(s: &RequestSpan) -> Json {
    Json::obj([
        ("name", Json::str(s.endpoint.clone())),
        ("cat", Json::str("serve")),
        ("ph", Json::str("X")),
        ("ts", Json::UInt((s.start_ms * 1e3) as u64)),
        ("dur", Json::UInt((s.wall_ms * 1e3).max(1.0) as u64)),
        ("pid", Json::UInt(PID)),
        ("tid", Json::UInt(s.worker)),
        (
            "args",
            Json::obj([
                ("status", Json::UInt(s.status as u64)),
                ("source", Json::str(s.source)),
            ]),
        ),
    ])
}

/// Renders the request spans as a Chrome trace-event JSON document.
pub fn serve_timeline_json(spans: &[RequestSpan]) -> String {
    let doc = Json::obj([
        (
            "traceEvents",
            Json::Arr(spans.iter().map(span_json).collect()),
        ),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj([("timeUnit", Json::str("wall milliseconds"))]),
        ),
    ]);
    doc.render() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_spans_with_status_and_source() {
        let spans = vec![
            RequestSpan {
                endpoint: "/v1/cell/GTr/base64".to_string(),
                worker: 0,
                start_ms: 1.5,
                wall_ms: 20.0,
                status: 200,
                source: "compute",
            },
            RequestSpan {
                endpoint: "/v1/cell/GTr/base64".to_string(),
                worker: 1,
                start_ms: 2.0,
                wall_ms: 0.1,
                status: 200,
                source: "cache",
            },
            RequestSpan {
                endpoint: "/v1/cell/GTr/base64".to_string(),
                worker: 0,
                start_ms: 3.0,
                wall_ms: 0.4,
                status: 200,
                source: "disk",
            },
        ];
        let json = serve_timeline_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"serve\""));
        assert!(json.contains("\"source\":\"compute\""));
        assert!(json.contains("\"source\":\"cache\""));
        assert!(json.contains("\"source\":\"disk\""));
        assert!(json.contains("\"status\":200"));
        // Sub-microsecond spans still render a visible nonzero duration.
        assert!(json.contains("\"dur\":100"));
    }

    #[test]
    fn empty_timeline_is_a_valid_document() {
        assert!(serve_timeline_json(&[]).contains("\"traceEvents\":[]"));
    }
}
