//! Observability for the simulator: metric-conservation audits and
//! Chrome-trace export of the Tiling Engine timeline.
//!
//! Simulators rot silently: a counter bumped at the wrong site keeps
//! producing plausible tables. The audit module re-derives every headline
//! quantity from two *independent* counting sites (engine-side vs
//! hierarchy-side vs DRAM-side) and reports any imbalance as a
//! [`Violation`] — surfaced by `tcor-sim --audit` as
//! [`tcor_common::ErrorKind::Corruption`].
//!
//! The trace module renders a [`tcor_common::FrameTrace`] — collected by
//! `run_frame_traced` — as Chrome trace-event JSON (load in
//! `chrome://tracing` or Perfetto), via `tcor-sim --trace-out`. The
//! servetrace module renders the `tcor-serve` request timeline in the
//! same dialect, via `tcor-sim serve --serve-trace`.

pub mod audit;
pub mod chrome;
pub mod servetrace;

pub use audit::{audit_report, Violation};
pub use chrome::chrome_trace_json;
pub use servetrace::{serve_timeline_json, RequestSpan};
