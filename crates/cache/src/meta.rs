//! Per-access and per-line metadata carried through the cache engine.

/// Read or write request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; misses fill the line clean.
    Read,
    /// A store; write-allocate, the line becomes dirty.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Metadata attached to an access and stored with the filled line.
///
/// * `next_use` — a future-use priority: *larger means used farther in the
///   future*. Exact Belady simulation passes the absolute trace position of
///   the next access (`u64::MAX` for "never again"); TCOR's hardware OPT
///   passes the OPT Number (traversal rank of the next tile that needs the
///   datum). The OPT policy evicts the line with the greatest stored value.
/// * `user` — a free-form word for level-specific policies. The TCOR L2
///   packs the Parameter-Buffer kind and last-use tile rank here
///   (see `tcor-mem`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct AccessMeta {
    /// Future-use priority (`u64::MAX` = never used again).
    pub next_use: u64,
    /// Policy-specific user word.
    pub user: u64,
}

impl AccessMeta {
    /// Metadata for policies that ignore it (LRU and friends).
    pub const NONE: AccessMeta = AccessMeta {
        next_use: u64::MAX,
        user: 0,
    };

    /// Metadata carrying only a future-use priority.
    pub fn next_use(next_use: u64) -> Self {
        AccessMeta { next_use, user: 0 }
    }

    /// Metadata carrying a future-use priority and a user word.
    pub fn with_user(next_use: u64, user: u64) -> Self {
        AccessMeta { next_use, user }
    }

    /// Folds an incoming request's metadata into this stored line's.
    ///
    /// The future-use priority always refreshes — OPT replacement needs
    /// the *current* request's next use, and `u64::MAX` is a legitimate
    /// "never again". The user word only refreshes when the request
    /// actually carries one: `0` is the "no information" encoding (what
    /// [`AccessMeta::NONE`] and a `PbTag::NONE` both encode to), and a
    /// requester without PB knowledge must not erase the tag a resident
    /// line already carries.
    pub fn merge(&mut self, incoming: AccessMeta) {
        self.next_use = incoming.next_use;
        if incoming.user != 0 {
            self.user = incoming.user;
        }
    }
}

/// Result of one [`crate::Cache::access`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the request hit.
    pub hit: bool,
    /// A line displaced to make room (misses in full sets only).
    pub evicted: Option<crate::cache::Evicted>,
}

impl AccessOutcome {
    /// A hit outcome (nothing evicted).
    pub fn hit() -> Self {
        AccessOutcome {
            hit: true,
            evicted: None,
        }
    }

    /// True when the evicted line (if any) was dirty.
    pub fn evicted_dirty(&self) -> bool {
        self.evicted.is_some_and(|e| e.dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn meta_constructors() {
        assert_eq!(AccessMeta::NONE.next_use, u64::MAX);
        assert_eq!(AccessMeta::next_use(7).next_use, 7);
        let m = AccessMeta::with_user(7, 9);
        assert_eq!((m.next_use, m.user), (7, 9));
    }

    #[test]
    fn merge_refreshes_priority_and_keeps_user_when_absent() {
        let mut m = AccessMeta::with_user(5, 42);
        m.merge(AccessMeta::NONE);
        assert_eq!(m.user, 42, "zero user word must not erase the stored one");
        assert_eq!(m.next_use, u64::MAX, "priority always follows the request");
        m.merge(AccessMeta::with_user(9, 77));
        assert_eq!((m.next_use, m.user), (9, 77));
    }
}
