//! The set-associative cache engine.

use crate::index::Indexing;
use crate::meta::{AccessKind, AccessMeta, AccessOutcome};
use crate::policy::ReplacementPolicy;
use tcor_common::{AccessStats, BlockAddr, CacheParams};

/// One cache line's state, visible to replacement policies during victim
/// selection.
#[derive(Clone, Copy, Debug, Default)]
pub struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    meta: AccessMeta,
}

impl Line {
    /// Whether the line holds data.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// Whether the line has been written since fill.
    pub fn dirty(&self) -> bool {
        self.dirty
    }

    /// The block address stored in the line (meaningful when valid).
    pub fn addr(&self) -> BlockAddr {
        BlockAddr(self.tag)
    }

    /// The metadata stored with the line (future-use priority, user word).
    pub fn meta(&self) -> &AccessMeta {
        &self.meta
    }
}

/// A line displaced from the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced block.
    pub addr: BlockAddr,
    /// Whether it must be written back (unless the owner decides it is
    /// dead — the TCOR L2 enhancement).
    pub dirty: bool,
    /// The metadata it carried.
    pub meta: AccessMeta,
}

/// A write-back, write-allocate, set-associative cache driven by a
/// [`ReplacementPolicy`].
///
/// The engine models state transitions and statistics only — it carries no
/// payload bytes. Fully-associative geometry is a single set
/// (`CacheParams::ways == 0`).
#[derive(Clone, Debug)]
pub struct Cache<P> {
    params: CacheParams,
    indexing: Indexing,
    num_sets: usize,
    ways: usize,
    lines: Vec<Line>,
    policy: P,
    stats: AccessStats,
}

impl<P: ReplacementPolicy> Cache<P> {
    /// Creates an empty cache with the given geometry, index function and
    /// replacement policy.
    pub fn new(params: CacheParams, indexing: Indexing, mut policy: P) -> Self {
        let num_sets = params.num_sets() as usize;
        let ways = params.effective_ways() as usize;
        policy.attach(num_sets, ways);
        Cache {
            params,
            indexing,
            num_sets,
            ways,
            lines: vec![Line::default(); num_sets * ways],
            policy,
            stats: AccessStats::new(),
        }
    }

    /// The configured geometry.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::new();
    }

    /// The replacement policy (for inspecting dueling state etc.).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    fn set_of(&self, addr: BlockAddr) -> usize {
        self.indexing.set_of(addr.0, self.num_sets as u64) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    fn find(&self, set: usize, addr: BlockAddr) -> Option<usize> {
        self.lines[self.set_range(set)]
            .iter()
            .position(|l| l.valid && l.tag == addr.0)
    }

    /// Performs one access. On a miss in a full set, the policy selects a
    /// victim; the displaced line is returned in the outcome so the caller
    /// can model the write-back (or drop it as dead).
    pub fn access(&mut self, addr: BlockAddr, kind: AccessKind, meta: AccessMeta) -> AccessOutcome {
        // Entry-site probe count, deliberately separate from the hit/miss
        // classification below: the audit layer cross-checks
        // probes == hits + misses.
        self.stats.probes += 1;
        let set = self.set_of(addr);
        if let Some(way) = self.find(set, addr) {
            match kind {
                AccessKind::Read => self.stats.record_read(true),
                AccessKind::Write => self.stats.record_write(true),
            }
            let line = &mut self.lines[set * self.ways + way];
            line.dirty |= kind.is_write();
            line.meta.merge(meta);
            let merged = line.meta;
            self.policy.on_hit(set, way, &merged);
            return AccessOutcome::hit();
        }

        match kind {
            AccessKind::Read => self.stats.record_read(false),
            AccessKind::Write => self.stats.record_write(false),
        }

        let way = match self.lines[self.set_range(set)]
            .iter()
            .position(|l| !l.valid)
        {
            Some(invalid) => invalid,
            None => {
                let range = self.set_range(set);
                let way = self.policy.victim(set, &self.lines[range]);
                debug_assert!(way < self.ways, "policy returned way out of range");
                way
            }
        };

        let idx = set * self.ways + way;
        let evicted = if self.lines[idx].valid {
            let old = self.lines[idx];
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Some(Evicted {
                addr: BlockAddr(old.tag),
                dirty: old.dirty,
                meta: old.meta,
            })
        } else {
            None
        };

        self.lines[idx] = Line {
            valid: true,
            dirty: kind.is_write(),
            tag: addr.0,
            meta,
        };
        self.policy.on_fill(set, way, &meta);

        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// Installs `addr` as a clean line without touching the statistics —
    /// warm-start support (e.g. pre-loading the L2 with the previous
    /// frame's Parameter Buffer). A full set silently drops the policy's
    /// victim; a resident line just has its metadata merged in.
    pub fn fill_clean(&mut self, addr: BlockAddr, meta: AccessMeta) {
        let set = self.set_of(addr);
        if let Some(way) = self.find(set, addr) {
            let line = &mut self.lines[set * self.ways + way];
            line.meta.merge(meta);
            let merged = line.meta;
            self.policy.on_hit(set, way, &merged);
            return;
        }
        let way = match self.lines[self.set_range(set)]
            .iter()
            .position(|l| !l.valid)
        {
            Some(invalid) => invalid,
            None => {
                let range = self.set_range(set);
                self.policy.victim(set, &self.lines[range])
            }
        };
        self.lines[set * self.ways + way] = Line {
            valid: true,
            dirty: false,
            tag: addr.0,
            meta,
        };
        self.policy.on_fill(set, way, &meta);
    }

    /// Whether `addr` is currently cached (no state change).
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.find(self.set_of(addr), addr).is_some()
    }

    /// Reads a resident line's stored metadata (no state change).
    pub fn peek_meta(&self, addr: BlockAddr) -> Option<AccessMeta> {
        let set = self.set_of(addr);
        self.find(set, addr)
            .map(|way| self.lines[set * self.ways + way].meta)
    }

    /// Updates a resident line's metadata in place. Returns `false` when
    /// the block is not resident.
    pub fn update_meta(&mut self, addr: BlockAddr, f: impl FnOnce(&mut AccessMeta)) -> bool {
        let set = self.set_of(addr);
        if let Some(way) = self.find(set, addr) {
            f(&mut self.lines[set * self.ways + way].meta);
            true
        } else {
            false
        }
    }

    /// Removes `addr` from the cache, returning its state if present.
    pub fn invalidate(&mut self, addr: BlockAddr) -> Option<Evicted> {
        let set = self.set_of(addr);
        let way = self.find(set, addr)?;
        let idx = set * self.ways + way;
        let old = self.lines[idx];
        self.lines[idx] = Line::default();
        self.policy.on_invalidate(set, way);
        if old.dirty {
            self.stats.writebacks += 1;
        }
        Some(Evicted {
            addr: BlockAddr(old.tag),
            dirty: old.dirty,
            meta: old.meta,
        })
    }

    /// Drains every valid line (end-of-frame flush), returning them in
    /// arbitrary order. Statistics count the dirty ones as write-backs.
    pub fn drain(&mut self) -> Vec<Evicted> {
        let mut out = Vec::new();
        for idx in 0..self.lines.len() {
            if self.lines[idx].valid {
                let old = self.lines[idx];
                if old.dirty {
                    self.stats.writebacks += 1;
                }
                out.push(Evicted {
                    addr: BlockAddr(old.tag),
                    dirty: old.dirty,
                    meta: old.meta,
                });
                self.lines[idx] = Line::default();
                self.policy.on_invalidate(idx / self.ways, idx % self.ways);
            }
        }
        out
    }

    /// Iterates over all valid lines.
    pub fn iter_lines(&self) -> impl Iterator<Item = &Line> {
        self.lines.iter().filter(|l| l.valid)
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Lru;

    fn small() -> Cache<Lru> {
        // 4 lines, 2 ways, 2 sets.
        Cache::new(
            CacheParams::new(256, 64, 2, 1),
            Indexing::Modulo,
            Lru::new(),
        )
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(
            !c.access(BlockAddr(0), AccessKind::Read, AccessMeta::NONE)
                .hit
        );
        assert!(
            c.access(BlockAddr(0), AccessKind::Read, AccessMeta::NONE)
                .hit
        );
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn none_meta_hit_preserves_stored_user_word() {
        // Regression: a hit carrying AccessMeta::NONE used to overwrite the
        // resident line's meta wholesale, erasing its PB tag (user word) and
        // misclassifying live PB lines. The user word must survive; the
        // future-use priority must still refresh.
        let mut c = small();
        c.access(
            BlockAddr(0),
            AccessKind::Write,
            AccessMeta::with_user(7, 0xABC),
        );
        assert!(
            c.access(BlockAddr(0), AccessKind::Read, AccessMeta::NONE)
                .hit
        );
        let m = c.peek_meta(BlockAddr(0)).unwrap();
        assert_eq!(m.user, 0xABC, "NONE-meta hit must not erase the PB tag");
        assert_eq!(m.next_use, u64::MAX, "priority refreshes from the request");
        // A request that does carry a tag replaces the stored one.
        c.access(
            BlockAddr(0),
            AccessKind::Read,
            AccessMeta::with_user(3, 0xDEF),
        );
        assert_eq!(c.peek_meta(BlockAddr(0)).unwrap().user, 0xDEF);
    }

    #[test]
    fn fill_clean_on_resident_line_preserves_user_word() {
        let mut c = small();
        c.access(
            BlockAddr(0),
            AccessKind::Read,
            AccessMeta::with_user(7, 0xABC),
        );
        c.fill_clean(BlockAddr(0), AccessMeta::NONE);
        assert_eq!(c.peek_meta(BlockAddr(0)).unwrap().user, 0xABC);
    }

    #[test]
    fn probes_match_hits_plus_misses() {
        let mut c = small();
        c.access(BlockAddr(0), AccessKind::Read, AccessMeta::NONE);
        c.access(BlockAddr(0), AccessKind::Read, AccessMeta::NONE);
        c.access(BlockAddr(2), AccessKind::Write, AccessMeta::NONE);
        let s = c.stats();
        assert_eq!(s.probes, 3);
        assert_eq!(s.probes, s.hits() + s.misses());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds even blocks; fill ways with 0 and 2, touch 0, insert 4.
        c.access(BlockAddr(0), AccessKind::Read, AccessMeta::NONE);
        c.access(BlockAddr(2), AccessKind::Read, AccessMeta::NONE);
        c.access(BlockAddr(0), AccessKind::Read, AccessMeta::NONE);
        let out = c.access(BlockAddr(4), AccessKind::Read, AccessMeta::NONE);
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(2));
        assert!(c.contains(BlockAddr(0)));
        assert!(!c.contains(BlockAddr(2)));
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = small();
        c.access(BlockAddr(0), AccessKind::Write, AccessMeta::NONE);
        c.access(BlockAddr(2), AccessKind::Read, AccessMeta::NONE);
        let out = c.access(BlockAddr(4), AccessKind::Read, AccessMeta::NONE);
        let ev = out.evicted.unwrap();
        assert_eq!(ev.addr, BlockAddr(0));
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn read_fill_is_clean() {
        let mut c = small();
        c.access(BlockAddr(0), AccessKind::Read, AccessMeta::NONE);
        c.access(BlockAddr(2), AccessKind::Read, AccessMeta::NONE);
        let out = c.access(BlockAddr(4), AccessKind::Read, AccessMeta::NONE);
        assert!(!out.evicted.unwrap().dirty);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(BlockAddr(0), AccessKind::Write, AccessMeta::NONE);
        let ev = c.invalidate(BlockAddr(0)).unwrap();
        assert!(ev.dirty);
        assert!(!c.contains(BlockAddr(0)));
        assert!(c.invalidate(BlockAddr(0)).is_none());
    }

    #[test]
    fn drain_returns_everything_once() {
        let mut c = small();
        c.access(BlockAddr(0), AccessKind::Write, AccessMeta::NONE);
        c.access(BlockAddr(1), AccessKind::Read, AccessMeta::NONE);
        c.access(BlockAddr(2), AccessKind::Read, AccessMeta::NONE);
        let drained = c.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(c.occupancy(), 0);
        assert_eq!(drained.iter().filter(|e| e.dirty).count(), 1);
    }

    #[test]
    fn meta_updates_in_place() {
        let mut c = small();
        c.access(BlockAddr(0), AccessKind::Read, AccessMeta::next_use(5));
        assert_eq!(c.peek_meta(BlockAddr(0)).unwrap().next_use, 5);
        assert!(c.update_meta(BlockAddr(0), |m| m.next_use = 9));
        assert_eq!(c.peek_meta(BlockAddr(0)).unwrap().next_use, 9);
        assert!(!c.update_meta(BlockAddr(99), |m| m.next_use = 1));
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut c = Cache::new(
            CacheParams::new(256, 64, 0, 1),
            Indexing::Modulo,
            Lru::new(),
        );
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.ways(), 4);
        for b in 0..4u64 {
            c.access(BlockAddr(b * 17), AccessKind::Read, AccessMeta::NONE);
        }
        assert_eq!(c.occupancy(), 4);
        // A 5th distinct block evicts the oldest (block 0).
        let out = c.access(BlockAddr(1000), AccessKind::Read, AccessMeta::NONE);
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(0));
    }
}
