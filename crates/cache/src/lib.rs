//! # tcor-cache
//!
//! A trace-driven cache simulation engine with pluggable replacement
//! policies. This is the substrate under every cache in the TCOR
//! reproduction: the baseline unified Tile Cache, the Primitive List Cache,
//! the shared L2 (with TCOR's dead-line policy layered on top in
//! `tcor-mem`) and the replacement-policy studies of Figures 1 and 11–13.
//!
//! ## Engine
//!
//! [`Cache`] is a set-associative (or fully-associative) write-back,
//! write-allocate cache over 64-byte [`tcor_common::BlockAddr`]s. Victim
//! selection is delegated to a [`ReplacementPolicy`]; the engine carries a
//! small [`AccessMeta`] per line (a future-use priority and a free-form
//! user word) that policies may consult — this is how both exact
//! Belady-OPT (future timestamps) and TCOR's hardware OPT (12-bit OPT
//! Numbers) run on the same machinery.
//!
//! ## Policies
//!
//! LRU, MRU, FIFO, Random, tree-PLRU, NRU, SRRIP, BRRIP, DRRIP
//! (set-dueling, as compared in Fig. 13) and OPT (greatest-next-use, the
//! policy TCOR implements in hardware).
//!
//! ## Profilers
//!
//! [`profile::LruStackProfiler`] computes the *entire* LRU
//! miss-ratio-vs-size curve in one pass (Mattson et al. \[27\] — the very
//! paper that introduced OPT); [`profile::OptStackProfiler`] does the
//! same for fully-associative Belady-OPT. These regenerate Figures 1,
//! 11, 12 and 13 without re-simulating per point.
//!
//! ## Sharded replay
//!
//! Cache sets never interact, so for [set-local](ReplacementPolicy::set_local)
//! policies [`shard::ShardedTrace`] pre-buckets a trace by set index once
//! per geometry and [`shard::simulate_policy_shard_range`] replays dense
//! per-set streams through independent single-set caches —
//! bit-identical to the whole-cache run, friendlier to the memory
//! hierarchy, and embarrassingly parallel across set ranges.
//!
//! ```
//! use tcor_cache::{Cache, AccessKind, AccessMeta, Indexing, policy::Lru};
//! use tcor_common::{BlockAddr, CacheParams};
//!
//! let params = CacheParams::new(4096, 64, 4, 1);
//! let mut cache = Cache::new(params, Indexing::Modulo, Lru::new());
//! let out = cache.access(BlockAddr(42), AccessKind::Read, AccessMeta::NONE);
//! assert!(!out.hit); // cold miss
//! let out = cache.access(BlockAddr(42), AccessKind::Read, AccessMeta::NONE);
//! assert!(out.hit);
//! ```

pub mod cache;
pub mod index;
pub mod meta;
pub mod policy;
pub mod profile;
pub mod shard;
pub mod trace;

pub use cache::{Cache, Evicted};
pub use index::Indexing;
pub use meta::{AccessKind, AccessMeta, AccessOutcome};
pub use policy::ReplacementPolicy;
pub use shard::{simulate_policy_shard_range, simulate_policy_sharded, ShardCache, ShardedTrace};
pub use trace::{annotate_next_use, Access, Trace};
