//! Exact fully-associative Belady-OPT simulation.
//!
//! Keeps the resident set ordered by next-use time in a `BTreeSet`;
//! eviction pops the maximum. O(n log C) per capacity.

use crate::trace::{annotate_next_use, Access};
use std::collections::BTreeSet;
use tcor_common::BlockAddr;

/// Miss count of a fully-associative cache with `capacity_lines` lines
/// under exact Belady-OPT (evict the line re-referenced farthest in the
/// future; never-again lines first).
///
/// Returns `trace.len()` for zero capacity.
///
/// Annotates the trace internally; callers that already hold the
/// annotation (or need several capacities) should use
/// [`opt_misses_annotated`] or [`super::OptStackProfiler`].
pub fn opt_misses(trace: &[Access], capacity_lines: usize) -> u64 {
    if capacity_lines == 0 {
        return trace.len() as u64;
    }
    opt_misses_annotated(trace, &annotate_next_use(trace), capacity_lines)
}

/// [`opt_misses`] with a precomputed [`annotate_next_use`] annotation, so
/// multi-capacity callers annotate once instead of once per capacity.
pub fn opt_misses_annotated(trace: &[Access], next: &[u64], capacity_lines: usize) -> u64 {
    debug_assert_eq!(trace.len(), next.len(), "annotation must match trace");
    if capacity_lines == 0 {
        return trace.len() as u64;
    }
    // Resident set keyed by (next_use, block): max element = farthest.
    let mut resident: BTreeSet<(u64, BlockAddr)> = BTreeSet::new();
    let mut misses = 0u64;
    for (i, a) in trace.iter().enumerate() {
        let nu = next[i];
        // If resident, its stored key is exactly (i, addr): the previous
        // access recorded *this* position as its next use.
        if resident.remove(&(i as u64, a.addr)) {
            resident.insert((nu, a.addr));
            continue;
        }
        misses += 1;
        if resident.len() == capacity_lines {
            let victim = *resident.iter().next_back().expect("nonempty");
            resident.remove(&victim);
        }
        resident.insert((nu, a.addr));
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(seq: &[u64]) -> Vec<Access> {
        seq.iter().map(|&b| Access::read(BlockAddr(b))).collect()
    }

    #[test]
    fn belady_textbook_example() {
        // Classic: 2-line cache, sequence a b c a b.
        // OPT: miss a, miss b, miss c (evict b? c's competitors: a next at 3,
        // b next at 4 -> evict b), hit a, miss b = 4 misses.
        let t = reads(&[1, 2, 3, 1, 2]);
        assert_eq!(opt_misses(&t, 2), 4);
    }

    #[test]
    fn infinite_capacity_gives_cold_misses_only() {
        let t = reads(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(opt_misses(&t, 100), 3);
    }

    #[test]
    fn cyclic_loop_keeps_capacity_minus_one() {
        // N+1-block cycle in an N-line cache: OPT misses once per cycle
        // position for the rotating block; far better than LRU's 100% miss.
        let seq: Vec<u64> = (0..5u64).cycle().take(50).collect();
        let t = reads(&seq);
        let m = opt_misses(&t, 4);
        // Cold: 5. Steady state: OPT hits 3 of every 5 accesses at least.
        assert!(m < 30, "OPT missed {m} of 50 on a loop");
        assert!(m >= 5 + 10, "OPT cannot beat one rotation miss per lap");
    }

    #[test]
    fn zero_capacity() {
        let t = reads(&[1, 1, 1]);
        assert_eq!(opt_misses(&t, 0), 3);
    }

    #[test]
    fn annotated_entry_point_matches_self_annotating_one() {
        let t = reads(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]);
        let next = annotate_next_use(&t);
        for c in 0..8 {
            assert_eq!(opt_misses_annotated(&t, &next, c), opt_misses(&t, c));
        }
    }
}
