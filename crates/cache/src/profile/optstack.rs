//! Single-pass Belady-OPT stack profiling.
//!
//! OPT with a fixed priority order over blocks is a *stack algorithm* in
//! Mattson's sense (the paper's ref \[27\]), exactly like LRU: the content
//! of a C-line fully-associative OPT cache is always a subset of the
//! (C+1)-line one. So, as with [`super::LruStackProfiler`], one pass over
//! the trace yields the exact miss count at **every** capacity
//! simultaneously — replacing |capacities| independent replays.
//!
//! # The OPT stack
//!
//! Order blocks by the key `(next_use, addr)` — smaller is sooner/more
//! valuable; eviction removes the maximum (the exact rule of
//! [`super::opt_misses`], so the two agree bit-for-bit). Maintain the
//! Mattson stack `b_1, b_2, …` where `b_C` is the unique block in
//! `S_C \ S_{C-1}` (`S_C` = content of the C-line cache). An access to a
//! block sitting at depth `d` hits in every cache with at least `d` lines
//! and misses in the rest, so a histogram of access depths gives the whole
//! miss curve.
//!
//! On an access to `x` at depth `d`, the stack updates by the classic
//! priority-stack cascade: `x` moves to the top, a carry starts as the old
//! top, and walking down to depth `d` every *prefix maximum* of the key
//! sequence swaps with the carry; depth `d` receives the final carry. A
//! cold miss cascades through the whole stack and appends the carry at the
//! bottom.
//!
//! # Why runs
//!
//! The min/max cascade is one bubble-sort sweep per access, so the stack
//! converges toward ascending key order — and in a sorted region *every*
//! slot is a prefix maximum, making any slot-by-slot walk Θ(depth) per
//! access (quadratic over a trace). This implementation therefore stores
//! the stack as its sequence of **maximal ascending runs** (each a
//! `BTreeSet` of packed keys), where the cascade is cheap in exactly the
//! regime that defeats the naive walk:
//!
//! * Within one ascending run, the prefix maxima that exceed the carry
//!   are a contiguous suffix, and rotating the carry through them is
//!   *insert carry, spill the run's max* — two O(log) set operations that
//!   leave the run's size (hence every deeper slot index) unchanged.
//! * Runs whose max is below the carry are skipped in O(1).
//! * The accessed block's stored key is `(now, addr)` — necessarily the
//!   **global minimum** live key (every other resident's next use is
//!   later) — so `x` is always its run's minimum: its depth is just the
//!   sum of the sizes of the runs above it, and removing it is
//!   `pop_first`.
//!
//! A fully sorted stack is a single run (the cascade degenerates to one
//! insert + one spill); a churning top creates and destroys small head
//! runs. Each access costs O((runs + spills) · log n).
//!
//! # Dead keys are fungible
//!
//! A block whose next use is `u64::MAX` is never referenced again, so its
//! key only ever acts as *ballast*: a dead key exceeds every live key, a
//! cascading dead carry can displace only other dead keys, and a live
//! key's depth is never affected by **which** dead key occupies a deeper
//! slot. The tiebreak between dead keys is therefore ours to choose, and
//! choosing badly fragments the stack: real addresses arrive in an order
//! uncorrelated with stack order, minting a fresh singleton run per
//! last-touch access. Instead dead keys are minted with a strictly
//! *decreasing* synthetic sequence number: each new dead key is the
//! smallest dead key so far (merging into the head run), and the spill
//! chain sinks the largest dead keys downward (merging into the run above
//! the destination), so the dead pile stays a handful of runs. Miss
//! counts are bit-identical to the replay's real-address tiebreak.

use std::collections::BTreeSet;
use tcor_common::{BlockAddr, FxHashMap};

/// Keys at or above this are dead: `(u64::MAX, _)`.
const DEAD_MIN: u128 = (u64::MAX as u128) << 64;

#[inline]
fn pack(next_use: u64, addr: BlockAddr) -> u128 {
    ((next_use as u128) << 64) | addr.0 as u128
}

#[inline]
fn unpack_addr(key: u128) -> BlockAddr {
    BlockAddr(key as u64)
}

/// Incremental Belady-OPT stack profiler: one [`record`] call per access
/// (with its exact next-use annotation) yields [`misses_at`] for every
/// capacity, mirroring the [`super::LruStackProfiler`] API.
///
/// `next_use` values must be the absolute trace positions produced by
/// [`crate::trace::annotate_next_use`] (`u64::MAX` = never again),
/// consistent with the profiler's own access counter.
///
/// ```
/// use tcor_cache::profile::OptStackProfiler;
/// use tcor_cache::{annotate_next_use, Access};
/// use tcor_common::BlockAddr;
///
/// // Belady textbook: a b c a b in 2 lines -> 4 misses.
/// let t: Vec<Access> = [1u64, 2, 3, 1, 2]
///     .iter()
///     .map(|&b| Access::read(BlockAddr(b)))
///     .collect();
/// let p = OptStackProfiler::profile(&t, &annotate_next_use(&t));
/// assert_eq!(p.misses_at(2), 4);
/// assert_eq!(p.misses_at(3), 3);
/// ```
///
/// [`record`]: OptStackProfiler::record
/// [`misses_at`]: OptStackProfiler::misses_at
#[derive(Clone, Debug)]
pub struct OptStackProfiler {
    /// Run storage (slab; entries recycled through `free`).
    runs: Vec<BTreeSet<u128>>,
    /// Stack order: run ids top-to-bottom. Within a run, ascending key
    /// order *is* stack order; between runs the key sequence descends.
    order: Vec<u32>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Live block -> id of the run currently holding its key. Dead keys
    /// are untracked: they are never looked up again.
    pos: FxHashMap<BlockAddr, u32>,
    /// Next synthetic low-64 bits for a dead key; counts down so each
    /// new dead key is the smallest dead key so far.
    dead_seq: u64,
    /// Histogram: `hist[d]` = accesses at stack depth exactly `d`
    /// (index 0 unused; grown on demand).
    hist: Vec<u64>,
    /// Cold (first-touch) accesses.
    cold: u64,
    /// Total accesses recorded.
    total: u64,
    /// Diagnostic: widest run decomposition seen (should stay small).
    max_runs: usize,
}

impl Default for OptStackProfiler {
    fn default() -> Self {
        Self {
            runs: Vec::new(),
            order: Vec::new(),
            free: Vec::new(),
            pos: FxHashMap::default(),
            dead_seq: u64::MAX,
            hist: Vec::new(),
            cold: 0,
            total: 0,
            max_runs: 0,
        }
    }
}

impl OptStackProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Profiles a fully annotated trace in one pass.
    pub fn profile(trace: &[crate::trace::Access], next: &[u64]) -> Self {
        debug_assert_eq!(trace.len(), next.len(), "annotation must match trace");
        let mut p = Self::new();
        for (a, &nu) in trace.iter().zip(next) {
            p.record(a.addr, nu);
        }
        p
    }

    /// Total accesses recorded so far.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Cold (compulsory) misses — first touches.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Number of distinct blocks seen (every first touch is one cold
    /// miss).
    pub fn distinct_blocks(&self) -> usize {
        self.cold as usize
    }

    /// Diagnostic: the largest number of ascending runs the stack ever
    /// decomposed into. Per-access cost is linear in this, so it should
    /// stay far below the stack size.
    pub fn max_runs(&self) -> usize {
        self.max_runs
    }

    /// Allocates an empty run.
    fn new_run(&mut self) -> u32 {
        if let Some(id) = self.free.pop() {
            id
        } else {
            self.runs.push(BTreeSet::new());
            (self.runs.len() - 1) as u32
        }
    }

    /// Inserts `key` into run `id`, tracking the owner block of live
    /// keys (dead keys are never looked up again).
    fn insert_into(&mut self, id: u32, key: u128) {
        self.runs[id as usize].insert(key);
        if key < DEAD_MIN {
            self.pos.insert(unpack_addr(key), id);
        }
    }

    /// Removes the top of the stack (the first run's minimum). Returns
    /// the key; drops the run from the order if it emptied.
    fn pop_top(&mut self) -> u128 {
        let first = self.order[0];
        let key = self.runs[first as usize]
            .pop_first()
            .expect("runs in order are nonempty");
        if self.runs[first as usize].is_empty() {
            self.order.remove(0);
            self.free.push(first);
        }
        key
    }

    /// Cascades `carry` through the runs at order positions `0..end`:
    /// each run whose max exceeds the carry absorbs it and spills its
    /// max. Returns the final carry (the prefix maximum of the region).
    fn cascade(&mut self, mut carry: u128, end: usize) -> u128 {
        for i in 0..end {
            let id = self.order[i];
            if self.runs[id as usize]
                .last()
                .is_some_and(|&max| max > carry)
            {
                self.insert_into(id, carry);
                carry = self.runs[id as usize].pop_last().expect("nonempty run");
            }
        }
        carry
    }

    /// Places the new top-of-stack key: merge into the first run when
    /// ascending order allows, else open a new head run.
    fn place_top(&mut self, key: u128) {
        match self.order.first() {
            Some(&first)
                if self.runs[first as usize]
                    .first()
                    .is_some_and(|&min| key < min) =>
            {
                self.insert_into(first, key);
            }
            _ => {
                let id = self.new_run();
                self.insert_into(id, key);
                self.order.insert(0, id);
            }
        }
    }

    /// Places the cascade's final carry at the stack slot preceding the
    /// remainder of the run at order position `idx` (the accessed
    /// block's old slot): absorb into the neighboring run that keeps
    /// ascending order, else open a run of its own there.
    fn place_carry(&mut self, idx: usize, carry: u128) {
        if idx > 0 {
            let prev = self.order[idx - 1];
            if self.runs[prev as usize]
                .last()
                .is_some_and(|&max| max < carry)
            {
                self.insert_into(prev, carry);
                return;
            }
        }
        if let Some(&next) = self.order.get(idx) {
            if self.runs[next as usize]
                .first()
                .is_some_and(|&min| carry < min)
            {
                self.insert_into(next, carry);
                return;
            }
        }
        let id = self.new_run();
        self.insert_into(id, carry);
        self.order.insert(idx, id);
    }

    /// Records an access to `addr` whose next use is at absolute position
    /// `next_use` (`u64::MAX` = never again).
    pub fn record(&mut self, addr: BlockAddr, next_use: u64) {
        self.total += 1;
        self.max_runs = self.max_runs.max(self.order.len());
        let hit = if next_use == u64::MAX {
            // Last touch: the block leaves the live index and re-enters
            // the stack as a fungible dead key (see module docs).
            self.pos.remove(&addr)
        } else {
            self.pos.get(&addr).copied()
        };
        let new_key = if next_use == u64::MAX {
            let key = pack(u64::MAX, BlockAddr(self.dead_seq));
            self.dead_seq -= 1;
            key
        } else {
            pack(next_use, addr)
        };
        match hit {
            None => {
                self.cold += 1;
                if !self.order.is_empty() {
                    let top = self.pop_top();
                    let carry = self.cascade(top, self.order.len());
                    // New bottom: the carry is the global maximum after a
                    // full cascade, so it extends the last run.
                    self.place_carry(self.order.len(), carry);
                }
                self.place_top(new_key);
            }
            Some(r) => {
                let idx = self
                    .order
                    .iter()
                    .position(|&id| id == r)
                    .expect("tracked block's run is in the order");
                // `addr`'s stored key is (now, addr) — the global minimum
                // live key — so it is its run's minimum and its depth is
                // the mass of the runs above plus one.
                let depth = 1 + self.order[..idx]
                    .iter()
                    .map(|&id| self.runs[id as usize].len())
                    .sum::<usize>();
                if depth >= self.hist.len() {
                    self.hist.resize(depth + 1, 0);
                }
                self.hist[depth] += 1;
                if idx == 0 {
                    // Top-of-stack hit: refresh in place.
                    let old = self.pop_top();
                    debug_assert_eq!(unpack_addr(old), addr, "top must be the accessed block");
                } else {
                    let top = self.pop_top();
                    // The head run may have emptied and shifted us left.
                    let idx = self
                        .order
                        .iter()
                        .position(|&id| id == r)
                        .expect("accessed run survives the top pop");
                    let carry = self.cascade(top, idx);
                    let old = self.runs[r as usize]
                        .pop_first()
                        .expect("accessed run is nonempty");
                    debug_assert_eq!(unpack_addr(old), addr, "block must head its run");
                    if self.runs[r as usize].is_empty() {
                        self.order.remove(idx);
                        self.free.push(r);
                    }
                    // Either way the carry lands at order position `idx`:
                    // before the run's remainder, or where the run was.
                    self.place_carry(idx, carry);
                }
                self.place_top(new_key);
            }
        }
    }

    /// Miss count of a fully-associative Belady-OPT cache with
    /// `capacity_lines` lines over everything recorded so far.
    pub fn misses_at(&self, capacity_lines: usize) -> u64 {
        if capacity_lines == 0 {
            return self.total;
        }
        let far: u64 = self.hist.iter().skip(capacity_lines + 1).sum();
        self.cold + far
    }

    /// Miss ratio at `capacity_lines` (0.0 when no accesses recorded).
    pub fn miss_ratio_at(&self, capacity_lines: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses_at(capacity_lines) as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::opt_misses;
    use crate::trace::{annotate_next_use, Access};

    fn reads(seq: &[u64]) -> Vec<Access> {
        seq.iter().map(|&b| Access::read(BlockAddr(b))).collect()
    }

    fn profile(seq: &[u64]) -> OptStackProfiler {
        let t = reads(seq);
        OptStackProfiler::profile(&t, &annotate_next_use(&t))
    }

    #[test]
    fn belady_textbook_example() {
        let p = profile(&[1, 2, 3, 1, 2]);
        assert_eq!(p.misses_at(1), 5);
        assert_eq!(p.misses_at(2), 4);
        assert_eq!(p.misses_at(3), 3);
        assert_eq!(p.misses_at(100), 3);
        assert_eq!(p.cold_misses(), 3);
        assert_eq!(p.total_accesses(), 5);
        assert_eq!(p.distinct_blocks(), 3);
    }

    #[test]
    fn zero_capacity_misses_everything() {
        let p = profile(&[1, 1, 1]);
        assert_eq!(p.misses_at(0), 3);
        assert_eq!(p.misses_at(1), 1);
    }

    #[test]
    fn empty_profiler() {
        let p = OptStackProfiler::new();
        assert_eq!(p.misses_at(4), 0);
        assert_eq!(p.miss_ratio_at(4), 0.0);
        assert_eq!(p.distinct_blocks(), 0);
    }

    #[test]
    fn matches_replay_on_fixed_traces() {
        let cases: Vec<Vec<u64>> = vec![
            vec![1, 2, 3, 1, 2],
            vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4],
            (0..5u64).cycle().take(50).collect(),
            // Scan-heavy: long dead tails in the bottom runs.
            (0..100u64).chain(0..100u64).collect(),
            // Pure scan: everything dead immediately.
            (0..64u64).collect(),
            // Write-then-read phases like the PB traces: sequential
            // writes, then strided reads.
            (0..50u64).chain((0..50u64).map(|i| (i * 7) % 50)).collect(),
        ];
        for seq in cases {
            let t = reads(&seq);
            let p = OptStackProfiler::profile(&t, &annotate_next_use(&t));
            for c in 0..=(seq.len() + 1) {
                assert_eq!(
                    p.misses_at(c),
                    opt_misses(&t, c),
                    "capacity {c} on trace {seq:?}"
                );
            }
        }
    }

    #[test]
    fn miss_ratio_is_misses_over_total() {
        let p = profile(&[1, 2, 3, 1, 2]);
        assert!((p.miss_ratio_at(2) - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn survives_large_footprints() {
        // Enough distinct blocks and accesses to exercise run churn,
        // slab recycling, and deep stacks.
        let seq: Vec<u64> = (0..2000).map(|i| (i * i) % 307).collect();
        let t = reads(&seq);
        let p = OptStackProfiler::profile(&t, &annotate_next_use(&t));
        for c in [1usize, 3, 17, 64, 100, 307, 400] {
            assert_eq!(p.misses_at(c), opt_misses(&t, c), "capacity {c}");
        }
        // i^2 mod 307 only hits the quadratic residues (and 0).
        assert_eq!(p.distinct_blocks(), crate::trace::distinct_blocks(&t));
        assert!(p.distinct_blocks() > 64);
    }

    #[test]
    fn incremental_and_batch_agree() {
        let seq = [7u64, 3, 7, 1, 3, 9, 7, 1];
        let t = reads(&seq);
        let next = annotate_next_use(&t);
        let batch = OptStackProfiler::profile(&t, &next);
        let mut inc = OptStackProfiler::new();
        for (a, &nu) in t.iter().zip(&next) {
            inc.record(a.addr, nu);
        }
        for c in 0..10 {
            assert_eq!(batch.misses_at(c), inc.misses_at(c));
        }
    }
}
