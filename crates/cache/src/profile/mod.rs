//! Single-pass miss-curve profilers for the replacement-policy studies.
//!
//! * [`LruStackProfiler`] — Mattson's stack algorithm: one pass over the
//!   trace yields the LRU miss count for *every* capacity simultaneously.
//! * [`opt_miss_curve`] / [`opt_misses`] — exact fully-associative
//!   Belady-OPT simulation per capacity (O(n log n) each).
//! * [`simulate_policy`] — direct simulation of any policy on any geometry
//!   (used for the set-associative sweeps of Figs. 12–13).

mod opt;
mod stack;

pub use opt::{opt_miss_curve, opt_misses};
pub use stack::LruStackProfiler;

use crate::cache::Cache;
use crate::index::Indexing;
use crate::meta::AccessMeta;
use crate::policy::ReplacementPolicy;
use crate::trace::{annotate_next_use, Access};
use tcor_common::{AccessStats, CacheParams};

/// Simulates `trace` through a fresh cache of the given geometry under
/// `policy`, returning the statistics.
///
/// When `oracle` is `true`, every access carries its exact next-use
/// position (required for OPT; harmless for history-based policies).
pub fn simulate_policy<P: ReplacementPolicy>(
    trace: &[Access],
    params: CacheParams,
    indexing: Indexing,
    policy: P,
    oracle: bool,
) -> AccessStats {
    let mut cache = Cache::new(params, indexing, policy);
    if oracle {
        let next = annotate_next_use(trace);
        for (a, nu) in trace.iter().zip(&next) {
            cache.access(a.addr, a.kind, AccessMeta::next_use(*nu));
        }
    } else {
        for a in trace {
            cache.access(a.addr, a.kind, AccessMeta::NONE);
        }
    }
    *cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, Opt};
    use tcor_common::{BlockAddr, SmallRng};

    fn params(lines: u64, ways: u32) -> CacheParams {
        CacheParams::new(lines * 64, 64, ways, 1)
    }

    /// Seeded random traces standing in for the retired proptest
    /// strategies: `cases` traces of up to `max_len` reads over a
    /// `blocks`-block footprint.
    fn random_traces(seed: u64, cases: usize, blocks: u64, max_len: usize) -> Vec<Vec<Access>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..cases)
            .map(|_| {
                let len = rng.random_range(1..max_len + 1);
                (0..len)
                    .map(|_| Access::read(BlockAddr(rng.random_range(0..blocks))))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn stack_profiler_matches_direct_lru_simulation() {
        let trace: Vec<Access> = [
            3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4,
        ]
        .iter()
        .map(|&b| Access::read(BlockAddr(b)))
        .collect();
        let mut prof = LruStackProfiler::new();
        for a in &trace {
            prof.record(a.addr);
        }
        for lines in 1..10u64 {
            let direct = simulate_policy(
                &trace,
                params(lines, 0),
                Indexing::Modulo,
                Lru::new(),
                false,
            );
            assert_eq!(
                prof.misses_at(lines as usize),
                direct.misses(),
                "capacity {lines}"
            );
        }
    }

    /// Mattson stack algorithm ≡ direct LRU simulation at every size.
    #[test]
    fn prop_stack_equals_direct() {
        for trace in random_traces(0xA11CE, 64, 24, 200) {
            let mut prof = LruStackProfiler::new();
            for a in &trace {
                prof.record(a.addr);
            }
            for lines in [1usize, 2, 3, 5, 8, 16, 32] {
                let direct = simulate_policy(
                    &trace,
                    params(lines as u64, 0),
                    Indexing::Modulo,
                    Lru::new(),
                    false,
                );
                assert_eq!(prof.misses_at(lines), direct.misses());
            }
        }
    }

    /// The dedicated Belady profiler ≡ the generic engine running the
    /// OPT policy with exact annotations, fully associative.
    #[test]
    fn prop_opt_profiler_equals_engine() {
        for trace in random_traces(0xB0B, 64, 16, 150) {
            for lines in [1usize, 2, 4, 8] {
                let fast = opt_misses(&trace, lines);
                let engine = simulate_policy(
                    &trace,
                    params(lines as u64, 0),
                    Indexing::Modulo,
                    Opt::new(),
                    true,
                );
                assert_eq!(fast, engine.misses());
            }
        }
    }

    /// Belady's optimality: OPT ≤ every other policy, fully associative.
    #[test]
    fn prop_opt_is_optimal() {
        for trace in random_traces(0xCAFE, 48, 12, 150) {
            for lines in [2usize, 4, 8] {
                let opt = opt_misses(&trace, lines);
                for name in [
                    "lru", "mru", "fifo", "random", "plru", "nru", "srrip", "drrip",
                ] {
                    let other = simulate_policy(
                        &trace,
                        params(lines as u64, 0),
                        Indexing::Modulo,
                        crate::policy::by_name(name),
                        false,
                    );
                    assert!(
                        opt <= other.misses(),
                        "OPT {} > {} {} at {} lines",
                        opt,
                        name,
                        other.misses(),
                        lines
                    );
                }
            }
        }
    }

    /// Miss counts are monotonically non-increasing in capacity for
    /// stack algorithms (LRU and OPT both are).
    #[test]
    fn prop_miss_curves_monotone() {
        for trace in random_traces(0xD00D, 64, 20, 150) {
            let mut prof = LruStackProfiler::new();
            for a in &trace {
                prof.record(a.addr);
            }
            let caps = [1usize, 2, 4, 8, 16, 32];
            let lru: Vec<u64> = caps.iter().map(|&c| prof.misses_at(c)).collect();
            let opt: Vec<u64> = caps.iter().map(|&c| opt_misses(&trace, c)).collect();
            for w in lru.windows(2) {
                assert!(w[0] >= w[1]);
            }
            for w in opt.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }
}
