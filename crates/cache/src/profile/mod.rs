//! Single-pass miss-curve profilers for the replacement-policy studies.
//!
//! * [`LruStackProfiler`] — Mattson's stack algorithm: one pass over the
//!   trace yields the LRU miss count for *every* capacity simultaneously.
//! * [`OptStackProfiler`] — the same single-pass trick for Belady-OPT
//!   (also a stack algorithm under its fixed priority order).
//! * [`StreamingProfiler`] — incremental driver over both stack
//!   profilers for traces that arrive as a stream: forward next-use
//!   resolution, exact snapshots at any prefix, bounded memory via
//!   run-compaction.
//! * [`opt_misses`] / [`opt_misses_annotated`] — exact fully-associative
//!   Belady-OPT replay, one capacity per pass (the retained reference
//!   implementation the profiler is tested against).
//! * [`simulate_policy`] / [`simulate_policy_annotated`] — direct
//!   simulation of any policy on any geometry.
//! * [`simulate_policy_bank`] — one trace pass through a bank of cache
//!   instances (all capacities of one policy per pass), for the
//!   set-associative sweeps of Figs. 12–13.

mod opt;
mod optstack;
mod stack;
mod streaming;

pub use opt::{opt_misses, opt_misses_annotated};
pub use optstack::OptStackProfiler;
pub use stack::LruStackProfiler;
pub use streaming::StreamingProfiler;

use crate::cache::Cache;
use crate::index::Indexing;
use crate::meta::AccessMeta;
use crate::policy::ReplacementPolicy;
use crate::trace::{annotate_next_use, Access};
use tcor_common::{AccessStats, CacheParams};

/// Simulates `trace` through a fresh cache of the given geometry under
/// `policy`, returning the statistics.
///
/// When `oracle` is `true`, every access carries its exact next-use
/// position (required for OPT; harmless for history-based policies). The
/// annotation is computed here; callers that already hold one should use
/// [`simulate_policy_annotated`].
pub fn simulate_policy<P: ReplacementPolicy>(
    trace: &[Access],
    params: CacheParams,
    indexing: Indexing,
    policy: P,
    oracle: bool,
) -> AccessStats {
    if oracle {
        simulate_policy_annotated(trace, &annotate_next_use(trace), params, indexing, policy)
    } else {
        let mut cache = Cache::new(params, indexing, policy);
        for a in trace {
            cache.access(a.addr, a.kind, AccessMeta::NONE);
        }
        *cache.stats()
    }
}

/// [`simulate_policy`] in oracle mode with a precomputed
/// [`annotate_next_use`] annotation — the per-capacity loops of the miss
/// curve experiments annotate each benchmark once and share it.
pub fn simulate_policy_annotated<P: ReplacementPolicy>(
    trace: &[Access],
    next: &[u64],
    params: CacheParams,
    indexing: Indexing,
    policy: P,
) -> AccessStats {
    debug_assert_eq!(trace.len(), next.len(), "annotation must match trace");
    let mut cache = Cache::new(params, indexing, policy);
    for (a, nu) in trace.iter().zip(next) {
        cache.access(a.addr, a.kind, AccessMeta::next_use(*nu));
    }
    *cache.stats()
}

/// Streams one trace through a bank of independent caches — one per
/// geometry, each with a fresh policy from `make_policy` — in a single
/// pass, returning stats in geometry order.
///
/// Each instance sees exactly the access/metadata sequence
/// [`simulate_policy`] would feed it (`next = None` ≙ `oracle = false`),
/// so results are bit-identical; only the trace iteration and the
/// annotation are shared. This turns the per-(policy, capacity) replays
/// of `policy_curve` into one pass per policy.
pub fn simulate_policy_bank<P: ReplacementPolicy>(
    trace: &[Access],
    next: Option<&[u64]>,
    geometries: &[CacheParams],
    indexing: Indexing,
    mut make_policy: impl FnMut() -> P,
) -> Vec<AccessStats> {
    if let Some(next) = next {
        debug_assert_eq!(trace.len(), next.len(), "annotation must match trace");
    }
    let mut caches: Vec<_> = geometries
        .iter()
        .map(|&p| Cache::new(p, indexing, make_policy()))
        .collect();
    for (i, a) in trace.iter().enumerate() {
        let meta = match next {
            Some(next) => AccessMeta::next_use(next[i]),
            None => AccessMeta::NONE,
        };
        for cache in &mut caches {
            cache.access(a.addr, a.kind, meta);
        }
    }
    caches.iter().map(|c| *c.stats()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lru, Opt};
    use tcor_common::{BlockAddr, SmallRng};

    fn params(lines: u64, ways: u32) -> CacheParams {
        CacheParams::new(lines * 64, 64, ways, 1)
    }

    /// Seeded random traces standing in for the retired proptest
    /// strategies: `cases` traces of up to `max_len` reads over a
    /// `blocks`-block footprint.
    fn random_traces(seed: u64, cases: usize, blocks: u64, max_len: usize) -> Vec<Vec<Access>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..cases)
            .map(|_| {
                let len = rng.random_range(1..max_len + 1);
                (0..len)
                    .map(|_| Access::read(BlockAddr(rng.random_range(0..blocks))))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn stack_profiler_matches_direct_lru_simulation() {
        let trace: Vec<Access> = [
            3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4,
        ]
        .iter()
        .map(|&b| Access::read(BlockAddr(b)))
        .collect();
        let mut prof = LruStackProfiler::new();
        for a in &trace {
            prof.record(a.addr);
        }
        for lines in 1..10u64 {
            let direct = simulate_policy(
                &trace,
                params(lines, 0),
                Indexing::Modulo,
                Lru::new(),
                false,
            );
            assert_eq!(
                prof.misses_at(lines as usize),
                direct.misses(),
                "capacity {lines}"
            );
        }
    }

    /// Mattson stack algorithm ≡ direct LRU simulation at every size.
    #[test]
    fn prop_stack_equals_direct() {
        for trace in random_traces(0xA11CE, 64, 24, 200) {
            let mut prof = LruStackProfiler::new();
            for a in &trace {
                prof.record(a.addr);
            }
            for lines in [1usize, 2, 3, 5, 8, 16, 32] {
                let direct = simulate_policy(
                    &trace,
                    params(lines as u64, 0),
                    Indexing::Modulo,
                    Lru::new(),
                    false,
                );
                assert_eq!(prof.misses_at(lines), direct.misses());
            }
        }
    }

    /// The dedicated Belady profiler ≡ the generic engine running the
    /// OPT policy with exact annotations, fully associative.
    #[test]
    fn prop_opt_profiler_equals_engine() {
        for trace in random_traces(0xB0B, 64, 16, 150) {
            for lines in [1usize, 2, 4, 8] {
                let fast = opt_misses(&trace, lines);
                let engine = simulate_policy(
                    &trace,
                    params(lines as u64, 0),
                    Indexing::Modulo,
                    Opt::new(),
                    true,
                );
                assert_eq!(fast, engine.misses());
            }
        }
    }

    /// Belady's optimality: OPT ≤ every other policy, fully associative.
    #[test]
    fn prop_opt_is_optimal() {
        for trace in random_traces(0xCAFE, 48, 12, 150) {
            for lines in [2usize, 4, 8] {
                let opt = opt_misses(&trace, lines);
                for name in [
                    "lru", "mru", "fifo", "random", "plru", "nru", "srrip", "drrip",
                ] {
                    let other = simulate_policy(
                        &trace,
                        params(lines as u64, 0),
                        Indexing::Modulo,
                        crate::policy::by_name(name),
                        false,
                    );
                    assert!(
                        opt <= other.misses(),
                        "OPT {} > {} {} at {} lines",
                        opt,
                        name,
                        other.misses(),
                        lines
                    );
                }
            }
        }
    }

    /// Miss counts are monotonically non-increasing in capacity for
    /// stack algorithms (LRU and OPT both are).
    #[test]
    fn prop_miss_curves_monotone() {
        for trace in random_traces(0xD00D, 64, 20, 150) {
            let mut prof = LruStackProfiler::new();
            for a in &trace {
                prof.record(a.addr);
            }
            let caps = [1usize, 2, 4, 8, 16, 32];
            let lru: Vec<u64> = caps.iter().map(|&c| prof.misses_at(c)).collect();
            let opt: Vec<u64> = caps.iter().map(|&c| opt_misses(&trace, c)).collect();
            for w in lru.windows(2) {
                assert!(w[0] >= w[1]);
            }
            for w in opt.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }

    /// Tentpole equivalence: the single-pass OPT stack profiler matches
    /// the retained per-capacity replay pointwise at *every* capacity,
    /// across ≥ 100 randomized traces (including write-mixed ones — OPT
    /// profiling is kind-blind under write-allocate).
    #[test]
    fn prop_opt_stack_profiler_equals_replay_everywhere() {
        let mut rng = SmallRng::seed_from_u64(0x0971);
        let mut checked = 0usize;
        for mut trace in random_traces(0x57ACC, 128, 24, 250) {
            // Flip ~1/4 of accesses to writes.
            for a in trace.iter_mut() {
                if rng.random_range(0..4u32) == 0 {
                    *a = Access::write(a.addr);
                }
            }
            let next = annotate_next_use(&trace);
            let prof = OptStackProfiler::profile(&trace, &next);
            let distinct = crate::trace::distinct_blocks(&trace);
            for c in 0..=(distinct + 2) {
                assert_eq!(
                    prof.misses_at(c),
                    opt::opt_misses_annotated(&trace, &next, c),
                    "capacity {c}"
                );
            }
            assert_eq!(prof.total_accesses(), trace.len() as u64);
            assert_eq!(prof.distinct_blocks(), distinct);
            checked += 1;
        }
        assert!(checked >= 100, "property needs >= 100 randomized traces");
    }

    /// Tentpole equivalence: the batched multi-geometry driver produces
    /// bit-identical stats to per-config [`simulate_policy`] for both
    /// oracle (OPT) and history (LRU/DRRIP) policies, across ≥ 100
    /// randomized traces.
    #[test]
    fn prop_bank_equals_per_config() {
        let geoms: Vec<CacheParams> = [(1u64, 1u32), (4, 2), (8, 4), (8, 0), (16, 4), (32, 0)]
            .iter()
            .map(|&(lines, ways)| params(lines, ways))
            .collect();
        let mut checked = 0usize;
        for trace in random_traces(0xBA2B, 112, 20, 200) {
            let next = annotate_next_use(&trace);
            let banked_opt =
                simulate_policy_bank(&trace, Some(&next), &geoms, Indexing::Modulo, Opt::new);
            let banked_lru = simulate_policy_bank(&trace, None, &geoms, Indexing::Modulo, Lru::new);
            let banked_drrip = simulate_policy_bank(&trace, None, &geoms, Indexing::Modulo, || {
                crate::policy::by_name("drrip")
            });
            for (g, &p) in geoms.iter().enumerate() {
                let solo_opt = simulate_policy(&trace, p, Indexing::Modulo, Opt::new(), true);
                let solo_lru = simulate_policy(&trace, p, Indexing::Modulo, Lru::new(), false);
                let solo_drrip = simulate_policy(
                    &trace,
                    p,
                    Indexing::Modulo,
                    crate::policy::by_name("drrip"),
                    false,
                );
                assert_eq!(banked_opt[g], solo_opt, "opt geometry {g}");
                assert_eq!(banked_lru[g], solo_lru, "lru geometry {g}");
                assert_eq!(banked_drrip[g], solo_drrip, "drrip geometry {g}");
            }
            checked += 1;
        }
        assert!(checked >= 100, "property needs >= 100 randomized traces");
    }

    /// Belady optimality through the new single-pass path: OPT ≤ LRU at
    /// every capacity, both sides read off their stack profilers.
    #[test]
    fn prop_profiler_opt_below_profiler_lru() {
        for trace in random_traces(0x0BE1ADE, 64, 18, 200) {
            let next = annotate_next_use(&trace);
            let opt = OptStackProfiler::profile(&trace, &next);
            let mut lru = LruStackProfiler::new();
            for a in &trace {
                lru.record(a.addr);
            }
            for c in 1..=20usize {
                assert!(
                    opt.misses_at(c) <= lru.misses_at(c),
                    "OPT {} > LRU {} at capacity {c}",
                    opt.misses_at(c),
                    lru.misses_at(c)
                );
            }
            let caps: Vec<usize> = (1..=20).collect();
            let curve: Vec<u64> = caps.iter().map(|&c| opt.misses_at(c)).collect();
            for w in curve.windows(2) {
                assert!(w[0] >= w[1], "OPT profiler curve must be non-increasing");
            }
        }
    }
}
