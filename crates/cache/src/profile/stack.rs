//! Mattson stack-distance profiling for LRU.
//!
//! LRU is a *stack algorithm* (Mattson et al. \[27\]): the contents of a
//! C-line LRU cache are always a superset of a (C−1)-line one, so one pass
//! computing each access's **stack distance** (number of distinct blocks
//! touched since the previous access to the same block, inclusive) yields
//! the miss count at every capacity: an access hits in any cache with at
//! least `distance` lines.
//!
//! Distances are computed in O(log n) per access with a Fenwick tree over
//! trace positions, marking each block's most recent access.

use tcor_common::{BlockAddr, FxHashMap};

/// Incremental LRU stack-distance profiler.
///
/// ```
/// use tcor_cache::profile::LruStackProfiler;
/// use tcor_common::BlockAddr;
///
/// let mut p = LruStackProfiler::new();
/// for b in [1u64, 2, 1, 3, 2] {
///     p.record(BlockAddr(b));
/// }
/// // 3 cold misses; with 2 lines the re-use of `2` (distance 3) misses.
/// assert_eq!(p.misses_at(2), 4);
/// assert_eq!(p.misses_at(3), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LruStackProfiler {
    /// Fenwick tree over positions: 1 where a block's latest access sits.
    tree: Vec<u64>,
    /// Block -> position of its latest access.
    last_pos: FxHashMap<BlockAddr, usize>,
    /// Histogram: `hist[d]` = accesses with stack distance exactly `d`
    /// (index 0 unused; grown on demand).
    hist: Vec<u64>,
    /// Cold (first-touch) accesses.
    cold: u64,
    /// Total accesses recorded.
    total: u64,
}

impl LruStackProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accesses recorded so far.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Cold (compulsory) misses — first touches.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Number of distinct blocks seen.
    pub fn distinct_blocks(&self) -> usize {
        self.last_pos.len()
    }

    fn tree_add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Prefix sum of marks in positions `0..=i`.
    fn tree_sum(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Records an access to `addr` (reads and writes profile identically
    /// under write-allocate LRU).
    pub fn record(&mut self, addr: BlockAddr) {
        let pos = self.total as usize;
        // Grow the Fenwick tree (amortized doubling keeps updates O(log n)).
        if pos + 2 >= self.tree.len() {
            let new_len = ((pos + 2).next_power_of_two() * 2).max(64);
            let mut new_tree = vec![0u64; new_len];
            // Rebuild from the marks implied by last_pos.
            let marks: Vec<usize> = self.last_pos.values().copied().collect();
            std::mem::swap(&mut self.tree, &mut new_tree);
            for m in marks {
                self.tree_add(m, 1);
            }
        }
        self.total += 1;
        match self.last_pos.insert(addr, pos) {
            None => {
                self.cold += 1;
            }
            Some(prev) => {
                // Distinct blocks touched strictly after `prev`, plus the
                // block itself = LRU stack position (1-based).
                let between = self.tree_sum(pos.saturating_sub(1)) - self.tree_sum(prev);
                let distance = between as usize + 1;
                if distance >= self.hist.len() {
                    self.hist.resize(distance + 1, 0);
                }
                self.hist[distance] += 1;
                self.tree_add(prev, -1);
            }
        }
        self.tree_add(pos, 1);
    }

    /// Miss count of a fully-associative LRU cache with `capacity_lines`
    /// lines over everything recorded so far.
    pub fn misses_at(&self, capacity_lines: usize) -> u64 {
        if capacity_lines == 0 {
            return self.total;
        }
        let far: u64 = self
            .hist
            .iter()
            .enumerate()
            .skip(capacity_lines + 1)
            .map(|(_, &c)| c)
            .sum();
        self.cold + far
    }

    /// Miss ratio at `capacity_lines` (0.0 when no accesses recorded).
    pub fn miss_ratio_at(&self, capacity_lines: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses_at(capacity_lines) as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(seq: &[u64]) -> LruStackProfiler {
        let mut p = LruStackProfiler::new();
        for &b in seq {
            p.record(BlockAddr(b));
        }
        p
    }

    #[test]
    fn immediate_reuse_has_distance_one() {
        let p = profile(&[1, 1, 1, 1]);
        assert_eq!(p.cold_misses(), 1);
        assert_eq!(p.misses_at(1), 1);
    }

    #[test]
    fn classic_example() {
        // a b c b a: distances — b:2, a:3.
        let p = profile(&[1, 2, 3, 2, 1]);
        assert_eq!(p.cold_misses(), 3);
        assert_eq!(p.misses_at(1), 5);
        assert_eq!(p.misses_at(2), 4); // b hits
        assert_eq!(p.misses_at(3), 3); // a and b hit
        assert_eq!(p.misses_at(100), 3);
    }

    #[test]
    fn zero_capacity_misses_everything() {
        let p = profile(&[1, 1]);
        assert_eq!(p.misses_at(0), 2);
    }

    #[test]
    fn cyclic_thrash_distances() {
        // 0..4 cycled: every re-access has distance 4.
        let p = profile(&[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(p.misses_at(3), 12); // thrash: all miss
        assert_eq!(p.misses_at(4), 4); // all re-accesses hit
    }

    #[test]
    fn survives_tree_regrowth() {
        // More accesses than the initial tree size to exercise rebuilds.
        let seq: Vec<u64> = (0..500).map(|i| i % 37).collect();
        let p = profile(&seq);
        assert_eq!(p.distinct_blocks(), 37);
        assert_eq!(p.cold_misses(), 37);
        // Capacity >= 37 -> only cold misses.
        assert_eq!(p.misses_at(37), 37);
        // Capacity 36 -> cyclic pattern thrashes completely.
        assert_eq!(p.misses_at(36), 500);
    }
}
