//! Incremental profiler driver: exact OPT + LRU miss curves over a
//! trace that arrives as a stream.
//!
//! [`LruStackProfiler`] is already online — each access's stack
//! distance depends only on the past. Belady-OPT is not: every
//! [`OptStackProfiler::record`] needs the access's *next-use* position,
//! which [`annotate_next_use`](crate::trace::annotate_next_use)
//! computes with a backward pass over the whole trace. This driver
//! computes the same annotation *forward*:
//!
//! * Every arriving access is appended to a tail window as
//!   `(addr, u64::MAX)` and indexed in a **pending** map — one slot per
//!   block, pointing at that block's most recent occurrence (which is,
//!   by definition, the one whose next use is still unknown).
//! * When a block recurs at absolute position `p`, the pending slot's
//!   entry resolves to `next_use = p` — exactly the value the backward
//!   pass would have produced — and the pending slot moves to the new
//!   occurrence.
//! * Resolved accesses feed [`OptStackProfiler::record`] **in trace
//!   order**: only the maximal resolved *prefix* of the tail is
//!   flushed. Order matters — resolution order is not trace order (in
//!   `a b b a`, `a`'s first access resolves last), and the OPT stack's
//!   depth accounting is only correct for in-order feeding.
//! * A snapshot at any prefix clones the profiler and replays the
//!   unflushed tail, with still-pending entries as `next_use = ∞` —
//!   which is precisely `annotate_next_use` of the prefix (nothing in
//!   the prefix touches those blocks again). So live snapshots are
//!   *exact* for the ingested prefix, not approximate.
//!
//! Memory: the tail holds every access since the oldest still-pending
//! one — `O(window)`, not `O(trace)` in the common case — and
//! **run-compaction** drains the consumed prefix once it dominates the
//! tail, so the buffer tracks the live window instead of growing
//! monotonically. A worst-case stream (one never-repeated block
//! followed by heavy reuse) keeps its window equal to the stream, which
//! is why serving sessions pair this driver with byte budgets;
//! [`peak_window`](StreamingProfiler::peak_window) reports the
//! high-water mark so the budget can be audited.

use super::{LruStackProfiler, OptStackProfiler};
use crate::trace::Access;
use tcor_common::{BlockAddr, FxHashMap};

/// Tail consumption below which compaction is not worth the move.
const COMPACT_MIN: usize = 64;

/// Streaming exact-OPT + LRU profiler: push accesses as they arrive,
/// snapshot exact miss curves for the prefix seen so far, finalize for
/// the whole stream.
///
/// ```
/// use tcor_cache::profile::StreamingProfiler;
/// use tcor_cache::Access;
/// use tcor_common::BlockAddr;
///
/// let mut s = StreamingProfiler::new();
/// for b in [1u64, 2, 3, 1, 2] {
///     s.push(Access::read(BlockAddr(b)));
/// }
/// // Belady textbook: a b c a b in 2 lines -> 4 misses, exact mid-stream.
/// assert_eq!(s.snapshot_opt().misses_at(2), 4);
/// s.finalize();
/// assert_eq!(s.opt().misses_at(2), 4);
/// assert_eq!(s.lru().misses_at(2), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct StreamingProfiler {
    /// OPT profiler holding the resolved prefix (fed in trace order).
    opt: OptStackProfiler,
    /// LRU profiler — online by nature, always covers the full prefix.
    lru: LruStackProfiler,
    /// Accesses not yet fed to `opt`: `(addr, next_use)`, where
    /// `u64::MAX` marks a still-pending (last-occurrence) entry.
    /// Entries before `start` are consumed and await compaction.
    tail: Vec<(BlockAddr, u64)>,
    /// First unconsumed tail index.
    start: usize,
    /// Block -> tail index of its most recent (pending) occurrence.
    /// Always ≥ `start`: a pending entry is never consumed.
    pending: FxHashMap<BlockAddr, usize>,
    /// Absolute position of the next access (= total pushed).
    position: u64,
    /// High-water mark of the live window (`tail.len() - start`).
    peak_window: usize,
    /// `finalize` ran; further pushes would mis-annotate.
    finalized: bool,
}

impl StreamingProfiler {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests the next access of the stream.
    ///
    /// Must not be called after [`finalize`](Self::finalize): the
    /// pending map was cleared, so recurrences of old blocks would be
    /// mis-annotated as first touches (debug-asserted).
    pub fn push(&mut self, access: Access) {
        debug_assert!(!self.finalized, "push after finalize");
        self.lru.record(access.addr);
        let p = self.position;
        self.position += 1;
        // The block's previous occurrence (if any) just learned its
        // next use: this access's absolute position.
        if let Some(&at) = self.pending.get(&access.addr) {
            self.tail[at].1 = p;
        }
        self.pending.insert(access.addr, self.tail.len());
        self.tail.push((access.addr, u64::MAX));
        self.flush();
    }

    /// Feeds the maximal resolved prefix of the tail to the OPT
    /// profiler (in trace order), then compacts the consumed region
    /// once it dominates.
    fn flush(&mut self) {
        while let Some(&(addr, next_use)) = self.tail.get(self.start) {
            if next_use == u64::MAX {
                break; // still pending: everything after must wait
            }
            // A resolved entry is never a block's last occurrence, so
            // `pending` cannot reference this slot.
            self.opt.record(addr, next_use);
            self.start += 1;
        }
        self.peak_window = self.peak_window.max(self.tail.len() - self.start);
        if self.start > COMPACT_MIN && self.start * 2 > self.tail.len() {
            let consumed = self.start;
            self.tail.drain(..consumed);
            for at in self.pending.values_mut() {
                *at -= consumed; // pending indices are all ≥ consumed
            }
            self.start = 0;
        }
    }

    /// Exact OPT profile of the prefix pushed so far: a clone of the
    /// resolved-prefix profiler with the live window replayed on top
    /// (pending entries as `next_use = ∞`). Equals
    /// `OptStackProfiler::profile(prefix, annotate_next_use(prefix))`
    /// bit for bit. Cost: `O(window)` records on the clone.
    pub fn snapshot_opt(&self) -> OptStackProfiler {
        let mut opt = self.opt.clone();
        for &(addr, next_use) in &self.tail[self.start..] {
            opt.record(addr, next_use);
        }
        opt
    }

    /// Declares the stream complete: every pending access keeps
    /// `next_use = ∞` and the whole tail is flushed into the OPT
    /// profiler, which [`opt`](Self::opt) then exposes directly.
    /// Idempotent; [`push`](Self::push) is no longer allowed.
    pub fn finalize(&mut self) {
        for &(addr, next_use) in &self.tail[self.start..] {
            self.opt.record(addr, next_use);
        }
        self.tail.clear();
        self.tail.shrink_to_fit();
        self.pending.clear();
        self.start = 0;
        self.finalized = true;
    }

    /// The finalized (or resolved-prefix) OPT profiler. Only covers the
    /// full stream after [`finalize`](Self::finalize); use
    /// [`snapshot_opt`](Self::snapshot_opt) mid-stream.
    pub fn opt(&self) -> &OptStackProfiler {
        &self.opt
    }

    /// The LRU profiler — always exact for the full prefix (LRU needs
    /// no future information).
    pub fn lru(&self) -> &LruStackProfiler {
        &self.lru
    }

    /// Accesses pushed so far.
    pub fn total_accesses(&self) -> u64 {
        self.position
    }

    /// Distinct blocks seen so far.
    pub fn distinct_blocks(&self) -> usize {
        self.lru.distinct_blocks()
    }

    /// Current live window: accesses buffered but not yet fed to the
    /// OPT profiler (everything since the oldest still-pending access).
    pub fn window_len(&self) -> usize {
        self.tail.len() - self.start
    }

    /// High-water mark of [`window_len`](Self::window_len) — the
    /// session's memory bound, reported against the compaction budget.
    pub fn peak_window(&self) -> usize {
        self.peak_window
    }

    /// Whether [`finalize`](Self::finalize) has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::annotate_next_use;

    fn reads(seq: &[u64]) -> Vec<Access> {
        seq.iter().map(|&b| Access::read(BlockAddr(b))).collect()
    }

    fn whole(trace: &[Access]) -> OptStackProfiler {
        OptStackProfiler::profile(trace, &annotate_next_use(trace))
    }

    #[test]
    fn belady_textbook_streams_exactly() {
        let mut s = StreamingProfiler::new();
        for a in reads(&[1, 2, 3, 1, 2]) {
            s.push(a);
        }
        s.finalize();
        assert_eq!(s.opt().misses_at(1), 5);
        assert_eq!(s.opt().misses_at(2), 4);
        assert_eq!(s.opt().misses_at(3), 3);
        assert_eq!(s.lru().misses_at(3), 3);
        assert_eq!(s.total_accesses(), 5);
        assert_eq!(s.distinct_blocks(), 3);
    }

    /// The ordering trap this driver exists to avoid: in `a b b a`,
    /// resolution order is `b a` (b resolves at the second b, a only at
    /// the final a) — feeding in that order would profile the trace
    /// `b a b a` and get 4 misses at capacity 1 instead of 3.
    #[test]
    fn resolution_order_differs_from_trace_order() {
        let t = reads(&[1, 2, 2, 1]);
        let mut s = StreamingProfiler::new();
        for a in &t {
            s.push(*a);
        }
        s.finalize();
        assert_eq!(s.opt().misses_at(1), 3, "a b b a has one hit at C=1");
        for c in 0..6 {
            assert_eq!(s.opt().misses_at(c), whole(&t).misses_at(c));
        }
    }

    #[test]
    fn snapshot_is_exact_at_every_prefix() {
        let seq = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let t = reads(&seq);
        let mut s = StreamingProfiler::new();
        for (i, a) in t.iter().enumerate() {
            s.push(*a);
            let snap = s.snapshot_opt();
            let reference = whole(&t[..=i]);
            for c in 0..=seq.len() + 1 {
                assert_eq!(
                    snap.misses_at(c),
                    reference.misses_at(c),
                    "prefix {} capacity {c}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn empty_stream() {
        let mut s = StreamingProfiler::new();
        assert_eq!(s.snapshot_opt().misses_at(4), 0);
        assert_eq!(s.window_len(), 0);
        s.finalize();
        assert_eq!(s.opt().total_accesses(), 0);
        assert_eq!(s.lru().total_accesses(), 0);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut s = StreamingProfiler::new();
        for a in reads(&[1, 2, 1]) {
            s.push(a);
        }
        s.finalize();
        let before: Vec<u64> = (0..5).map(|c| s.opt().misses_at(c)).collect();
        s.finalize();
        let after: Vec<u64> = (0..5).map(|c| s.opt().misses_at(c)).collect();
        assert_eq!(before, after);
        assert!(s.is_finalized());
    }

    /// Heavy reuse keeps the window tiny (compaction drains the
    /// consumed prefix); the one never-repeated block pins the window
    /// until finalize.
    #[test]
    fn compaction_bounds_the_window_under_reuse() {
        let mut s = StreamingProfiler::new();
        // A cyclic working set: every block recurs within 8 accesses.
        for i in 0..10_000u64 {
            s.push(Access::read(BlockAddr(i % 8)));
        }
        assert!(
            s.window_len() <= 9,
            "window {} must track the reuse distance, not the stream",
            s.window_len()
        );
        assert!(s.peak_window() <= 9);
        // Memory bound, not just index bound: the buffer itself shrank.
        assert!(s.tail.len() < 1024, "tail holds {} entries", s.tail.len());
        s.finalize();
        assert_eq!(s.opt().total_accesses(), 10_000);
        assert_eq!(s.opt().misses_at(8), 8, "working set fits: cold only");
    }

    #[test]
    fn all_distinct_tail_stays_pending_until_finalize() {
        let t = reads(&[1, 1, 2, 3, 4, 5]);
        let mut s = StreamingProfiler::new();
        for a in &t {
            s.push(*a);
        }
        // Only `1 1` resolved; the scan tail is all pending.
        assert_eq!(s.window_len(), 5);
        let snap = s.snapshot_opt();
        for c in 0..8 {
            assert_eq!(snap.misses_at(c), whole(&t).misses_at(c));
        }
        s.finalize();
        assert_eq!(s.window_len(), 0);
        for c in 0..8 {
            assert_eq!(s.opt().misses_at(c), whole(&t).misses_at(c));
        }
    }
}
