//! Access traces and future-use annotation.
//!
//! Replacement studies (Figs. 1, 11–13) run over recorded traces of
//! Parameter-Buffer accesses. [`annotate_next_use`] computes, for every
//! position, the trace position of the *next* access to the same block —
//! the oracle Belady-OPT consumes.

use crate::meta::AccessKind;
use tcor_common::{BlockAddr, FxHashMap, FxHashSet};

/// One trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// The block touched.
    pub addr: BlockAddr,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// A read of `addr`.
    pub fn read(addr: BlockAddr) -> Self {
        Access {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// A write of `addr`.
    pub fn write(addr: BlockAddr) -> Self {
        Access {
            addr,
            kind: AccessKind::Write,
        }
    }
}

/// An ordered access trace.
pub type Trace = Vec<Access>;

/// For each position `i`, the position of the next access to the same
/// block (`u64::MAX` when the block is never touched again).
///
/// Runs backward over the trace in O(n) with a last-seen map.
///
/// ```
/// use tcor_cache::{annotate_next_use, Access};
/// use tcor_common::BlockAddr;
///
/// let t = vec![
///     Access::read(BlockAddr(1)),
///     Access::read(BlockAddr(2)),
///     Access::read(BlockAddr(1)),
/// ];
/// assert_eq!(annotate_next_use(&t), vec![2, u64::MAX, u64::MAX]);
/// ```
pub fn annotate_next_use(trace: &[Access]) -> Vec<u64> {
    let mut next = vec![u64::MAX; trace.len()];
    let mut last_seen: FxHashMap<BlockAddr, u64> = FxHashMap::default();
    for (i, a) in trace.iter().enumerate().rev() {
        if let Some(&later) = last_seen.get(&a.addr) {
            next[i] = later;
        }
        last_seen.insert(a.addr, i as u64);
    }
    next
}

/// Serializes a trace as CSV (`kind,addr` per line; kind ∈ {R, W}) for
/// analysis outside the simulator.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_csv<W: std::io::Write>(trace: &[Access], mut w: W) -> std::io::Result<()> {
    writeln!(w, "kind,addr")?;
    for a in trace {
        writeln!(
            w,
            "{},{}",
            if a.kind.is_write() { 'W' } else { 'R' },
            a.addr.0
        )?;
    }
    Ok(())
}

/// Parses a trace from the CSV produced by [`write_csv`] (header line
/// optional; blank lines ignored).
///
/// # Errors
///
/// Returns a descriptive error for malformed rows.
pub fn read_csv<R: std::io::BufRead>(r: R) -> Result<Trace, String> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        let line = line.trim();
        if line.is_empty() || line == "kind,addr" {
            continue;
        }
        let (kind, addr) = line
            .split_once(',')
            .ok_or_else(|| format!("line {}: expected `kind,addr`", i + 1))?;
        let addr: u64 = addr
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad address: {e}", i + 1))?;
        let access = match kind.trim() {
            "R" | "r" => Access::read(BlockAddr(addr)),
            "W" | "w" => Access::write(BlockAddr(addr)),
            other => return Err(format!("line {}: bad kind `{other}`", i + 1)),
        };
        out.push(access);
    }
    Ok(out)
}

/// Number of distinct blocks in a trace — the cold-miss count of any
/// write-allocate cache.
pub fn distinct_blocks(trace: &[Access]) -> usize {
    let mut seen: FxHashSet<BlockAddr> =
        FxHashSet::with_capacity_and_hasher(trace.len() / 2, Default::default());
    for a in trace {
        seen.insert(a.addr);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_points_forward() {
        let t = vec![
            Access::read(BlockAddr(5)),
            Access::write(BlockAddr(5)),
            Access::read(BlockAddr(7)),
            Access::read(BlockAddr(5)),
        ];
        assert_eq!(annotate_next_use(&t), vec![1, 3, u64::MAX, u64::MAX]);
    }

    #[test]
    fn empty_trace() {
        assert!(annotate_next_use(&[]).is_empty());
        assert_eq!(distinct_blocks(&[]), 0);
    }

    #[test]
    fn distinct_count() {
        let t = vec![
            Access::read(BlockAddr(1)),
            Access::read(BlockAddr(1)),
            Access::read(BlockAddr(2)),
        ];
        assert_eq!(distinct_blocks(&t), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let t = vec![
            Access::write(BlockAddr(7)),
            Access::read(BlockAddr(7)),
            Access::read(BlockAddr(1 << 40)),
        ];
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let parsed = read_csv(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(read_csv(std::io::BufReader::new(&b"R,notanumber"[..])).is_err());
        assert!(read_csv(std::io::BufReader::new(&b"X,7"[..])).is_err());
        assert!(read_csv(std::io::BufReader::new(&b"no-comma"[..])).is_err());
    }

    #[test]
    fn csv_tolerates_header_and_blanks() {
        let input = b"kind,addr\n\nW,3\n r , 9 \n";
        let parsed = read_csv(std::io::BufReader::new(&input[..])).unwrap();
        assert_eq!(
            parsed,
            vec![Access::write(BlockAddr(3)), Access::read(BlockAddr(9))]
        );
    }
}
