//! Set-index functions.
//!
//! The baseline uses modulo (bit-select) indexing. TCOR's Attribute Cache
//! uses an **XOR-based indexing function** (González et al. \[12\]) to
//! load-balance sets: primitive identifiers arriving in bursts with
//! power-of-two strides would otherwise pile onto a few sets
//! (the pathology §III.B describes for the baseline PB-Lists layout).

/// How a block address maps to a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Indexing {
    /// `set = addr mod num_sets` — conventional bit selection.
    #[default]
    Modulo,
    /// XOR-fold of the address above the index bits into the index
    /// (a polynomial/XOR placement in the spirit of \[12\], \[36\]).
    Xor,
}

impl Indexing {
    /// Maps `addr` (a block number or any stable line key) to a set index
    /// in `0..num_sets`.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets == 0`.
    pub fn set_of(self, addr: u64, num_sets: u64) -> u64 {
        assert!(num_sets > 0, "cache must have at least one set");
        if num_sets == 1 {
            return 0;
        }
        match self {
            Indexing::Modulo => addr % num_sets,
            Indexing::Xor => {
                if num_sets.is_power_of_two() {
                    let bits = num_sets.trailing_zeros();
                    let mut acc = 0u64;
                    let mut rest = addr;
                    // Fold successive index-sized chunks of the address
                    // into the set index.
                    while rest != 0 {
                        acc ^= rest & (num_sets - 1);
                        rest >>= bits;
                    }
                    acc
                } else {
                    // Non-power-of-two set counts: scramble, then reduce.
                    let mixed = splitmix64(addr);
                    mixed % num_sets
                }
            }
        }
    }
}

/// The 64-bit finalizer of SplitMix64 — a cheap full-avalanche scrambler.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_is_modulo() {
        assert_eq!(Indexing::Modulo.set_of(13, 8), 5);
        assert_eq!(Indexing::Modulo.set_of(16, 8), 0);
    }

    #[test]
    fn single_set_always_zero() {
        for addr in [0u64, 7, 12345] {
            assert_eq!(Indexing::Modulo.set_of(addr, 1), 0);
            assert_eq!(Indexing::Xor.set_of(addr, 1), 0);
        }
    }

    #[test]
    fn xor_stays_in_range() {
        for addr in 0..10_000u64 {
            let s = Indexing::Xor.set_of(addr * 977, 64);
            assert!(s < 64);
        }
        for addr in 0..1000u64 {
            let s = Indexing::Xor.set_of(addr, 48); // non-power-of-two
            assert!(s < 48);
        }
    }

    #[test]
    fn xor_breaks_power_of_two_strides() {
        // Addresses strided by num_sets map to a single set under modulo
        // but spread under XOR — the exact conflict pathology of the
        // baseline PB-Lists layout (stride 64 blocks per tile list).
        let num_sets = 64u64;
        let stride = 64u64;
        let modulo_sets: std::collections::HashSet<u64> = (0..256)
            .map(|i| Indexing::Modulo.set_of(i * stride, num_sets))
            .collect();
        let xor_sets: std::collections::HashSet<u64> = (0..256)
            .map(|i| Indexing::Xor.set_of(i * stride, num_sets))
            .collect();
        assert_eq!(modulo_sets.len(), 1);
        assert!(xor_sets.len() > 16, "xor spread only {}", xor_sets.len());
    }

    #[test]
    fn xor_is_deterministic() {
        for addr in [3u64, 999, 1 << 40] {
            assert_eq!(
                Indexing::Xor.set_of(addr, 32),
                Indexing::Xor.set_of(addr, 32)
            );
        }
    }
}
