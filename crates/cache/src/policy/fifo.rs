//! First-In-First-Out replacement.

use super::ReplacementPolicy;
use crate::cache::Line;
use crate::meta::AccessMeta;

/// FIFO: evicts the way *filled* longest ago, ignoring hits.
#[derive(Clone, Debug, Default)]
pub struct Fifo {
    clock: u64,
    fill_time: Vec<u64>,
    ways: usize,
}

impl Fifo {
    /// Creates a FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.ways = ways;
        self.fill_time = vec![0; num_sets * ways];
        self.clock = 0;
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _meta: &AccessMeta) {
        // Hits do not refresh FIFO age.
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.clock += 1;
        self.fill_time[set * self.ways + way] = self.clock;
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.fill_time[set * self.ways + way] = 0;
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        let base = set * self.ways;
        (0..lines.len())
            .min_by_key(|&w| self.fill_time[base + w])
            .expect("victim called on empty set")
    }

    fn set_local(&self) -> bool {
        // Fill times are compared only within a set; relative order is
        // all that matters.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::index::Indexing;
    use crate::meta::AccessKind;
    use tcor_common::{BlockAddr, CacheParams};

    #[test]
    fn fifo_ignores_hits() {
        // 2-line: fill 1, fill 2, hit 1, insert 3 -> evicts 1 (oldest fill)
        // even though 1 was just touched.
        let mut cache = Cache::new(
            CacheParams::new(128, 64, 0, 1),
            Indexing::Modulo,
            Fifo::new(),
        );
        for &b in &[1u64, 2, 1] {
            cache.access(BlockAddr(b), AccessKind::Read, AccessMeta::NONE);
        }
        let out = cache.access(BlockAddr(3), AccessKind::Read, AccessMeta::NONE);
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(1));
    }
}
