//! Insertion-policy family of Qureshi et al. (the paper's reference
//! \[30\], "Adaptive insertion policies for high performance caching"):
//! LIP, BIP and set-dueling DIP. Like DRRIP, these target thrashing
//! streams — included in the toolbox so the Fig. 13-style comparison can
//! be extended beyond the paper's four policies.

use super::ReplacementPolicy;
use crate::cache::Line;
use crate::meta::AccessMeta;

/// BIP promotes an insertion to MRU once every `BIP_EPSILON` fills.
const BIP_EPSILON: u32 = 32;

/// Recency core shared by the family: exact LRU timestamps, with
/// insertions placed at either end of the stack.
#[derive(Clone, Debug, Default)]
struct InsertionLru {
    clock: u64,
    last_touch: Vec<u64>,
    ways: usize,
}

impl InsertionLru {
    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.ways = ways;
        self.last_touch = vec![0; num_sets * ways];
        self.clock = 0;
    }

    fn touch_mru(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.last_touch[set * self.ways + way] = self.clock;
    }

    /// Place at the LRU end: older than everything currently in the set.
    fn touch_lru(&mut self, set: usize, way: usize) {
        let base = set * self.ways;
        let min = (0..self.ways)
            .map(|w| self.last_touch[base + w])
            .min()
            .unwrap_or(0);
        self.last_touch[base + way] = min.saturating_sub(1);
    }

    fn victim(&self, set: usize, n: usize) -> usize {
        let base = set * self.ways;
        (0..n)
            .min_by_key(|&w| self.last_touch[base + w])
            .expect("victim called on empty set")
    }
}

/// LIP: LRU Insertion Policy — fills land at the LRU position and are
/// promoted to MRU only on a subsequent hit. Thrash-resistant: a
/// streaming block is evicted immediately instead of walking the stack.
#[derive(Clone, Debug, Default)]
pub struct Lip {
    lru: InsertionLru,
}

impl Lip {
    /// Creates a LIP policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Lip {
    fn name(&self) -> &'static str {
        "LIP"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.lru.attach(num_sets, ways);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.lru.touch_mru(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.lru.touch_lru(set, way);
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        self.lru.victim(set, lines.len())
    }

    fn set_local(&self) -> bool {
        // `touch_lru` clamps at 0 via saturating_sub: whether an LRU
        // insertion chain saturates (and then ties toward the lowest
        // way) depends on the absolute magnitude of the shared clock,
        // which differs between a whole-trace and a per-set replay.
        false
    }
}

/// BIP: Bimodal Insertion Policy — LIP, except one fill in
/// `BIP_EPSILON` (32) goes to MRU, letting the policy adapt when the
/// working set eventually fits.
#[derive(Clone, Debug, Default)]
pub struct Bip {
    lru: InsertionLru,
    fills: u32,
}

impl Bip {
    /// Creates a BIP policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Bip {
    fn name(&self) -> &'static str {
        "BIP"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.lru.attach(num_sets, ways);
        self.fills = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.lru.touch_mru(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.fills = self.fills.wrapping_add(1);
        if self.fills.is_multiple_of(BIP_EPSILON) {
            self.lru.touch_mru(set, way);
        } else {
            self.lru.touch_lru(set, way);
        }
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        self.lru.victim(set, lines.len())
    }

    fn set_local(&self) -> bool {
        // The epsilon promotion counts fills across ALL sets (and LIP's
        // clamp caveat applies too).
        false
    }
}

/// DIP: set-dueling between LRU insertion and BIP insertion with a
/// saturating PSEL counter (leader sets: one in 32 each way).
#[derive(Clone, Debug)]
pub struct Dip {
    lru: InsertionLru,
    fills: u32,
    psel: i32,
    psel_max: i32,
    duel_period: usize,
}

impl Dip {
    /// Creates a DIP policy with a 10-bit PSEL.
    pub fn new() -> Self {
        Dip {
            lru: InsertionLru::default(),
            fills: 0,
            psel: 0,
            psel_max: 512,
            duel_period: 32,
        }
    }

    /// `Some(true)` = LRU-insertion leader, `Some(false)` = BIP leader.
    fn leader(&self, set: usize) -> Option<bool> {
        match set % self.duel_period {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        }
    }

    /// Whether follower sets currently insert at MRU (plain LRU).
    pub fn followers_use_lru(&self) -> bool {
        self.psel <= 0
    }
}

impl Default for Dip {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for Dip {
    fn name(&self) -> &'static str {
        "DIP"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.lru.attach(num_sets, ways);
        self.fills = 0;
        self.psel = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.lru.touch_mru(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        match self.leader(set) {
            Some(true) => self.psel = (self.psel + 1).min(self.psel_max),
            Some(false) => self.psel = (self.psel - 1).max(-self.psel_max),
            None => {}
        }
        let use_lru = match self.leader(set) {
            Some(l) => l,
            None => self.followers_use_lru(),
        };
        self.fills = self.fills.wrapping_add(1);
        if use_lru || self.fills.is_multiple_of(BIP_EPSILON) {
            self.lru.touch_mru(set, way);
        } else {
            self.lru.touch_lru(set, way);
        }
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        self.lru.victim(set, lines.len())
    }

    fn set_local(&self) -> bool {
        // Set dueling over a global PSEL plus a global fill counter.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::index::Indexing;
    use crate::meta::AccessKind;
    use crate::policy::Lru;
    use tcor_common::{BlockAddr, CacheParams};

    fn run_policy<P: ReplacementPolicy>(policy: P, seq: &[u64], lines: u64) -> u64 {
        let mut c = Cache::new(
            CacheParams::new(lines * 64, 64, 0, 1),
            Indexing::Modulo,
            policy,
        );
        for &b in seq {
            c.access(BlockAddr(b), AccessKind::Read, AccessMeta::NONE);
        }
        c.stats().hits()
    }

    #[test]
    fn lip_beats_lru_on_cyclic_thrash() {
        // 6-block cycle in 4 lines: LRU gets zero hits, LIP retains a
        // stable subset and hits on it.
        let seq: Vec<u64> = (0..6u64).cycle().take(120).collect();
        let lru_hits = run_policy(Lru::new(), &seq, 4);
        let lip_hits = run_policy(Lip::new(), &seq, 4);
        assert_eq!(lru_hits, 0);
        assert!(lip_hits > 40, "LIP only hit {lip_hits}");
    }

    #[test]
    fn lip_insertion_is_immediately_evictable() {
        let mut p = Lip::new();
        p.attach(1, 2);
        let lines = vec![Line::default(); 2];
        p.on_fill(0, 0, &AccessMeta::NONE);
        p.on_hit(0, 0, &AccessMeta::NONE); // promote way 0
        p.on_fill(0, 1, &AccessMeta::NONE); // way 1 inserted at LRU
        assert_eq!(p.victim(0, &lines), 1);
    }

    #[test]
    fn bip_occasionally_promotes() {
        let mut p = Bip::new();
        p.attach(1, 4);
        // Drive exactly BIP_EPSILON fills into way 0; the last one hits
        // the epsilon slot and lands at MRU.
        for _ in 0..BIP_EPSILON {
            p.on_fill(0, 0, &AccessMeta::NONE);
        }
        let lines = vec![Line::default(); 4];
        assert_ne!(p.victim(0, &lines), 0);
    }

    #[test]
    fn dip_tracks_the_better_insertion() {
        // Thrash pattern: BIP leaders miss less; PSEL should drift toward
        // BIP for followers.
        let seq: Vec<u64> = (0..2048u64).cycle().take(20_000).collect();
        let mut c = Cache::new(
            CacheParams::new(1024 * 64, 64, 8, 1), // 128 sets
            Indexing::Modulo,
            Dip::new(),
        );
        for &b in &seq {
            c.access(BlockAddr(b), AccessKind::Read, AccessMeta::NONE);
        }
        assert!(
            !c.policy().followers_use_lru(),
            "DIP should prefer BIP under thrash"
        );
    }

    #[test]
    fn on_friendly_workloads_all_match_lru() {
        // Working set fits: insertion placement is irrelevant to hits.
        let seq: Vec<u64> = (0..4u64).cycle().take(100).collect();
        let lru = run_policy(Lru::new(), &seq, 8);
        for hits in [
            run_policy(Lip::new(), &seq, 8),
            run_policy(Bip::new(), &seq, 8),
            run_policy(Dip::new(), &seq, 8),
        ] {
            assert_eq!(hits, lru);
        }
    }
}
