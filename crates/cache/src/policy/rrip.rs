//! Re-Reference Interval Prediction policies (Jaleel et al. \[22\]).
//!
//! The paper compares TCOR's OPT against **DRRIP (M=2)** in Fig. 13. All
//! three family members are provided: static SRRIP, bimodal BRRIP and
//! set-dueling DRRIP.

use super::ReplacementPolicy;
use crate::cache::Line;
use crate::meta::AccessMeta;

/// Width of the RRPV counters; the paper's comparison uses M = 2.
pub const RRPV_BITS: u8 = 2;
const MAX_RRPV: u8 = (1 << RRPV_BITS) - 1; // 3 = "distant future"

/// BRRIP inserts at `MAX_RRPV - 1` once every `BIP_EPSILON` fills,
/// otherwise at `MAX_RRPV` (the bimodal throttle of \[22\]).
const BIP_EPSILON: u32 = 32;

#[derive(Clone, Debug, Default)]
struct RripState {
    rrpv: Vec<u8>,
    ways: usize,
}

impl RripState {
    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.ways = ways;
        self.rrpv = vec![MAX_RRPV; num_sets * ways];
    }

    fn hit(&mut self, set: usize, way: usize) {
        // Hit promotion: RRPV = 0 ("near-immediate re-reference").
        self.rrpv[set * self.ways + way] = 0;
    }

    fn fill(&mut self, set: usize, way: usize, rrpv: u8) {
        self.rrpv[set * self.ways + way] = rrpv;
    }

    fn victim(&mut self, set: usize, n: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..n).find(|&w| self.rrpv[base + w] >= MAX_RRPV) {
                return w;
            }
            for w in 0..n {
                self.rrpv[base + w] += 1;
            }
        }
    }
}

/// Static RRIP: always inserts at `MAX_RRPV - 1` ("long re-reference
/// interval"), promotes to 0 on hit.
#[derive(Clone, Debug, Default)]
pub struct Srrip {
    state: RripState,
}

impl Srrip {
    /// Creates an SRRIP policy (M = 2).
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Srrip {
    fn name(&self) -> &'static str {
        "SRRIP"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.state.attach(num_sets, ways);
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.state.hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.state.fill(set, way, MAX_RRPV - 1);
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        self.state.victim(set, lines.len())
    }

    fn set_local(&self) -> bool {
        // Static insertion + per-line RRPVs; aging sweeps touch only
        // the victim's set.
        true
    }
}

/// Bimodal RRIP: inserts at `MAX_RRPV` (distant) most of the time,
/// at `MAX_RRPV - 1` once every `BIP_EPSILON` (32) fills — thrash-resistant.
#[derive(Clone, Debug, Default)]
pub struct Brrip {
    state: RripState,
    fill_count: u32,
}

impl Brrip {
    /// Creates a BRRIP policy (M = 2, ε = 1/32).
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Brrip {
    fn name(&self) -> &'static str {
        "BRRIP"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.state.attach(num_sets, ways);
        self.fill_count = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.state.hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.fill_count = self.fill_count.wrapping_add(1);
        let rrpv = if self.fill_count.is_multiple_of(BIP_EPSILON) {
            MAX_RRPV - 1
        } else {
            MAX_RRPV
        };
        self.state.fill(set, way, rrpv);
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        self.state.victim(set, lines.len())
    }

    fn set_local(&self) -> bool {
        // The bimodal throttle is a single fill counter across ALL
        // sets; a per-set replay would re-time the epsilon insertions.
        false
    }
}

/// Dynamic RRIP: set dueling between SRRIP and BRRIP insertion with a
/// saturating PSEL counter; follower sets use whichever leader is winning.
/// This is the configuration the paper compares against in Fig. 13
/// ("DRRIP (M=2)").
#[derive(Clone, Debug)]
pub struct Drrip {
    state: RripState,
    fill_count: u32,
    psel: i32,
    psel_max: i32,
    duel_period: usize,
}

impl Drrip {
    /// Creates a DRRIP policy with a 10-bit PSEL and 1-in-32 leader sets.
    pub fn new() -> Self {
        Drrip {
            state: RripState::default(),
            fill_count: 0,
            psel: 0,
            psel_max: 512,
            duel_period: 32,
        }
    }

    /// Leader-set classification: `Some(true)` = SRRIP leader,
    /// `Some(false)` = BRRIP leader, `None` = follower.
    fn leader(&self, set: usize) -> Option<bool> {
        match set % self.duel_period {
            0 => Some(true),
            1 => Some(false),
            _ => None,
        }
    }

    /// True when followers currently use SRRIP insertion.
    pub fn followers_use_srrip(&self) -> bool {
        self.psel <= 0
    }
}

impl Default for Drrip {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for Drrip {
    fn name(&self) -> &'static str {
        "DRRIP"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.state.attach(num_sets, ways);
        self.fill_count = 0;
        self.psel = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.state.hit(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        // A fill is a miss: leaders steer PSEL (miss in SRRIP leader ->
        // favour BRRIP, and vice versa).
        match self.leader(set) {
            Some(true) => self.psel = (self.psel + 1).min(self.psel_max),
            Some(false) => self.psel = (self.psel - 1).max(-self.psel_max),
            None => {}
        }
        let use_srrip = match self.leader(set) {
            Some(l) => l,
            None => self.followers_use_srrip(),
        };
        self.fill_count = self.fill_count.wrapping_add(1);
        // SRRIP insertion, or BRRIP's occasional long-interval insertion.
        let long_interval = use_srrip || self.fill_count.is_multiple_of(BIP_EPSILON);
        let rrpv = if long_interval {
            MAX_RRPV - 1
        } else {
            MAX_RRPV
        };
        self.state.fill(set, way, rrpv);
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        self.state.victim(set, lines.len())
    }

    fn set_local(&self) -> bool {
        // Set dueling: leader sets steer a global PSEL that decides
        // follower insertion — inherently cross-set.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::index::Indexing;
    use crate::meta::AccessKind;
    use tcor_common::{BlockAddr, CacheParams};

    #[test]
    fn srrip_promotes_on_hit() {
        let mut p = Srrip::new();
        p.attach(1, 2);
        let lines = vec![Line::default(); 2];
        p.on_fill(0, 0, &AccessMeta::NONE); // rrpv 2
        p.on_fill(0, 1, &AccessMeta::NONE); // rrpv 2
        p.on_hit(0, 0, &AccessMeta::NONE); // rrpv 0
                                           // Aging: both < 3, so the loop ages until way 1 reaches 3 first.
        assert_eq!(p.victim(0, &lines), 1);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Brrip::new();
        p.attach(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &AccessMeta::NONE);
        }
        // First 4 fills are all distant (epsilon = 32).
        assert!(p.state.rrpv[..4].iter().all(|&r| r == MAX_RRPV));
    }

    #[test]
    fn drrip_psel_moves_toward_brrip_on_srrip_leader_misses() {
        let mut p = Drrip::new();
        p.attach(64, 4);
        let before = p.psel;
        for _ in 0..10 {
            p.on_fill(0, 0, &AccessMeta::NONE); // set 0 = SRRIP leader
        }
        assert!(p.psel > before);
        assert!(!p.followers_use_srrip());
    }

    #[test]
    fn drrip_runs_in_cache_without_panic() {
        let mut cache = Cache::new(
            CacheParams::new(64 * 64, 64, 4, 1),
            Indexing::Modulo,
            Drrip::new(),
        );
        for i in 0..10_000u64 {
            let addr = (i * 7919) % 4096;
            cache.access(BlockAddr(addr), AccessKind::Read, AccessMeta::NONE);
        }
        assert_eq!(cache.stats().accesses(), 10_000);
        assert!(cache.stats().misses() > 0);
    }

    #[test]
    fn rrip_aging_terminates() {
        let mut s = RripState::default();
        s.attach(1, 4);
        for w in 0..4 {
            s.fill(0, w, 0);
        }
        // All at 0: victim must age everyone up to MAX and return way 0.
        assert_eq!(s.victim(0, 4), 0);
        assert!(s.rrpv[..4].iter().all(|&r| r == MAX_RRPV));
    }
}
