//! Seeded pseudo-random replacement.

use super::ReplacementPolicy;
use crate::cache::Line;
use crate::meta::AccessMeta;

/// Random replacement with a deterministic xorshift64* stream, so
/// simulations are reproducible bit-for-bit from the seed.
#[derive(Clone, Debug)]
pub struct RandomEvict {
    state: u64,
}

impl RandomEvict {
    /// Creates a random policy from a nonzero seed.
    pub fn with_seed(seed: u64) -> Self {
        RandomEvict {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* — adequate statistical quality for victim choice.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl Default for RandomEvict {
    fn default() -> Self {
        Self::with_seed(0xC0FFEE)
    }
}

impl ReplacementPolicy for RandomEvict {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn attach(&mut self, _num_sets: usize, _ways: usize) {}

    fn on_hit(&mut self, _set: usize, _way: usize, _meta: &AccessMeta) {}

    fn on_fill(&mut self, _set: usize, _way: usize, _meta: &AccessMeta) {}

    fn victim(&mut self, _set: usize, lines: &[Line]) -> usize {
        (self.next() % lines.len() as u64) as usize
    }

    fn set_local(&self) -> bool {
        // One xorshift stream feeds every set: each victim consumes a
        // draw, so any re-interleaving of sets re-deals the stream.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = RandomEvict::with_seed(42);
        let mut b = RandomEvict::with_seed(42);
        let lines = vec![Line::default(); 8];
        for _ in 0..100 {
            assert_eq!(a.victim(0, &lines), b.victim(0, &lines));
        }
    }

    #[test]
    fn victims_cover_all_ways() {
        let mut p = RandomEvict::with_seed(7);
        let lines = vec![Line::default(); 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[p.victim(0, &lines)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_seed_is_replaced() {
        let mut p = RandomEvict::with_seed(0);
        let lines = vec![Line::default(); 4];
        // Must not get stuck returning a constant because state == 0.
        let v: Vec<usize> = (0..16).map(|_| p.victim(0, &lines)).collect();
        assert!(v.iter().any(|&x| x != v[0]));
    }
}
