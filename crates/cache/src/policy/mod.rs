//! Replacement policies.
//!
//! Each policy owns its own recency/prediction state, keyed by
//! `(set, way)`. The engine calls [`ReplacementPolicy::victim`] only on a
//! **full** set, passing the set's lines; the policy returns the way to
//! displace.
//!
//! The menagerie matches the paper's evaluation: LRU (baseline), MRU and
//! DRRIP (Fig. 13 comparison points), and OPT — the policy TCOR implements
//! in hardware by storing an *OPT Number* with every line and evicting the
//! line whose next use lies farthest in the tile traversal (§III.C.6).
//! FIFO, Random, tree-PLRU, NRU, SRRIP and BRRIP round out the toolbox for
//! ablations.

mod dip;
mod fifo;
mod hawkeye;
mod lru;
mod nru;
mod opt;
mod plru;
mod random;
mod rrip;

pub use dip::{Bip, Dip, Lip};
pub use fifo::Fifo;
pub use hawkeye::{simulate_hawkeye, simulate_hawkeye_bank, Hawkeye};
pub use lru::{Lru, Mru};
pub use nru::Nru;
pub use opt::Opt;
pub use plru::TreePlru;
pub use random::RandomEvict;
pub use rrip::{Brrip, Drrip, Srrip};

use crate::cache::Line;
use crate::meta::AccessMeta;

/// Victim-selection and bookkeeping interface for cache replacement.
///
/// Implementations must be deterministic given their construction
/// parameters (the [`RandomEvict`] policy is seeded).
pub trait ReplacementPolicy {
    /// Human-readable policy name, used in experiment output.
    fn name(&self) -> &'static str;

    /// Called once by the engine with the final geometry; allocate
    /// per-line state here.
    fn attach(&mut self, num_sets: usize, ways: usize);

    /// A request hit `(set, way)`; `meta` is the request's metadata.
    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta);

    /// A miss filled `(set, way)` (after any eviction).
    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta);

    /// The line at `(set, way)` was invalidated or drained.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Chooses the way to evict from a **full** set. `lines` holds exactly
    /// the set's ways, all valid.
    fn victim(&mut self, set: usize, lines: &[Line]) -> usize;

    /// Whether every victim decision depends only on the *relative*
    /// history of the victim's own set.
    ///
    /// A `true` here is a proof obligation, not a hint: it asserts that
    /// simulating each set in isolation (each with a fresh policy
    /// instance seeing only that set's access subsequence) produces
    /// bit-identical evictions to the whole-cache run — the contract
    /// the sharded replay core (`crate::shard`) builds on. Policies
    /// with any cross-set or absolute-valued state (global RNG streams,
    /// fill counters, set-dueling monitors, value clamps sensitive to
    /// the global clock magnitude) must leave this `false`.
    fn set_local(&self) -> bool {
        false
    }
}

/// A boxed policy, used where experiment harnesses pick policies at
/// runtime (e.g. the Fig. 13 sweep).
pub type BoxedPolicy = Box<dyn ReplacementPolicy>;

impl ReplacementPolicy for BoxedPolicy {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.as_mut().attach(num_sets, ways)
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        self.as_mut().on_hit(set, way, meta)
    }

    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        self.as_mut().on_fill(set, way, meta)
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.as_mut().on_invalidate(set, way)
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        self.as_mut().victim(set, lines)
    }

    fn set_local(&self) -> bool {
        self.as_ref().set_local()
    }
}

/// The policies compared in the paper's replacement study (Fig. 13), by
/// name. Returns a fresh boxed instance.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn by_name(name: &str) -> BoxedPolicy {
    match name {
        "lru" => Box::new(Lru::new()),
        "mru" => Box::new(Mru::new()),
        "fifo" => Box::new(Fifo::new()),
        "random" => Box::new(RandomEvict::with_seed(0xC0FFEE)),
        "plru" => Box::new(TreePlru::new()),
        "nru" => Box::new(Nru::new()),
        "lip" => Box::new(Lip::new()),
        "bip" => Box::new(Bip::new()),
        "dip" => Box::new(Dip::new()),
        "srrip" => Box::new(Srrip::new()),
        "brrip" => Box::new(Brrip::new()),
        "drrip" => Box::new(Drrip::new()),
        "opt" => Box::new(Opt::new()),
        other => panic!("unknown replacement policy `{other}`"),
    }
}

/// Statically dispatches on a registry policy name: binds `$make` to a
/// concretely-typed `Fn() -> P` constructor and evaluates `$body` once,
/// monomorphized for that policy type. Simulation loops driven through
/// this macro inline the policy callbacks instead of paying
/// [`BoxedPolicy`]'s virtual call per access — the hot-path form of
/// [`by_name`], which it mirrors name-for-name (including the
/// [`RandomEvict`] seed).
///
/// ```
/// use tcor_cache::{dispatch_policy, ReplacementPolicy};
/// let name = dispatch_policy!("lru", make => make().name());
/// assert_eq!(name, "LRU");
/// ```
///
/// # Panics
///
/// Panics on an unknown name, exactly like [`by_name`].
///
/// [`RandomEvict`]: crate::policy::RandomEvict
#[macro_export]
macro_rules! dispatch_policy {
    ($name:expr, $make:ident => $body:expr) => {
        match $name {
            "lru" => {
                let $make = $crate::policy::Lru::new;
                $body
            }
            "mru" => {
                let $make = $crate::policy::Mru::new;
                $body
            }
            "fifo" => {
                let $make = $crate::policy::Fifo::new;
                $body
            }
            "random" => {
                let $make = || $crate::policy::RandomEvict::with_seed(0xC0FFEE);
                $body
            }
            "plru" => {
                let $make = $crate::policy::TreePlru::new;
                $body
            }
            "nru" => {
                let $make = $crate::policy::Nru::new;
                $body
            }
            "lip" => {
                let $make = $crate::policy::Lip::new;
                $body
            }
            "bip" => {
                let $make = $crate::policy::Bip::new;
                $body
            }
            "dip" => {
                let $make = $crate::policy::Dip::new;
                $body
            }
            "srrip" => {
                let $make = $crate::policy::Srrip::new;
                $body
            }
            "brrip" => {
                let $make = $crate::policy::Brrip::new;
                $body
            }
            "drrip" => {
                let $make = $crate::policy::Drrip::new;
                $body
            }
            "opt" => {
                let $make = $crate::policy::Opt::new;
                $body
            }
            other => panic!("unknown replacement policy `{other}`"),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_all_policies() {
        for name in [
            "lru", "mru", "fifo", "random", "plru", "nru", "srrip", "brrip", "drrip", "opt", "lip",
            "bip", "dip",
        ] {
            let p = by_name(name);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown replacement policy")]
    fn registry_rejects_unknown() {
        by_name("clairvoyant-ai");
    }

    /// `dispatch_policy!` must stay a name-for-name mirror of
    /// [`by_name`]: same `name()`, same set-locality, for every
    /// registry entry (a drifted arm would silently change which
    /// simulation a single-pass engine runs).
    #[test]
    fn dispatch_mirrors_by_name() {
        for name in [
            "lru", "mru", "fifo", "random", "plru", "nru", "srrip", "brrip", "drrip", "opt", "lip",
            "bip", "dip",
        ] {
            let boxed = by_name(name);
            let (static_name, static_local) =
                dispatch_policy!(name, make => { let p = make(); (p.name(), p.set_local()) });
            assert_eq!(static_name, boxed.name(), "{name}");
            assert_eq!(static_local, boxed.set_local(), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown replacement policy")]
    fn dispatch_rejects_unknown() {
        dispatch_policy!("clairvoyant-ai", make => {
            let _ = make;
        });
    }

    /// Exhaustive set-locality classification. Every registry policy is
    /// pinned on one side; a new policy (or a changed answer) must
    /// consciously update this list *and* the sharding equivalence
    /// property in `crate::shard` before the replay core will trust it.
    #[test]
    fn set_locality_classification_is_pinned() {
        // Per-set relative state only: strictly-increasing recency/fill
        // clocks compared within a set (lru/mru/fifo), per-line bits
        // (nru/srrip), a per-set PLRU tree, or per-line future
        // timestamps (opt).
        for name in ["lru", "mru", "fifo", "nru", "plru", "srrip", "opt"] {
            assert!(by_name(name).set_local(), "{name} should be set-local");
        }
        // Cross-set or absolute-valued state: a global RNG stream
        // (random), global fill counters (bip/brrip), set-dueling PSEL
        // monitors keyed on set index (dip/drrip), or LIP's
        // saturating-decrement clamp, whose within-set ordering depends
        // on the global clock magnitude.
        for name in ["random", "lip", "bip", "dip", "brrip", "drrip"] {
            assert!(!by_name(name).set_local(), "{name} must not be set-local");
        }
        assert!(!Hawkeye::new().set_local(), "hawkeye's predictor is global");
        // A boxed policy answers for its inner policy.
        assert!(by_name("lru").set_local());
    }
}
