//! Replacement policies.
//!
//! Each policy owns its own recency/prediction state, keyed by
//! `(set, way)`. The engine calls [`ReplacementPolicy::victim`] only on a
//! **full** set, passing the set's lines; the policy returns the way to
//! displace.
//!
//! The menagerie matches the paper's evaluation: LRU (baseline), MRU and
//! DRRIP (Fig. 13 comparison points), and OPT — the policy TCOR implements
//! in hardware by storing an *OPT Number* with every line and evicting the
//! line whose next use lies farthest in the tile traversal (§III.C.6).
//! FIFO, Random, tree-PLRU, NRU, SRRIP and BRRIP round out the toolbox for
//! ablations.

mod dip;
mod fifo;
mod hawkeye;
mod lru;
mod nru;
mod opt;
mod plru;
mod random;
mod rrip;

pub use dip::{Bip, Dip, Lip};
pub use fifo::Fifo;
pub use hawkeye::{simulate_hawkeye, simulate_hawkeye_bank, Hawkeye};
pub use lru::{Lru, Mru};
pub use nru::Nru;
pub use opt::Opt;
pub use plru::TreePlru;
pub use random::RandomEvict;
pub use rrip::{Brrip, Drrip, Srrip};

use crate::cache::Line;
use crate::meta::AccessMeta;

/// Victim-selection and bookkeeping interface for cache replacement.
///
/// Implementations must be deterministic given their construction
/// parameters (the [`RandomEvict`] policy is seeded).
pub trait ReplacementPolicy {
    /// Human-readable policy name, used in experiment output.
    fn name(&self) -> &'static str;

    /// Called once by the engine with the final geometry; allocate
    /// per-line state here.
    fn attach(&mut self, num_sets: usize, ways: usize);

    /// A request hit `(set, way)`; `meta` is the request's metadata.
    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta);

    /// A miss filled `(set, way)` (after any eviction).
    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta);

    /// The line at `(set, way)` was invalidated or drained.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Chooses the way to evict from a **full** set. `lines` holds exactly
    /// the set's ways, all valid.
    fn victim(&mut self, set: usize, lines: &[Line]) -> usize;
}

/// A boxed policy, used where experiment harnesses pick policies at
/// runtime (e.g. the Fig. 13 sweep).
pub type BoxedPolicy = Box<dyn ReplacementPolicy>;

impl ReplacementPolicy for BoxedPolicy {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.as_mut().attach(num_sets, ways)
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        self.as_mut().on_hit(set, way, meta)
    }

    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        self.as_mut().on_fill(set, way, meta)
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.as_mut().on_invalidate(set, way)
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        self.as_mut().victim(set, lines)
    }
}

/// The policies compared in the paper's replacement study (Fig. 13), by
/// name. Returns a fresh boxed instance.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn by_name(name: &str) -> BoxedPolicy {
    match name {
        "lru" => Box::new(Lru::new()),
        "mru" => Box::new(Mru::new()),
        "fifo" => Box::new(Fifo::new()),
        "random" => Box::new(RandomEvict::with_seed(0xC0FFEE)),
        "plru" => Box::new(TreePlru::new()),
        "nru" => Box::new(Nru::new()),
        "lip" => Box::new(Lip::new()),
        "bip" => Box::new(Bip::new()),
        "dip" => Box::new(Dip::new()),
        "srrip" => Box::new(Srrip::new()),
        "brrip" => Box::new(Brrip::new()),
        "drrip" => Box::new(Drrip::new()),
        "opt" => Box::new(Opt::new()),
        other => panic!("unknown replacement policy `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_all_policies() {
        for name in [
            "lru", "mru", "fifo", "random", "plru", "nru", "srrip", "brrip", "drrip", "opt", "lip",
            "bip", "dip",
        ] {
            let p = by_name(name);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown replacement policy")]
    fn registry_rejects_unknown() {
        by_name("clairvoyant-ai");
    }
}
