//! Not-Recently-Used replacement.

use super::ReplacementPolicy;
use crate::cache::Line;
use crate::meta::AccessMeta;

/// NRU: one reference bit per line, set on touch. Victims are chosen among
/// lines with a clear bit (lowest way first); when all bits in the set are
/// set, they are cleared first (except conceptually the just-touched one —
/// the classic single-bit approximation used by several MMUs and GPUs).
#[derive(Clone, Debug, Default)]
pub struct Nru {
    referenced: Vec<bool>,
    ways: usize,
}

impl Nru {
    /// Creates an NRU policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Nru {
    fn name(&self) -> &'static str {
        "NRU"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.ways = ways;
        self.referenced = vec![false; num_sets * ways];
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.referenced[set * self.ways + way] = true;
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.referenced[set * self.ways + way] = true;
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.referenced[set * self.ways + way] = false;
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        let base = set * self.ways;
        if let Some(w) = (0..lines.len()).find(|&w| !self.referenced[base + w]) {
            return w;
        }
        // All referenced: clear the whole set and take way 0.
        for w in 0..lines.len() {
            self.referenced[base + w] = false;
        }
        0
    }

    fn set_local(&self) -> bool {
        // One reference bit per line; the all-referenced sweep clears
        // only the victim's own set.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_unreferenced_way() {
        let mut p = Nru::new();
        p.attach(1, 4);
        let lines = vec![Line::default(); 4];
        for w in [0usize, 1, 3] {
            p.on_hit(0, w, &AccessMeta::NONE);
        }
        assert_eq!(p.victim(0, &lines), 2);
    }

    #[test]
    fn clears_bits_when_all_referenced() {
        let mut p = Nru::new();
        p.attach(1, 2);
        let lines = vec![Line::default(); 2];
        p.on_hit(0, 0, &AccessMeta::NONE);
        p.on_hit(0, 1, &AccessMeta::NONE);
        assert_eq!(p.victim(0, &lines), 0);
        // After the sweep, way 1 is now unreferenced.
        p.on_fill(0, 0, &AccessMeta::NONE);
        assert_eq!(p.victim(0, &lines), 1);
    }
}
