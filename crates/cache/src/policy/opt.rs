//! The OPT replacement policy (Mattson et al. \[27\]) — TCOR's centrepiece.
//!
//! OPT evicts, among the candidate lines of a set, the one whose **next
//! access lies farthest in the future**. It is provably optimal for miss
//! minimization but needs future knowledge; TCOR obtains that knowledge
//! for the Parameter Buffer because the Polygon List Builder knows, at
//! binning time, every tile that will later read each primitive
//! (§III.A).
//!
//! The same policy object serves two modes, distinguished only by what the
//! caller passes in [`AccessMeta::next_use`]:
//!
//! * **Exact Belady** — the absolute trace position of the next reference
//!   (from [`crate::trace::annotate_next_use`]); this is the offline
//!   yardstick of Figs. 1/11/12/13.
//! * **TCOR hardware OPT** — the 12-bit *OPT Number* (traversal rank of
//!   the next tile that uses the datum), updated on every hit with the
//!   rank carried by the request, exactly as the Primitive Buffer does.

use super::ReplacementPolicy;
use crate::cache::Line;
use crate::meta::AccessMeta;

/// Greatest-next-use replacement. Stores each line's `next_use` priority
/// and evicts the maximum (ties broken toward the lowest way).
#[derive(Clone, Debug, Default)]
pub struct Opt {
    next_use: Vec<u64>,
    ways: usize,
}

impl Opt {
    /// Creates an OPT policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Opt {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.ways = ways;
        self.next_use = vec![u64::MAX; num_sets * ways];
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        // §III.C.3 (Hit): "The OPT Number of that line is then updated
        // with the one provided by the request."
        self.next_use[set * self.ways + way] = meta.next_use;
    }

    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        self.next_use[set * self.ways + way] = meta.next_use;
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.next_use[set * self.ways + way] = u64::MAX;
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        let base = set * self.ways;
        let mut best = 0usize;
        let mut best_nu = 0u64;
        for w in 0..lines.len() {
            let nu = self.next_use[base + w];
            if w == 0 || nu > best_nu {
                best = w;
                best_nu = nu;
            }
        }
        best
    }

    fn set_local(&self) -> bool {
        // Per-line next-use priorities supplied by the caller; ties
        // break to the lowest way regardless of any global state.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::index::Indexing;
    use crate::meta::AccessKind;
    use crate::policy::Lru;
    use crate::trace::{annotate_next_use, Access};
    use tcor_common::{BlockAddr, CacheParams};

    #[test]
    fn evicts_farthest_next_use() {
        let mut cache = Cache::new(
            CacheParams::new(128, 64, 0, 1),
            Indexing::Modulo,
            Opt::new(),
        );
        cache.access(BlockAddr(1), AccessKind::Write, AccessMeta::next_use(10));
        cache.access(BlockAddr(2), AccessKind::Write, AccessMeta::next_use(3));
        let out = cache.access(BlockAddr(3), AccessKind::Write, AccessMeta::next_use(5));
        // Block 1 (next use at 10) is farthest away.
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(1));
        assert!(cache.contains(BlockAddr(2)));
    }

    #[test]
    fn never_used_again_is_first_victim() {
        let mut cache = Cache::new(
            CacheParams::new(128, 64, 0, 1),
            Indexing::Modulo,
            Opt::new(),
        );
        cache.access(
            BlockAddr(1),
            AccessKind::Read,
            AccessMeta::next_use(u64::MAX),
        );
        cache.access(BlockAddr(2), AccessKind::Read, AccessMeta::next_use(50));
        let out = cache.access(BlockAddr(3), AccessKind::Read, AccessMeta::next_use(4));
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(1));
    }

    #[test]
    fn hit_refreshes_stored_next_use() {
        let mut cache = Cache::new(
            CacheParams::new(128, 64, 0, 1),
            Indexing::Modulo,
            Opt::new(),
        );
        cache.access(BlockAddr(1), AccessKind::Read, AccessMeta::next_use(5));
        cache.access(BlockAddr(2), AccessKind::Read, AccessMeta::next_use(7));
        // Re-access block 1: its *new* next use is far away (100).
        cache.access(BlockAddr(1), AccessKind::Read, AccessMeta::next_use(100));
        let out = cache.access(BlockAddr(3), AccessKind::Read, AccessMeta::next_use(8));
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(1));
    }

    /// Tie-break property: when several lines share the greatest next-use,
    /// the victim is always the **lowest way** holding it — deterministic
    /// selection is what makes replacement auditable. Swept over several
    /// fully-associative geometries, tie values, and positions of the
    /// tying group.
    #[test]
    fn equal_next_use_ties_break_to_lowest_way() {
        for ways in [2usize, 4, 8] {
            for tie in [100u64, 4096, u64::MAX] {
                for first_tying_way in 0..ways {
                    let mut cache = Cache::new(
                        CacheParams::new(ways as u64 * 64, 64, 0, 1),
                        Indexing::Modulo,
                        Opt::new(),
                    );
                    // Ways below `first_tying_way` get strictly nearer next
                    // uses (w < ways <= 8 < tie); the rest all tie at `tie`.
                    for w in 0..ways {
                        let nu = if w < first_tying_way { w as u64 } else { tie };
                        cache.access(
                            BlockAddr(w as u64),
                            AccessKind::Read,
                            AccessMeta::next_use(nu),
                        );
                    }
                    let out =
                        cache.access(BlockAddr(999), AccessKind::Read, AccessMeta::next_use(0));
                    assert_eq!(
                        out.evicted.unwrap().addr,
                        BlockAddr(first_tying_way as u64),
                        "ways={ways} tie={tie} first_tying_way={first_tying_way}"
                    );
                }
            }
        }
    }

    /// Belady's inequality: with exact next-use annotations, OPT never
    /// misses more than LRU on the same fully-associative geometry.
    #[test]
    fn opt_beats_or_ties_lru_on_looping_trace() {
        let blocks: Vec<u64> = (0..6u64).cycle().take(120).collect();
        let accesses: Vec<Access> = blocks.iter().map(|&b| Access::read(BlockAddr(b))).collect();
        let annotated = annotate_next_use(&accesses);

        let params = CacheParams::new(4 * 64, 64, 0, 1);
        let mut opt_cache = Cache::new(params, Indexing::Modulo, Opt::new());
        let mut lru_cache = Cache::new(params, Indexing::Modulo, Lru::new());
        for (a, nu) in accesses.iter().zip(&annotated) {
            opt_cache.access(a.addr, a.kind, AccessMeta::next_use(*nu));
            lru_cache.access(a.addr, a.kind, AccessMeta::NONE);
        }
        // LRU thrashes on a 6-block loop in a 4-line cache (0 hits);
        // OPT keeps 3 loop blocks resident.
        assert_eq!(lru_cache.stats().hits(), 0);
        assert!(opt_cache.stats().misses() < lru_cache.stats().misses());
        assert!(opt_cache.stats().hits() >= 3 * (120 / 6 - 2) as u64);
    }
}
