//! Recency-based policies: LRU (the paper's baseline) and MRU.

use super::ReplacementPolicy;
use crate::cache::Line;
use crate::meta::AccessMeta;

/// Least-Recently-Used: evicts the way touched longest ago.
///
/// Implemented with a global monotonic clock and a per-line timestamp —
/// exact LRU, not an approximation.
#[derive(Clone, Debug, Default)]
pub struct Lru {
    clock: u64,
    last_touch: Vec<u64>,
    ways: usize,
}

impl Lru {
    /// Creates an LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.last_touch[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.ways = ways;
        self.last_touch = vec![0; num_sets * ways];
        self.clock = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.last_touch[set * self.ways + way] = 0;
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        let base = set * self.ways;
        (0..lines.len())
            .min_by_key(|&w| self.last_touch[base + w])
            .expect("victim called on empty set")
    }

    fn set_local(&self) -> bool {
        // Victims compare strictly-increasing timestamps *within* one
        // set; only their relative order matters, never the magnitude.
        true
    }
}

/// Most-Recently-Used: evicts the way touched most recently. A known-bad
/// policy for this workload (Fig. 13's worst curve), kept as a comparison
/// point.
#[derive(Clone, Debug, Default)]
pub struct Mru {
    inner: Lru,
}

impl Mru {
    /// Creates an MRU policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Mru {
    fn name(&self) -> &'static str {
        "MRU"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.inner.attach(num_sets, ways);
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        self.inner.on_hit(set, way, meta);
    }

    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        self.inner.on_fill(set, way, meta);
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.inner.on_invalidate(set, way);
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        let base = set * self.inner.ways;
        (0..lines.len())
            .max_by_key(|&w| self.inner.last_touch[base + w])
            .expect("victim called on empty set")
    }

    fn set_local(&self) -> bool {
        // Same relative-timestamp argument as LRU, maximum instead of
        // minimum.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::index::Indexing;
    use crate::meta::AccessKind;
    use tcor_common::{BlockAddr, CacheParams};

    fn run(policy_name: &str, seq: &[u64], lines: u64) -> Vec<Option<u64>> {
        // Returns the eviction (if any) after each access.
        let mut cache = Cache::new(
            CacheParams::new(lines * 64, 64, 0, 1),
            Indexing::Modulo,
            super::super::by_name(policy_name),
        );
        seq.iter()
            .map(|&b| {
                cache
                    .access(BlockAddr(b), AccessKind::Read, AccessMeta::NONE)
                    .evicted
                    .map(|e| e.addr.0)
            })
            .collect()
    }

    #[test]
    fn lru_classic_sequence() {
        // 2-line fully associative: A B A C -> C evicts B.
        let ev = run("lru", &[1, 2, 1, 3], 2);
        assert_eq!(ev, vec![None, None, None, Some(2)]);
    }

    #[test]
    fn mru_evicts_most_recent() {
        // 2-line: A B A C -> MRU evicts A (most recently touched).
        let ev = run("mru", &[1, 2, 1, 3], 2);
        assert_eq!(ev, vec![None, None, None, Some(1)]);
    }

    #[test]
    fn lru_cyclic_thrash_has_zero_hits() {
        // The pathological LRU case: cyclic access to N+1 blocks in an
        // N-line cache misses every time.
        let seq: Vec<u64> = (0..5u64).cycle().take(50).collect();
        let mut cache = Cache::new(
            CacheParams::new(4 * 64, 64, 0, 1),
            Indexing::Modulo,
            Lru::new(),
        );
        for &b in &seq {
            cache.access(BlockAddr(b), AccessKind::Read, AccessMeta::NONE);
        }
        assert_eq!(cache.stats().read_hits, 0);
        assert_eq!(cache.stats().read_misses, 50);
    }
}
