//! A Hawkeye-style predictive policy (Jain & Lin, the paper's reference
//! \[21\]: "Back to the future: Leveraging Belady's algorithm for
//! improved cache replacement").
//!
//! Hawkeye reconstructs what Belady-OPT *would have done* on the recent
//! past (the **OPTgen** occupancy-vector algorithm) and trains a
//! predictor to classify accesses as cache-friendly (OPT would have hit)
//! or cache-averse (OPT would have missed). Friendly lines are inserted
//! with high priority, averse lines with low.
//!
//! The original trains per load PC; a trace-driven cache simulator has no
//! PCs, so this implementation trains per **address region** (block
//! address high bits) — the documented simplification. The paper's point
//! (Fig. 13) survives either way: history-based prediction cannot match
//! TCOR's *exact* future knowledge on the Parameter Buffer stream.

use super::ReplacementPolicy;
use crate::cache::Line;
use crate::meta::AccessMeta;
use tcor_common::{BlockAddr, FxHashMap};

/// Length of the per-set OPTgen history window (in set accesses).
const WINDOW: usize = 64;

/// 3-bit saturating training counters.
const COUNTER_MAX: i8 = 3;
const COUNTER_MIN: i8 = -4;

/// RRIP-style ages used for insertion/victimization.
const MAX_AGE: u8 = 7;

/// Per-set OPTgen state: a sliding occupancy vector over the last
/// [`WINDOW`] accesses to the set.
#[derive(Clone, Debug, Default)]
struct OptGen {
    /// Occupancy at each quantum of the window (older entries first).
    occupancy: Vec<u8>,
    /// Last window position each block was accessed at, by block.
    last_access: FxHashMap<BlockAddr, usize>,
    /// Monotonic access count for this set.
    time: usize,
}

impl OptGen {
    /// Records an access and returns whether OPT (with `capacity` lines)
    /// would have hit it: true iff every quantum in the reuse interval
    /// had spare occupancy.
    fn access(&mut self, addr: BlockAddr, capacity: usize) -> bool {
        let now = self.time;
        self.time += 1;
        self.occupancy.push(0);
        // Age out entries that slid past the window.
        if self.occupancy.len() > WINDOW {
            let drop = self.occupancy.len() - WINDOW;
            self.occupancy.drain(..drop);
            self.last_access.retain(|_, t| *t >= drop);
            for t in self.last_access.values_mut() {
                *t -= drop;
            }
        }
        let hit = match self.last_access.get(&addr) {
            Some(&prev_rel) => {
                let interval = prev_rel..self.occupancy.len() - 1;
                let fits = interval
                    .clone()
                    .all(|i| (self.occupancy[i] as usize) < capacity);
                if fits {
                    for i in interval {
                        self.occupancy[i] += 1;
                    }
                }
                fits
            }
            None => false, // cold: OPT misses it too
        };
        let _ = now;
        self.last_access.insert(addr, self.occupancy.len() - 1);
        hit
    }
}

/// The Hawkeye-style policy.
#[derive(Clone, Debug, Default)]
pub struct Hawkeye {
    optgen: Vec<OptGen>,
    /// Region (addr >> 6) -> saturating friendliness counter.
    predictor: FxHashMap<u64, i8>,
    /// Per-line age (RRIP-like) and training region.
    age: Vec<u8>,
    region: Vec<u64>,
    ways: usize,
}

impl Hawkeye {
    /// Creates a Hawkeye policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn region_of(addr: BlockAddr) -> u64 {
        addr.0 >> 6
    }

    fn train(&mut self, addr: BlockAddr, set: usize) {
        let opt_hit = self.optgen[set].access(addr, self.ways);
        let counter = self.predictor.entry(Self::region_of(addr)).or_insert(0);
        if opt_hit {
            *counter = (*counter + 1).min(COUNTER_MAX);
        } else {
            *counter = (*counter - 1).max(COUNTER_MIN);
        }
    }

    fn friendly(&self, addr: BlockAddr) -> bool {
        self.predictor
            .get(&Self::region_of(addr))
            .copied()
            .unwrap_or(0)
            >= 0
    }
}

impl ReplacementPolicy for Hawkeye {
    fn name(&self) -> &'static str {
        "Hawkeye"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.ways = ways;
        self.optgen = vec![OptGen::default(); num_sets];
        self.age = vec![MAX_AGE; num_sets * ways];
        self.region = vec![0; num_sets * ways];
        self.predictor.clear();
    }

    fn on_hit(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        // `user` carries the block address when driven through the engine
        // by `simulate_policy`; absent that, train on the stored region.
        let addr = BlockAddr(if meta.user != 0 {
            meta.user
        } else {
            self.region[set * self.ways + way] << 6
        });
        self.train(addr, set);
        self.age[set * self.ways + way] = if self.friendly(addr) { 0 } else { MAX_AGE };
    }

    fn on_fill(&mut self, set: usize, way: usize, meta: &AccessMeta) {
        let addr = BlockAddr(meta.user);
        self.train(addr, set);
        let idx = set * self.ways + way;
        self.region[idx] = Self::region_of(addr);
        self.age[idx] = if self.friendly(addr) { 0 } else { MAX_AGE };
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        let base = set * self.ways;
        // Prefer cache-averse (age == MAX) lines; otherwise oldest.
        if let Some(w) = (0..lines.len()).find(|&w| self.age[base + w] >= MAX_AGE) {
            return w;
        }
        let w = (0..lines.len())
            .max_by_key(|&w| self.age[base + w])
            .expect("nonempty set");
        for i in 0..lines.len() {
            self.age[base + i] = self.age[base + i].saturating_add(1).min(MAX_AGE - 1);
        }
        w
    }

    fn set_local(&self) -> bool {
        // The region predictor is shared across sets: training in one
        // set changes insertion ages in every other.
        false
    }
}

/// Drives a trace through a cache running Hawkeye, passing each block
/// address in the metadata user word (the policy's training signal).
pub fn simulate_hawkeye(
    trace: &[crate::trace::Access],
    params: tcor_common::CacheParams,
) -> tcor_common::AccessStats {
    let mut cache =
        crate::cache::Cache::new(params, crate::index::Indexing::Modulo, Hawkeye::new());
    for a in trace {
        cache.access(a.addr, a.kind, AccessMeta::with_user(u64::MAX, a.addr.0));
    }
    *cache.stats()
}

/// Streams one trace through a bank of independent Hawkeye caches — one
/// per geometry — in a single pass, returning the stats in geometry
/// order. Each instance sees exactly the access sequence
/// [`simulate_hawkeye`] would feed it, so the results are bit-identical;
/// only the trace iteration is shared.
pub fn simulate_hawkeye_bank(
    trace: &[crate::trace::Access],
    geometries: &[tcor_common::CacheParams],
) -> Vec<tcor_common::AccessStats> {
    let mut caches: Vec<_> = geometries
        .iter()
        .map(|&p| crate::cache::Cache::new(p, crate::index::Indexing::Modulo, Hawkeye::new()))
        .collect();
    for a in trace {
        let meta = AccessMeta::with_user(u64::MAX, a.addr.0);
        for cache in &mut caches {
            cache.access(a.addr, a.kind, meta);
        }
    }
    caches.iter().map(|c| *c.stats()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Access;
    use tcor_common::CacheParams;

    fn reads(seq: &[u64]) -> Vec<Access> {
        seq.iter().map(|&b| Access::read(BlockAddr(b))).collect()
    }

    #[test]
    fn optgen_detects_fitting_reuse() {
        let mut g = OptGen::default();
        assert!(!g.access(BlockAddr(1), 2), "cold access");
        assert!(!g.access(BlockAddr(2), 2), "cold access");
        assert!(g.access(BlockAddr(1), 2), "reuse fits in 2 lines");
    }

    #[test]
    fn optgen_rejects_overcommitted_interval() {
        let mut g = OptGen::default();
        // Capacity 1: interleaved reuse cannot both fit.
        g.access(BlockAddr(1), 1);
        g.access(BlockAddr(2), 1);
        assert!(g.access(BlockAddr(1), 1), "first reuse claims the line");
        assert!(!g.access(BlockAddr(2), 1), "second reuse cannot fit");
    }

    #[test]
    fn hawkeye_runs_and_beats_nothing_catastrophically() {
        // Sanity: on a loop that fits, Hawkeye behaves like any sane
        // policy (hits after the cold pass).
        let seq: Vec<u64> = (0..4u64).cycle().take(100).collect();
        let stats = simulate_hawkeye(&reads(&seq), CacheParams::new(8, 1, 4, 1));
        assert_eq!(stats.misses(), 4, "only cold misses on a fitting loop");
    }

    #[test]
    fn hawkeye_survives_thrash_better_than_plain_lru_shape() {
        // 6-block cycle in a 4-line cache: LRU gets 0 hits; a
        // prediction-based policy should retain something once trained.
        let seq: Vec<u64> = (0..6u64).cycle().take(600).collect();
        let hawkeye = simulate_hawkeye(&reads(&seq), CacheParams::new(4, 1, 0, 1));
        assert!(hawkeye.hits() > 0, "Hawkeye should not thrash to zero hits");
    }

    #[test]
    fn window_aging_does_not_leak() {
        let mut g = OptGen::default();
        for i in 0..10_000u64 {
            g.access(BlockAddr(i % 50), 4);
        }
        assert!(g.occupancy.len() <= WINDOW);
        assert!(g.last_access.len() <= WINDOW + 1);
    }
}
