//! Tree pseudo-LRU replacement.

use super::ReplacementPolicy;
use crate::cache::Line;
use crate::meta::AccessMeta;

/// Binary-tree PLRU: each set keeps `ways - 1` direction bits arranged as a
/// complete binary tree; touches flip the path bits away from the touched
/// way, victims follow the bits. The standard hardware approximation of
/// LRU for power-of-two associativities; non-power-of-two ways fall back to
/// clamping the leaf index.
#[derive(Clone, Debug, Default)]
pub struct TreePlru {
    bits: Vec<bool>,
    ways: usize,
    tree_ways: usize, // ways rounded up to a power of two
}

impl TreePlru {
    /// Creates a tree-PLRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, set: usize, way: usize) {
        // Walk from root to the leaf `way`, setting each bit to point AWAY
        // from the taken direction.
        let base = set * (self.tree_ways - 1);
        let mut node = 0usize; // index within the set's tree
        let mut lo = 0usize;
        let mut hi = self.tree_ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let went_right = way >= mid;
            self.bits[base + node] = !went_right; // bit points to the cold half
            node = 2 * node + if went_right { 2 } else { 1 };
            if went_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn name(&self) -> &'static str {
        "PLRU"
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.ways = ways;
        self.tree_ways = ways.next_power_of_two().max(2);
        self.bits = vec![false; num_sets * (self.tree_ways - 1)];
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize, _lines: &[Line]) -> usize {
        let base = set * (self.tree_ways - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.tree_ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = self.bits[base + node];
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo.min(self.ways - 1)
    }

    fn set_local(&self) -> bool {
        // The direction-bit tree is entirely per-set.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::index::Indexing;
    use crate::meta::AccessKind;
    use tcor_common::{BlockAddr, CacheParams};

    #[test]
    fn plru_victim_avoids_recent_touches() {
        let mut p = TreePlru::new();
        p.attach(1, 4);
        let lines = vec![Line::default(); 4];
        // Touch ways 0..3 in order; PLRU then points at way 0's half.
        for w in 0..4 {
            p.on_fill(0, w, &AccessMeta::NONE);
        }
        let v = p.victim(0, &lines);
        assert_ne!(v, 3, "must not evict the most recently touched way");
    }

    #[test]
    fn plru_tracks_lru_on_sequential_fill() {
        let mut p = TreePlru::new();
        p.attach(1, 4);
        let lines = vec![Line::default(); 4];
        for w in [0usize, 1, 2, 3, 0, 1] {
            p.on_hit(0, w, &AccessMeta::NONE);
        }
        // True LRU would evict 2; PLRU agrees on this simple pattern.
        assert_eq!(p.victim(0, &lines), 2);
    }

    #[test]
    fn plru_behaves_in_cache() {
        let mut cache = Cache::new(
            CacheParams::new(4 * 64, 64, 4, 1),
            Indexing::Modulo,
            TreePlru::new(),
        );
        for b in 0..4u64 {
            cache.access(BlockAddr(b), AccessKind::Read, AccessMeta::NONE);
        }
        let out = cache.access(BlockAddr(100), AccessKind::Read, AccessMeta::NONE);
        assert!(out.evicted.is_some());
        // Re-touching after eviction still hits remaining lines.
        assert!(
            cache
                .access(BlockAddr(3), AccessKind::Read, AccessMeta::NONE)
                .hit
        );
    }
}
