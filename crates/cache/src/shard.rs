//! Data-oriented per-set trace sharding.
//!
//! Cache sets never interact: victim selection sees only the lines of
//! one set, and a **set-local** policy (see
//! [`ReplacementPolicy::set_local`]) keeps no cross-set state that
//! could couple them. For such policies, simulating a geometry is
//! equivalent to simulating each set independently — and a trace
//! pre-bucketed by set index drives those simulations over *dense*
//! per-set streams instead of re-hashing every access and bouncing
//! across a whole cache's line array.
//!
//! [`ShardedTrace`] is the structure-of-arrays layout: one counting
//! sort on the set index turns a trace into CSR-style per-set runs of
//! `(addr, kind, next_use)` columns. [`simulate_policy_shard_range`]
//! replays a contiguous range of sets through single-set caches; ranges
//! are embarrassingly parallel and their statistics sum in any order
//! (the counters are additive), so a multi-worker dispatch is
//! bit-identical to the serial whole-cache simulation.
//!
//! [`ShardCache`] memoizes the layouts per set count so a bank of
//! policies sweeping the same geometries (the Fig. 13 studies) pays for
//! each bucketing exactly once.

use crate::cache::Cache;
use crate::index::Indexing;
use crate::meta::{AccessKind, AccessMeta};
use crate::policy::ReplacementPolicy;
use crate::trace::Access;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Arc, Mutex, PoisonError};
use tcor_common::{AccessStats, BlockAddr, CacheParams};

/// A trace bucketed by set index, in structure-of-arrays layout.
///
/// `starts` is a CSR offset table: set `s` owns the half-open column
/// range `starts[s]..starts[s + 1]`, holding that set's accesses in
/// trace order. `next_use` is gathered alongside when an annotation is
/// supplied (empty otherwise) — the values stay *global* trace
/// positions, which is all the OPT policy compares.
#[derive(Clone, Debug)]
pub struct ShardedTrace {
    num_sets: usize,
    starts: Vec<usize>,
    addrs: Vec<BlockAddr>,
    kinds: Vec<AccessKind>,
    next_use: Vec<u64>,
}

impl ShardedTrace {
    /// Buckets `trace` into `num_sets` per-set runs under `indexing`,
    /// gathering the optional next-use annotation into the same layout.
    /// One counting sort: O(trace + sets) time, no hashing.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets == 0`, or (debug) on a length-mismatched
    /// annotation.
    pub fn build(
        trace: &[Access],
        next: Option<&[u64]>,
        num_sets: u64,
        indexing: Indexing,
    ) -> Self {
        assert!(num_sets > 0, "cache must have at least one set");
        if let Some(next) = next {
            debug_assert_eq!(trace.len(), next.len(), "annotation must match trace");
        }
        let sets = num_sets as usize;
        let n = trace.len();
        let mut counts = vec![0usize; sets];
        for a in trace {
            counts[indexing.set_of(a.addr.0, num_sets) as usize] += 1;
        }
        let mut starts = Vec::with_capacity(sets + 1);
        let mut acc = 0usize;
        starts.push(0);
        for c in &counts {
            acc += c;
            starts.push(acc);
        }
        let mut cursor: Vec<usize> = starts[..sets].to_vec();
        let mut addrs = vec![BlockAddr(0); n];
        let mut kinds = vec![AccessKind::Read; n];
        let mut next_use = vec![0u64; if next.is_some() { n } else { 0 }];
        for (i, a) in trace.iter().enumerate() {
            let s = indexing.set_of(a.addr.0, num_sets) as usize;
            let at = cursor[s];
            cursor[s] = at + 1;
            addrs[at] = a.addr;
            kinds[at] = a.kind;
            if let Some(next) = next {
                next_use[at] = next[i];
            }
        }
        ShardedTrace {
            num_sets: sets,
            starts,
            addrs,
            kinds,
            next_use,
        }
    }

    /// Number of set buckets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Total accesses across all sets.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Whether a next-use annotation was gathered at build time.
    pub fn annotated(&self) -> bool {
        self.next_use.len() == self.addrs.len()
    }

    /// Number of accesses bucketed into `set`.
    pub fn set_len(&self, set: usize) -> usize {
        self.starts[set + 1] - self.starts[set]
    }

    /// Approximate resident bytes of the column arrays (for cache
    /// budgeting).
    pub fn resident_bytes(&self) -> usize {
        self.addrs.len() * std::mem::size_of::<BlockAddr>()
            + self.kinds.len() * std::mem::size_of::<AccessKind>()
            + self.next_use.len() * std::mem::size_of::<u64>()
            + self.starts.len() * std::mem::size_of::<usize>()
    }
}

/// Replays the sets in `sets` through independent single-set caches of
/// `params`' associativity, one fresh policy per set, and returns the
/// summed statistics.
///
/// For a [set-local](ReplacementPolicy::set_local) policy the result is
/// bit-identical to the whole-cache simulation restricted to those
/// sets: each set sees exactly its own access subsequence in trace
/// order, way assignment inside a set is position-based in both
/// layouts, and every statistic is a per-access/per-eviction counter
/// (order-independent under summation). When `oracle` is `true` the
/// gathered next-use column feeds the access metadata (the shard must
/// have been [built](ShardedTrace::build) with an annotation).
///
/// # Panics
///
/// Panics if `oracle` is requested on an unannotated shard, or if
/// `params` disagrees with the shard's set count.
pub fn simulate_policy_shard_range<P: ReplacementPolicy>(
    shard: &ShardedTrace,
    params: CacheParams,
    sets: Range<usize>,
    oracle: bool,
    mut make_policy: impl FnMut() -> P,
) -> AccessStats {
    assert_eq!(
        params.num_sets() as usize,
        shard.num_sets,
        "geometry and shard disagree on set count"
    );
    assert!(
        !oracle || shard.annotated(),
        "oracle replay needs an annotated shard"
    );
    // One set of this geometry, as its own (single-set) cache. Fully
    // associative params are already a single set; set-associative ones
    // shrink to `ways` lines in one set.
    let set_params = if params.is_fully_associative() {
        params
    } else {
        CacheParams::new(
            params.effective_ways() * params.line_bytes,
            params.line_bytes,
            params.ways,
            params.latency,
        )
    };
    let mut total = AccessStats::new();
    for s in sets {
        let run = shard.starts[s]..shard.starts[s + 1];
        if run.is_empty() {
            continue;
        }
        // `set_of` short-circuits to 0 for a single set, so the inner
        // cache never hashes; the indexing choice is immaterial here.
        let mut cache = Cache::new(set_params, Indexing::Modulo, make_policy());
        for i in run {
            let meta = if oracle {
                AccessMeta::next_use(shard.next_use[i])
            } else {
                AccessMeta::NONE
            };
            cache.access(shard.addrs[i], shard.kinds[i], meta);
        }
        total += *cache.stats();
    }
    total
}

/// [`simulate_policy_shard_range`] over every set: the full sharded
/// equivalent of one whole-cache simulation.
pub fn simulate_policy_sharded<P: ReplacementPolicy>(
    shard: &ShardedTrace,
    params: CacheParams,
    oracle: bool,
    make_policy: impl FnMut() -> P,
) -> AccessStats {
    simulate_policy_shard_range(shard, params, 0..shard.num_sets, oracle, make_policy)
}

/// How many [`ShardedTrace`] layouts a [`ShardCache`] retains.
///
/// The Fig. 13 small-bank studies sweep at most four set counts, so
/// four slots give full reuse across their per-policy bank calls while
/// a wide sweep (Fig. 12's 40 distinct set counts) cycles through
/// without accumulating the whole family in memory.
pub const SHARD_CACHE_SLOTS: usize = 4;

/// A small per-trace memo of sharded layouts, keyed by
/// `(set count, indexing)` with least-recently-used eviction at
/// [`SHARD_CACHE_SLOTS`] entries.
///
/// One instance rides along with each benchmark trace so every policy
/// sweeping the same geometry bank shares one bucketing pass.
#[derive(Debug, Default)]
pub struct ShardCache {
    // Small and short: linear scan beats a map at <= 4 entries.
    entries: Mutex<ShardEntries>,
}

/// LRU queue of memoized layouts: front is oldest, back most recent.
type ShardEntries = VecDeque<((u64, Indexing), Arc<ShardedTrace>)>;

impl ShardCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized layout for `(num_sets, indexing)`, building (and
    /// possibly evicting the least-recently-used entry) on a miss.
    pub fn get_or_build(
        &self,
        trace: &[Access],
        next: Option<&[u64]>,
        num_sets: u64,
        indexing: Indexing,
    ) -> Arc<ShardedTrace> {
        let key = (num_sets, indexing);
        {
            let mut entries = self.lock();
            if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
                // Move to the back (most recently used) and reuse.
                let hit = entries.remove(pos).expect("position just found");
                let shard = Arc::clone(&hit.1);
                entries.push_back(hit);
                return shard;
            }
        }
        // Build outside the lock: bucketing is the expensive part, and
        // a racing duplicate build is benign (last one in wins a slot).
        let built = Arc::new(ShardedTrace::build(trace, next, num_sets, indexing));
        let mut entries = self.lock();
        if let Some(pos) = entries.iter().position(|(k, _)| *k == key) {
            let (_, existing) = &entries[pos];
            return Arc::clone(existing);
        }
        while entries.len() >= SHARD_CACHE_SLOTS {
            entries.pop_front();
        }
        entries.push_back((key, Arc::clone(&built)));
        built
    }

    /// Entries currently resident (for tests and budgeting).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardEntries> {
        // Entries are pushed/removed in single steps; a poisoned lock
        // cannot hold a half-updated queue.
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::by_name;
    use crate::profile::simulate_policy;
    use crate::trace::annotate_next_use;
    use tcor_common::SmallRng;

    /// The policies whose victim decisions are provably per-set (see
    /// `ReplacementPolicy::set_local`); sharding must be bit-identical
    /// for exactly these.
    const SET_LOCAL: [&str; 7] = ["lru", "mru", "fifo", "nru", "plru", "srrip", "opt"];

    fn params(lines: u64, ways: u32) -> CacheParams {
        CacheParams::new(lines * 64, 64, ways, 1)
    }

    /// Seeded random traces with a ~1/4 write mix so hit/miss *and*
    /// writeback counters are exercised.
    fn random_traces(seed: u64, cases: usize, blocks: u64, max_len: usize) -> Vec<Vec<Access>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..cases)
            .map(|_| {
                let len = rng.random_range(1..max_len + 1);
                (0..len)
                    .map(|_| {
                        let addr = BlockAddr(rng.random_range(0..blocks));
                        if rng.random_range(0..4u32) == 0 {
                            Access::write(addr)
                        } else {
                            Access::read(addr)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn build_preserves_per_set_order_and_length() {
        for trace in random_traces(0x5A5A, 8, 32, 120) {
            for num_sets in [1u64, 2, 3, 8] {
                for indexing in [Indexing::Modulo, Indexing::Xor] {
                    let shard = ShardedTrace::build(&trace, None, num_sets, indexing);
                    assert_eq!(shard.len(), trace.len());
                    assert!(!shard.annotated());
                    let mut seen = 0usize;
                    for s in 0..shard.num_sets() {
                        let run = shard.starts[s]..shard.starts[s + 1];
                        let expect: Vec<&Access> = trace
                            .iter()
                            .filter(|a| indexing.set_of(a.addr.0, num_sets) == s as u64)
                            .collect();
                        assert_eq!(run.len(), expect.len());
                        assert_eq!(shard.set_len(s), expect.len());
                        for (i, a) in run.zip(&expect) {
                            assert_eq!(shard.addrs[i], a.addr, "order inside a set");
                            assert_eq!(shard.kinds[i], a.kind);
                        }
                        seen += expect.len();
                    }
                    assert_eq!(seen, trace.len());
                }
            }
        }
    }

    #[test]
    fn build_gathers_annotation_in_bucket_order() {
        let trace: Vec<Access> = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3]
            .iter()
            .map(|&b| Access::read(BlockAddr(b)))
            .collect();
        let next = annotate_next_use(&trace);
        let shard = ShardedTrace::build(&trace, Some(&next), 4, Indexing::Modulo);
        assert!(shard.annotated());
        // Reconstruct (addr, next_use) pairs per set and compare with a
        // filter of the original zip.
        for s in 0..4usize {
            let got: Vec<(BlockAddr, u64)> = (shard.starts[s]..shard.starts[s + 1])
                .map(|i| (shard.addrs[i], shard.next_use[i]))
                .collect();
            let expect: Vec<(BlockAddr, u64)> = trace
                .iter()
                .zip(&next)
                .filter(|(a, _)| Indexing::Modulo.set_of(a.addr.0, 4) == s as u64)
                .map(|(a, &n)| (a.addr, n))
                .collect();
            assert_eq!(got, expect, "set {s}");
        }
    }

    /// Tentpole property: per-set sharded replay is pointwise identical
    /// (full `AccessStats`, not just misses) to the unsharded
    /// whole-cache simulation for every set-local policy, across 100+
    /// seeded write-mixed traces, geometries and both index functions.
    #[test]
    fn prop_sharded_equals_unsharded() {
        let geoms: [(u64, u32); 5] = [(8, 1), (8, 2), (16, 4), (24, 4), (12, 2)];
        let mut checked = 0usize;
        for trace in random_traces(0x51AD, 112, 24, 160) {
            let next = annotate_next_use(&trace);
            for &(lines, ways) in &geoms {
                let p = params(lines, ways);
                for indexing in [Indexing::Modulo, Indexing::Xor] {
                    let shard = ShardedTrace::build(&trace, Some(&next), p.num_sets(), indexing);
                    for policy in SET_LOCAL {
                        let oracle = policy == "opt";
                        let sharded =
                            simulate_policy_sharded(&shard, p, oracle, || by_name(policy));
                        let whole = if oracle {
                            crate::profile::simulate_policy_annotated(
                                &trace,
                                &next,
                                p,
                                indexing,
                                by_name(policy),
                            )
                        } else {
                            simulate_policy(&trace, p, indexing, by_name(policy), false)
                        };
                        assert_eq!(
                            sharded, whole,
                            "policy={policy} lines={lines} ways={ways} indexing={indexing:?}"
                        );
                    }
                }
            }
            checked += 1;
        }
        assert!(checked >= 100, "property needs >= 100 randomized traces");
    }

    /// Boundary: a single-set geometry (fully associative, or capacity
    /// at/below the associativity) makes the shard one bucket holding
    /// the whole trace — and must still match exactly.
    #[test]
    fn single_set_boundary_matches() {
        for trace in random_traces(0x0001, 16, 10, 80) {
            let next = annotate_next_use(&trace);
            for p in [params(6, 0), params(3, 3), CacheParams::new(2, 1, 2, 1)] {
                assert_eq!(p.num_sets(), 1, "boundary case must be one set");
                for indexing in [Indexing::Modulo, Indexing::Xor] {
                    let shard = ShardedTrace::build(&trace, Some(&next), 1, indexing);
                    assert_eq!(shard.set_len(0), trace.len());
                    for policy in SET_LOCAL {
                        let oracle = policy == "opt";
                        let sharded =
                            simulate_policy_sharded(&shard, p, oracle, || by_name(policy));
                        let whole = if oracle {
                            crate::profile::simulate_policy_annotated(
                                &trace,
                                &next,
                                p,
                                indexing,
                                by_name(policy),
                            )
                        } else {
                            simulate_policy(&trace, p, indexing, by_name(policy), false)
                        };
                        assert_eq!(sharded, whole, "policy={policy}");
                    }
                }
            }
        }
    }

    /// Splitting the set range and summing the partials equals the full
    /// sharded run — the exact contract the parallel dispatch relies on.
    #[test]
    fn range_partials_sum_to_whole() {
        for trace in random_traces(0xD15C, 24, 32, 160) {
            let p = params(16, 2); // 8 sets
            let shard = ShardedTrace::build(&trace, None, p.num_sets(), Indexing::Modulo);
            let whole = simulate_policy_sharded(&shard, p, false, || by_name("lru"));
            for split in [1usize, 3, 5, 7] {
                let lo = simulate_policy_shard_range(&shard, p, 0..split, false, || by_name("lru"));
                let hi = simulate_policy_shard_range(&shard, p, split..8, false, || by_name("lru"));
                assert_eq!(lo + hi, whole, "split at {split}");
            }
        }
    }

    #[test]
    fn shard_cache_memoizes_and_evicts_lru() {
        let trace: Vec<Access> = (0..64u64)
            .map(|b| Access::read(BlockAddr(b % 16)))
            .collect();
        let cache = ShardCache::new();
        let a1 = cache.get_or_build(&trace, None, 4, Indexing::Modulo);
        let a2 = cache.get_or_build(&trace, None, 4, Indexing::Modulo);
        assert!(Arc::ptr_eq(&a1, &a2), "same key must be memoized");
        assert_eq!(cache.len(), 1);
        // Same set count, different indexing: a distinct layout.
        let b = cache.get_or_build(&trace, None, 4, Indexing::Xor);
        assert!(!Arc::ptr_eq(&a1, &b));
        // Fill the remaining slots, touch the first key, then overflow:
        // the least-recently-used key (8/Modulo) must fall out.
        cache.get_or_build(&trace, None, 8, Indexing::Modulo);
        cache.get_or_build(&trace, None, 2, Indexing::Modulo);
        assert_eq!(cache.len(), SHARD_CACHE_SLOTS);
        let a3 = cache.get_or_build(&trace, None, 4, Indexing::Modulo);
        assert!(Arc::ptr_eq(&a1, &a3), "touch refreshes recency");
        cache.get_or_build(&trace, None, 16, Indexing::Modulo);
        assert_eq!(cache.len(), SHARD_CACHE_SLOTS);
        let c = cache.get_or_build(&trace, None, 8, Indexing::Modulo);
        assert_eq!(c.num_sets(), 8, "evicted entry rebuilds correctly");
    }

    #[test]
    fn resident_bytes_tracks_annotation() {
        let trace: Vec<Access> = (0..100u64).map(|b| Access::read(BlockAddr(b))).collect();
        let next = annotate_next_use(&trace);
        let bare = ShardedTrace::build(&trace, None, 4, Indexing::Modulo);
        let full = ShardedTrace::build(&trace, Some(&next), 4, Indexing::Modulo);
        assert!(full.resident_bytes() > bare.resident_bytes());
        assert!(!bare.is_empty());
    }
}
