//! Property tests: the streaming profiler is *exact*, not approximate.
//!
//! For 100+ seeded random traces, cut at arbitrary chunk boundaries
//! (including one-access chunks and a final all-pending tail of
//! never-recurring blocks), every live snapshot and the finalized
//! profiler must agree pointwise — at every capacity — with the
//! whole-trace [`OptStackProfiler::profile`] / [`LruStackProfiler`]
//! over the same prefix. Chunking is a transport detail; it must never
//! leak into the curves.

use tcor_cache::profile::{LruStackProfiler, OptStackProfiler, StreamingProfiler};
use tcor_cache::{annotate_next_use, Access};
use tcor_common::{BlockAddr, SmallRng};

fn random_trace(rng: &mut SmallRng, blocks: u64, max_len: usize) -> Vec<Access> {
    let len = rng.random_range(1..max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| Access::read(BlockAddr(rng.random_range(0..blocks))))
        .collect()
}

/// Whole-trace reference profilers over `prefix`.
fn reference(prefix: &[Access]) -> (OptStackProfiler, LruStackProfiler) {
    let opt = OptStackProfiler::profile(prefix, &annotate_next_use(prefix));
    let mut lru = LruStackProfiler::new();
    for a in prefix {
        lru.record(a.addr);
    }
    (opt, lru)
}

/// Asserts streamed == whole-trace at every capacity up to just past
/// the prefix's distinct-block count (beyond which both are flat).
fn assert_pointwise(
    streamed_opt: &OptStackProfiler,
    streamed_lru: &LruStackProfiler,
    prefix: &[Access],
) {
    let (want_opt, want_lru) = reference(prefix);
    let caps = tcor_cache::trace::distinct_blocks(prefix) + 2;
    for c in 0..=caps {
        assert_eq!(
            streamed_opt.misses_at(c),
            want_opt.misses_at(c),
            "OPT diverges at capacity {c} over {} accesses",
            prefix.len()
        );
        assert_eq!(
            streamed_lru.misses_at(c),
            want_lru.misses_at(c),
            "LRU diverges at capacity {c} over {} accesses",
            prefix.len()
        );
    }
}

#[test]
fn chunked_streams_match_whole_trace_profiles_pointwise() {
    let mut rng = SmallRng::seed_from_u64(0x7c0e);
    let mut checked = 0u32;
    for case in 0..120 {
        // Small block universes force reuse; large ones force pending
        // tails. Sweep both.
        let blocks = [3, 8, 32, 1024][case % 4];
        let trace = random_trace(&mut rng, blocks, 400);
        let mut sp = StreamingProfiler::new();
        let mut fed = 0usize;
        while fed < trace.len() {
            let chunk = 1 + rng.random_range(0..64u64) as usize;
            let until = (fed + chunk).min(trace.len());
            for a in &trace[fed..until] {
                sp.push(*a);
            }
            fed = until;
            // Live snapshot at this arbitrary cut: exact for the
            // ingested prefix.
            assert_pointwise(&sp.snapshot_opt(), sp.lru(), &trace[..fed]);
        }
        sp.finalize();
        assert_pointwise(sp.opt(), sp.lru(), &trace);
        checked += 1;
    }
    assert!(checked >= 100, "property needs 100+ traces, got {checked}");
}

#[test]
fn one_access_chunks_are_exact() {
    let mut rng = SmallRng::seed_from_u64(0x517e);
    for _ in 0..20 {
        let trace = random_trace(&mut rng, 6, 120);
        let mut sp = StreamingProfiler::new();
        for (i, a) in trace.iter().enumerate() {
            sp.push(*a);
            assert_pointwise(&sp.snapshot_opt(), sp.lru(), &trace[..=i]);
        }
        sp.finalize();
        assert_pointwise(sp.opt(), sp.lru(), &trace);
    }
}

#[test]
fn all_pending_tail_resolves_only_at_finalize() {
    // A reuse-heavy body followed by a tail of never-again blocks: the
    // tail stays pending (next_use unknown) until finalize pins it to
    // infinity. Snapshots mid-tail must still be exact.
    let mut rng = SmallRng::seed_from_u64(0xfade);
    for _ in 0..20 {
        let mut trace = random_trace(&mut rng, 4, 100);
        let start = 1_000_000 + rng.random_range(0..100);
        for i in 0..30 {
            trace.push(Access::read(BlockAddr(start + i)));
        }
        let mut sp = StreamingProfiler::new();
        for (i, a) in trace.iter().enumerate() {
            sp.push(*a);
            if i >= trace.len() - 30 {
                assert_pointwise(&sp.snapshot_opt(), sp.lru(), &trace[..=i]);
            }
        }
        assert!(
            sp.window_len() >= 30,
            "the distinct tail must still be pending"
        );
        sp.finalize();
        assert_pointwise(sp.opt(), sp.lru(), &trace);
    }
}
