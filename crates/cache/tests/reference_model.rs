//! Differential testing: the set-associative engine against a naive,
//! obviously-correct reference model (a vector of (addr, dirty, ts)
//! tuples per set) under LRU, across random traces and geometries.

use tcor_cache::policy::Lru;
use tcor_cache::{AccessKind, AccessMeta, Cache, Indexing};
use tcor_common::{BlockAddr, CacheParams, SmallRng};

/// The reference: per-set Vec of (tag, dirty, last_touch).
struct RefCache {
    sets: Vec<Vec<(u64, bool, u64)>>,
    ways: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl RefCache {
    fn new(num_sets: usize, ways: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); num_sets],
            ways,
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn access(&mut self, addr: u64, write: bool) {
        self.clock += 1;
        let set = (addr % self.sets.len() as u64) as usize;
        let lines = &mut self.sets[set];
        if let Some(entry) = lines.iter_mut().find(|e| e.0 == addr) {
            entry.1 |= write;
            entry.2 = self.clock;
            self.hits += 1;
            return;
        }
        self.misses += 1;
        if lines.len() == self.ways {
            let (idx, _) = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .expect("full set");
            if lines[idx].1 {
                self.writebacks += 1;
            }
            lines.remove(idx);
        }
        lines.push((addr, write, self.clock));
    }
}

#[test]
fn engine_matches_reference_lru() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0001);
    for _case in 0..64 {
        let ways = rng.random_range(1..6u32);
        let num_sets = 1usize << rng.random_range(0..4u32);
        let ops: Vec<(u64, bool)> = (0..rng.random_range(1..400usize))
            .map(|_| (rng.random_range(0..96u64), rng.random_bool(0.5)))
            .collect();
        let lines = num_sets as u64 * ways as u64;
        let params = CacheParams::new(lines * 64, 64, ways, 1);
        let mut engine = Cache::new(params, Indexing::Modulo, Lru::new());
        let mut reference = RefCache::new(num_sets, ways as usize);
        for &(addr, write) in &ops {
            let kind = if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            engine.access(BlockAddr(addr), kind, AccessMeta::NONE);
            reference.access(addr, write);
        }
        assert_eq!(engine.stats().hits(), reference.hits);
        assert_eq!(engine.stats().misses(), reference.misses);
        assert_eq!(engine.stats().writebacks, reference.writebacks);
        // Final contents agree.
        for set in 0..num_sets {
            for &(tag, _, _) in &reference.sets[set] {
                assert!(engine.contains(BlockAddr(tag)), "missing {tag}");
            }
        }
        assert_eq!(
            engine.occupancy(),
            reference.sets.iter().map(Vec::len).sum::<usize>()
        );
    }
}

/// `fill_clean` (warm start) must leave statistics untouched and make
/// blocks resident.
#[test]
fn fill_clean_is_invisible_to_stats() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0002);
    for _case in 0..64 {
        let warm: Vec<u64> = (0..rng.random_range(1..40usize))
            .map(|_| rng.random_range(0..64u64))
            .collect();
        let params = CacheParams::new(32 * 64, 64, 4, 1);
        let mut cache = Cache::new(params, Indexing::Modulo, Lru::new());
        for &b in &warm {
            cache.fill_clean(BlockAddr(b), AccessMeta::NONE);
        }
        assert_eq!(cache.stats().accesses(), 0);
        assert_eq!(cache.stats().writebacks, 0);
        // The most recently warmed block is always resident.
        assert!(cache.contains(BlockAddr(*warm.last().unwrap())));
        // Warm lines are clean: draining produces no dirty blocks.
        assert!(cache.drain().iter().all(|e| !e.dirty));
    }
}
