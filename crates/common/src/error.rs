//! The workspace-wide typed error: every fallible operation in the
//! experiment engine returns [`TcorError`] instead of a bare `String`
//! or a panic.
//!
//! An error carries a [`ErrorKind`] (the failure *class*, which maps
//! one-to-one onto the CLI's exit codes), a human context line, and an
//! optional source chain. The classes mirror the failure model in
//! `DESIGN.md` §"Failure model & recovery": configuration mistakes are
//! the caller's to fix, cell failures are contained per job, golden
//! drift is a regression signal, and corruption means on-disk or
//! in-store state can no longer be trusted.

use std::error::Error;
use std::fmt;

/// The failure class of a [`TcorError`]. Each class has a distinct
/// process exit code so CI and scripts can branch on *why* a run
/// failed without parsing stderr.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Invalid configuration or CLI usage (unknown experiment id, bad
    /// flag value). Exit code 2.
    Config,
    /// A job/cell failed — a contained panic or an error returned from
    /// a job body. Exit code 3.
    Execution,
    /// Output drifted from the recorded golden baseline. Exit code 4.
    Drift,
    /// State that should be trustworthy is not: a golden file that
    /// fails its manifest hash, an artifact-store key holding a value
    /// of the wrong type, a malformed telemetry log. Exit code 5.
    Corruption,
    /// A filesystem or I/O failure. Exit code 1 (generic failure).
    Io,
    /// A serving-plane failure: the daemon could not bind its port, a
    /// peer sent an unparseable request, or a probe/loadgen client got
    /// a non-success status. Exit code 6.
    Serve,
}

impl ErrorKind {
    /// The process exit code for this failure class.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Io => 1,
            ErrorKind::Config => 2,
            ErrorKind::Execution => 3,
            ErrorKind::Drift => 4,
            ErrorKind::Corruption => 5,
            ErrorKind::Serve => 6,
        }
    }

    /// Stable lowercase name ("config", "execution", …).
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Config => "config",
            ErrorKind::Execution => "execution",
            ErrorKind::Drift => "drift",
            ErrorKind::Corruption => "corruption",
            ErrorKind::Io => "io",
            ErrorKind::Serve => "serve",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The workspace error type: kind + context + optional source chain.
#[derive(Debug)]
pub struct TcorError {
    kind: ErrorKind,
    context: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

/// Workspace-wide result alias.
pub type TcorResult<T> = Result<T, TcorError>;

impl TcorError {
    /// An error of `kind` with a human context line.
    pub fn new(kind: ErrorKind, context: impl Into<String>) -> Self {
        TcorError {
            kind,
            context: context.into(),
            source: None,
        }
    }

    /// An error of `kind` wrapping an underlying cause.
    pub fn with_source(
        kind: ErrorKind,
        context: impl Into<String>,
        source: impl Error + Send + Sync + 'static,
    ) -> Self {
        TcorError {
            kind,
            context: context.into(),
            source: Some(Box::new(source)),
        }
    }

    /// A [`ErrorKind::Config`] error.
    pub fn config(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Config, context)
    }

    /// A [`ErrorKind::Execution`] error.
    pub fn execution(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Execution, context)
    }

    /// A [`ErrorKind::Drift`] error.
    pub fn drift(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Drift, context)
    }

    /// A [`ErrorKind::Corruption`] error.
    pub fn corruption(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Corruption, context)
    }

    /// A [`ErrorKind::Serve`] error.
    pub fn serve(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Serve, context)
    }

    /// An [`ErrorKind::Io`] error wrapping `source`, with `context`
    /// naming the operation ("writing results/golden/fig14.csv").
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Self::with_source(ErrorKind::Io, context, source)
    }

    /// The failure class.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The context line (without the source chain).
    pub fn context(&self) -> &str {
        &self.context
    }

    /// The exit code of the failure class ([`ErrorKind::exit_code`]).
    pub fn exit_code(&self) -> u8 {
        self.kind.exit_code()
    }
}

impl fmt::Display for TcorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.context)?;
        if let Some(src) = &self.source {
            write!(f, ": {src}")?;
        }
        Ok(())
    }
}

impl Error for TcorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_deref().map(|e| e as &(dyn Error + 'static))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let codes = [
            ErrorKind::Io,
            ErrorKind::Config,
            ErrorKind::Execution,
            ErrorKind::Drift,
            ErrorKind::Corruption,
            ErrorKind::Serve,
        ]
        .map(ErrorKind::exit_code);
        assert_eq!(codes, [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn display_includes_source_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = TcorError::io("reading manifest", io);
        assert_eq!(e.kind(), ErrorKind::Io);
        assert_eq!(e.to_string(), "reading manifest: gone");
        assert!(e.source().is_some());
        let plain = TcorError::config("unknown experiment `figx`");
        assert_eq!(plain.to_string(), "unknown experiment `figx`");
        assert!(plain.source().is_none());
    }
}
