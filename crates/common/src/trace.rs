//! Structured event tracing of the Tiling Engine timeline.
//!
//! A [`FrameTrace`] collects [`TraceEvent`]s — tile fetch spans, phase
//! markers, and sampled counters (MSHR occupancy, dead-line drops, L2
//! misses) — during a traced frame. Timestamps are simulated cycles.
//!
//! The event vocabulary mirrors the Chrome trace-event format ("X"
//! complete spans, "C" counters, "i" instants) so `tcor-obs` can render a
//! collected trace straight to `chrome://tracing` JSON; this module stays
//! dependency-free and does no JSON itself.
//!
//! Tracing is opt-in: every simulated frame threads a `FrameTrace`
//! through, but the default [`FrameTrace::disabled`] collector drops
//! events before formatting anything, so untraced runs pay one branch per
//! event site and the golden results are untouched.

/// The Chrome trace-event phase of an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete span ("X"): has a duration.
    Complete,
    /// A counter sample ("C"): `args` holds the sampled series.
    Counter,
    /// An instantaneous marker ("i").
    Instant,
}

impl TracePhase {
    /// The single-character phase code used by the Chrome trace format.
    pub fn code(self) -> &'static str {
        match self {
            TracePhase::Complete => "X",
            TracePhase::Counter => "C",
            TracePhase::Instant => "i",
        }
    }
}

/// One timeline event, in simulated cycles.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event name (tile id, counter series name, phase label).
    pub name: String,
    /// Category, e.g. `"fetch"`, `"mshr"`, `"l2"`.
    pub cat: &'static str,
    /// Chrome phase of the event.
    pub phase: TracePhase,
    /// Start timestamp in simulated cycles.
    pub ts: u64,
    /// Duration in cycles (complete spans only; zero otherwise).
    pub dur: u64,
    /// Named numeric arguments (counter values, metadata).
    pub args: Vec<(&'static str, u64)>,
}

/// Collector for one frame's trace; cheap no-op when disabled.
#[derive(Clone, Debug, Default)]
pub struct FrameTrace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl FrameTrace {
    /// A collector that records events.
    pub fn enabled() -> Self {
        FrameTrace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A collector that drops every event (the default for untraced runs).
    pub fn disabled() -> Self {
        FrameTrace::default()
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a complete span `[ts, ts+dur)`.
    pub fn complete(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        ts: u64,
        dur: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                name: name.into(),
                cat,
                phase: TracePhase::Complete,
                ts,
                dur,
                args,
            });
        }
    }

    /// Records a counter sample at `ts`.
    pub fn counter(
        &mut self,
        cat: &'static str,
        name: impl Into<String>,
        ts: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                name: name.into(),
                cat,
                phase: TracePhase::Counter,
                ts,
                dur: 0,
                args,
            });
        }
    }

    /// Records an instantaneous marker at `ts`.
    pub fn instant(&mut self, cat: &'static str, name: impl Into<String>, ts: u64) {
        if self.enabled {
            self.events.push(TraceEvent {
                name: name.into(),
                cat,
                phase: TracePhase::Instant,
                ts,
                dur: 0,
                args: Vec::new(),
            });
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_drops_events() {
        let mut t = FrameTrace::disabled();
        assert!(!t.is_enabled());
        t.complete("fetch", "tile 0", 0, 10, vec![]);
        t.counter("mshr", "outstanding", 5, vec![("value", 3)]);
        t.instant("frame", "end", 20);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_collector_records_in_order() {
        let mut t = FrameTrace::enabled();
        assert!(t.is_enabled());
        t.complete("fetch", "tile 7", 100, 40, vec![("misses", 2)]);
        t.counter("mshr", "outstanding", 110, vec![("value", 4)]);
        t.instant("frame", "end", 140);
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].phase, TracePhase::Complete);
        assert_eq!(ev[0].dur, 40);
        assert_eq!(ev[0].args, vec![("misses", 2)]);
        assert_eq!(ev[1].phase.code(), "C");
        assert_eq!(ev[2].phase.code(), "i");
    }
}
