//! Tile traversal orders.
//!
//! The Tile Fetcher processes tiles "in an order specified by the Tiling
//! Engine" (§II.A) which is *fixed and known beforehand* — the property
//! that makes OPT implementable. Table I uses **Z-order** (Morton order);
//! scanline order is provided as well (the paper's worked example of
//! Fig. 9/10 uses it) along with its reverse for experimentation.
//!
//! A [`TraversalOrder`] owns both directions of the mapping:
//! position-in-order → [`TileId`], and [`TileId`] → [`TileRank`].

use crate::grid::TileGrid;
use crate::ids::{TileId, TileRank};

/// The traversal orders supported by the Tiling Engine model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Traversal {
    /// Row-major, left-to-right, top-to-bottom (Fig. 9's example order).
    Scanline,
    /// Morton / Z-order curve over tile coordinates (Table I). Improves
    /// spatial locality between consecutively fetched tiles.
    #[default]
    ZOrder,
    /// Boustrophedon: scanline with every other row reversed. Keeps
    /// consecutive tiles spatially adjacent at row ends.
    Serpentine,
    /// Hilbert curve over tile coordinates: every consecutive pair of
    /// tiles is edge-adjacent (stronger locality than Z-order, which
    /// jumps at quadrant boundaries).
    Hilbert,
}

impl Traversal {
    /// Builds the concrete traversal order for `grid`.
    pub fn order(self, grid: &TileGrid) -> TraversalOrder {
        let (tx, ty) = (grid.tiles_x(), grid.tiles_y());
        let mut tiles: Vec<TileId> = Vec::with_capacity(grid.num_tiles());
        match self {
            Traversal::Scanline => {
                for y in 0..ty {
                    for x in 0..tx {
                        tiles.push(grid.tile_id(x, y));
                    }
                }
            }
            Traversal::Serpentine => {
                for y in 0..ty {
                    if y % 2 == 0 {
                        for x in 0..tx {
                            tiles.push(grid.tile_id(x, y));
                        }
                    } else {
                        for x in (0..tx).rev() {
                            tiles.push(grid.tile_id(x, y));
                        }
                    }
                }
            }
            Traversal::ZOrder => {
                // Enumerate Morton codes of the enclosing power-of-two
                // square and keep in-grid tiles; their relative Morton order
                // is the Z traversal of the (possibly non-square) grid.
                let side = tx.max(ty).next_power_of_two();
                let total = (side as u64) * (side as u64);
                for code in 0..total {
                    let (x, y) = morton_decode(code);
                    if x < tx && y < ty {
                        tiles.push(grid.tile_id(x, y));
                    }
                }
            }
            Traversal::Hilbert => {
                let side = tx.max(ty).next_power_of_two();
                let total = (side as u64) * (side as u64);
                for d in 0..total {
                    let (x, y) = hilbert_d2xy(side, d);
                    if x < tx && y < ty {
                        tiles.push(grid.tile_id(x, y));
                    }
                }
            }
        }
        TraversalOrder::from_tiles(tiles, grid.num_tiles())
    }
}

/// A concrete tile processing order with O(1) rank lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraversalOrder {
    tiles: Vec<TileId>,
    ranks: Vec<TileRank>,
}

impl TraversalOrder {
    /// Builds an order from an explicit permutation of tile ids.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is not a permutation of `0..num_tiles`.
    pub fn from_tiles(tiles: Vec<TileId>, num_tiles: usize) -> Self {
        assert_eq!(tiles.len(), num_tiles, "order must cover every tile");
        let mut ranks = vec![TileRank::NEVER; num_tiles];
        for (pos, t) in tiles.iter().enumerate() {
            assert!(t.index() < num_tiles, "tile id out of range");
            assert!(
                ranks[t.index()].is_never(),
                "tile {t:?} appears twice in traversal"
            );
            ranks[t.index()] = TileRank(pos as u32);
        }
        TraversalOrder { tiles, ranks }
    }

    /// Number of tiles in the order.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// True if the order is empty (never the case for a real grid).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The tile processed at position `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn tile_at(&self, rank: TileRank) -> TileId {
        self.tiles[rank.value() as usize]
    }

    /// The traversal position of `tile`.
    pub fn rank_of(&self, tile: TileId) -> TileRank {
        self.ranks[tile.index()]
    }

    /// Iterate over tiles in processing order.
    pub fn iter(&self) -> impl Iterator<Item = TileId> + '_ {
        self.tiles.iter().copied()
    }

    /// Given the set of tiles a primitive overlaps, returns them sorted by
    /// traversal rank — the order in which the Tile Fetcher will touch the
    /// primitive. This is the core of OPT-number computation.
    pub fn sort_by_rank(&self, tiles: &mut [TileId]) {
        tiles.sort_by_key(|t| self.rank_of(*t));
    }
}

/// Interleaves the low 16 bits of `x` and `y` into a Morton code
/// (`x` in even bit positions).
pub fn morton_encode(x: u32, y: u32) -> u64 {
    (spread_bits(x) | (spread_bits(y) << 1)) as u64
}

/// Inverse of [`morton_encode`] for codes produced from 16-bit coordinates
/// (codes fit in 32 bits).
pub fn morton_decode(code: u64) -> (u32, u32) {
    debug_assert!(code <= u32::MAX as u64, "morton code out of 16-bit range");
    (compact_bits(code as u32), compact_bits((code >> 1) as u32))
}

fn spread_bits(mut v: u32) -> u32 {
    v &= 0xFFFF;
    v = (v | (v << 8)) & 0x00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333;
    v = (v | (v << 1)) & 0x5555_5555;
    v
}

/// Converts a distance `d` along the Hilbert curve of an `n`×`n` grid
/// (`n` a power of two) to coordinates — the classic bit-twiddling walk.
pub fn hilbert_d2xy(n: u32, d: u64) -> (u32, u32) {
    debug_assert!(n.is_power_of_two());
    let (mut x, mut y) = (0u32, 0u32);
    let mut t = d;
    let mut s = 1u32;
    while s < n {
        let rx = ((t / 2) & 1) as u32;
        let ry = ((t ^ (rx as u64)) & 1) as u32;
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x);
                y = s.wrapping_sub(1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

fn compact_bits(mut v: u32) -> u32 {
    v &= 0x5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TileGrid;

    #[test]
    fn morton_roundtrip() {
        for x in 0..33 {
            for y in 0..33 {
                assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn morton_first_codes() {
        // The canonical Z pattern: (0,0) (1,0) (0,1) (1,1) (2,0) ...
        assert_eq!(morton_encode(0, 0), 0);
        assert_eq!(morton_encode(1, 0), 1);
        assert_eq!(morton_encode(0, 1), 2);
        assert_eq!(morton_encode(1, 1), 3);
        assert_eq!(morton_encode(2, 0), 4);
    }

    #[test]
    fn scanline_order_is_row_major() {
        let g = TileGrid::new(96, 64, 32); // 3x2 tiles
        let o = Traversal::Scanline.order(&g);
        let ids: Vec<u32> = o.iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn serpentine_reverses_odd_rows() {
        let g = TileGrid::new(96, 64, 32); // 3x2 tiles
        let o = Traversal::Serpentine.order(&g);
        let ids: Vec<u32> = o.iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 5, 4, 3]);
    }

    #[test]
    fn zorder_on_square_grid_is_z_pattern() {
        let g = TileGrid::new(64, 64, 32); // 2x2 tiles
        let o = Traversal::ZOrder.order(&g);
        let coords: Vec<(u32, u32)> = o.iter().map(|t| g.tile_coords(t)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn every_order_is_a_permutation() {
        let g = TileGrid::new(1960, 768, 32);
        for t in [
            Traversal::Scanline,
            Traversal::ZOrder,
            Traversal::Serpentine,
            Traversal::Hilbert,
        ] {
            let o = t.order(&g);
            assert_eq!(o.len(), g.num_tiles());
            let mut seen = vec![false; g.num_tiles()];
            for tile in o.iter() {
                assert!(!seen[tile.index()], "{t:?} repeats {tile:?}");
                seen[tile.index()] = true;
            }
            assert!(seen.iter().all(|&s| s), "{t:?} misses tiles");
        }
    }

    #[test]
    fn rank_and_tile_are_inverse() {
        let g = TileGrid::new(1960, 768, 32);
        let o = Traversal::ZOrder.order(&g);
        for (pos, tile) in o.iter().enumerate() {
            assert_eq!(o.rank_of(tile), TileRank(pos as u32));
            assert_eq!(o.tile_at(TileRank(pos as u32)), tile);
        }
    }

    #[test]
    fn sort_by_rank_orders_future_uses() {
        let g = TileGrid::new(128, 128, 32); // 4x4
        let o = Traversal::ZOrder.order(&g);
        let mut tiles = vec![g.tile_id(3, 3), g.tile_id(0, 0), g.tile_id(1, 1)];
        o.sort_by_rank(&mut tiles);
        assert_eq!(tiles[0], g.tile_id(0, 0));
        assert_eq!(tiles[1], g.tile_id(1, 1));
        assert_eq!(tiles[2], g.tile_id(3, 3));
    }

    #[test]
    fn hilbert_consecutive_tiles_are_adjacent() {
        // The defining property: on a square power-of-two grid, each step
        // moves exactly one tile horizontally or vertically.
        let g = TileGrid::new(256, 256, 32); // 8x8
        let o = Traversal::Hilbert.order(&g);
        let coords: Vec<(u32, u32)> = o.iter().map(|t| g.tile_coords(t)).collect();
        for w in coords.windows(2) {
            let dx = w[0].0.abs_diff(w[1].0);
            let dy = w[0].1.abs_diff(w[1].1);
            assert_eq!(dx + dy, 1, "{:?} -> {:?} not adjacent", w[0], w[1]);
        }
    }

    #[test]
    fn hilbert_d2xy_covers_square() {
        let n = 8u32;
        let mut seen = std::collections::HashSet::new();
        for d in 0..(n as u64 * n as u64) {
            let (x, y) = hilbert_d2xy(n, d);
            assert!(x < n && y < n);
            assert!(seen.insert((x, y)), "repeat at d={d}");
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_tile_in_order_panics() {
        TraversalOrder::from_tiles(vec![TileId(0), TileId(0)], 2);
    }
}
