//! The screen's tile grid.
//!
//! A TBR GPU partitions the frame into square tiles (32×32 pixels in
//! Table I). The grid maps between pixel coordinates, tile coordinates and
//! [`TileId`]s, and enumerates the tiles overlapped by screen-space
//! rectangles (the Polygon List Builder's bounding-box binning test).

use crate::geom::Rect;
use crate::ids::TileId;

/// Dimensions of the tile grid covering the screen.
///
/// ```
/// use tcor_common::TileGrid;
/// let grid = TileGrid::new(1960, 768, 32);
/// assert_eq!(grid.num_tiles(), 62 * 24);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TileGrid {
    screen_width: u32,
    screen_height: u32,
    tile_size: u32,
    tiles_x: u32,
    tiles_y: u32,
}

impl TileGrid {
    /// Creates a grid for a `screen_width` × `screen_height` screen with
    /// square tiles of `tile_size` pixels. Partially-covered edge tiles
    /// count as full tiles (ceil division).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(screen_width: u32, screen_height: u32, tile_size: u32) -> Self {
        assert!(
            screen_width > 0 && screen_height > 0 && tile_size > 0,
            "tile grid dimensions must be nonzero"
        );
        TileGrid {
            screen_width,
            screen_height,
            tile_size,
            tiles_x: screen_width.div_ceil(tile_size),
            tiles_y: screen_height.div_ceil(tile_size),
        }
    }

    /// Screen width in pixels.
    pub fn screen_width(&self) -> u32 {
        self.screen_width
    }

    /// Screen height in pixels.
    pub fn screen_height(&self) -> u32 {
        self.screen_height
    }

    /// Tile edge length in pixels.
    pub fn tile_size(&self) -> u32 {
        self.tile_size
    }

    /// Number of tile columns.
    pub fn tiles_x(&self) -> u32 {
        self.tiles_x
    }

    /// Number of tile rows.
    pub fn tiles_y(&self) -> u32 {
        self.tiles_y
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        (self.tiles_x * self.tiles_y) as usize
    }

    /// The row-major [`TileId`] of tile column `tx`, row `ty`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn tile_id(&self, tx: u32, ty: u32) -> TileId {
        assert!(tx < self.tiles_x && ty < self.tiles_y, "tile out of grid");
        TileId(ty * self.tiles_x + tx)
    }

    /// Tile coordinates `(tx, ty)` of a [`TileId`].
    ///
    /// # Panics
    ///
    /// Panics if the id is outside the grid.
    pub fn tile_coords(&self, id: TileId) -> (u32, u32) {
        assert!((id.0 as usize) < self.num_tiles(), "tile id out of grid");
        (id.0 % self.tiles_x, id.0 / self.tiles_x)
    }

    /// The tile containing pixel `(px, py)`.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is outside the screen.
    pub fn tile_of_pixel(&self, px: u32, py: u32) -> TileId {
        assert!(
            px < self.screen_width && py < self.screen_height,
            "pixel outside screen"
        );
        self.tile_id(px / self.tile_size, py / self.tile_size)
    }

    /// Tiles overlapped by a screen-space rectangle, clamped to the screen.
    /// Returns an empty vector for rectangles fully outside the screen or
    /// with non-positive extent.
    ///
    /// This is the bounding-box overlap test used by the Polygon List
    /// Builder when binning a primitive.
    pub fn tiles_overlapping(&self, rect: &Rect) -> Vec<TileId> {
        let Some(clamped) = rect.clamp_to(self.screen_width as f32, self.screen_height as f32)
        else {
            return Vec::new();
        };
        let ts = self.tile_size as f32;
        let tx0 = (clamped.x0 / ts).floor() as u32;
        let ty0 = (clamped.y0 / ts).floor() as u32;
        // A rect touching x1 exactly on a tile boundary does not enter the
        // next tile, hence the epsilon-free exclusive handling via ceil - 1.
        let tx1 = (((clamped.x1 / ts).ceil() as u32).max(tx0 + 1) - 1).min(self.tiles_x - 1);
        let ty1 = (((clamped.y1 / ts).ceil() as u32).max(ty0 + 1) - 1).min(self.tiles_y - 1);
        let mut out = Vec::with_capacity(((tx1 - tx0 + 1) * (ty1 - ty0 + 1)) as usize);
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                out.push(self.tile_id(tx, ty));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TileGrid {
        TileGrid::new(1960, 768, 32)
    }

    #[test]
    fn paper_screen_dimensions() {
        let g = grid();
        assert_eq!(g.tiles_x(), 62); // ceil(1960/32) = 61.25 -> 62
        assert_eq!(g.tiles_y(), 24);
        assert_eq!(g.num_tiles(), 1488);
    }

    #[test]
    fn id_coord_roundtrip() {
        let g = grid();
        for &(tx, ty) in &[(0, 0), (61, 23), (5, 7)] {
            let id = g.tile_id(tx, ty);
            assert_eq!(g.tile_coords(id), (tx, ty));
        }
    }

    #[test]
    fn pixel_to_tile() {
        let g = grid();
        assert_eq!(g.tile_of_pixel(0, 0), TileId(0));
        assert_eq!(g.tile_of_pixel(31, 31), TileId(0));
        assert_eq!(g.tile_of_pixel(32, 0), TileId(1));
        assert_eq!(g.tile_of_pixel(0, 32), g.tile_id(0, 1));
    }

    #[test]
    fn rect_overlap_single_tile() {
        let g = grid();
        let r = Rect::new(2.0, 2.0, 10.0, 10.0);
        assert_eq!(g.tiles_overlapping(&r), vec![TileId(0)]);
    }

    #[test]
    fn rect_overlap_straddles_boundary() {
        let g = grid();
        let r = Rect::new(30.0, 0.0, 40.0, 10.0);
        assert_eq!(g.tiles_overlapping(&r), vec![TileId(0), TileId(1)]);
    }

    #[test]
    fn rect_on_exact_boundary_stays_in_one_tile() {
        let g = grid();
        // Touching x = 32.0 exactly must not spill into tile 1.
        let r = Rect::new(0.0, 0.0, 32.0, 32.0);
        assert_eq!(g.tiles_overlapping(&r), vec![TileId(0)]);
    }

    #[test]
    fn rect_outside_screen_is_empty() {
        let g = grid();
        let r = Rect::new(-50.0, -50.0, -1.0, -1.0);
        assert!(g.tiles_overlapping(&r).is_empty());
        let r2 = Rect::new(3000.0, 10.0, 3100.0, 20.0);
        assert!(g.tiles_overlapping(&r2).is_empty());
    }

    #[test]
    fn rect_covering_screen_hits_all_tiles() {
        let g = TileGrid::new(64, 64, 32);
        let r = Rect::new(-10.0, -10.0, 1000.0, 1000.0);
        assert_eq!(g.tiles_overlapping(&r).len(), 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        TileGrid::new(0, 768, 32);
    }
}
