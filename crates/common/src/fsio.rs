//! Crash-safe filesystem writes.
//!
//! Every durable artifact the harness produces (goldens, manifests,
//! result CSVs) goes through [`write_atomic`]: the bytes land in a
//! `*.tmp` sibling first and are `rename`d over the destination only
//! once fully written. On POSIX the rename is atomic within a
//! filesystem, so a crash mid-write can leave a stale `*.tmp` behind
//! but never a half-written destination — the previous version stays
//! readable.

use crate::error::{TcorError, TcorResult};
use std::path::{Path, PathBuf};

/// The temporary sibling `write_atomic` stages into: same directory,
/// file name extended with `.tmp` (so the rename never crosses a
/// filesystem boundary).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically (stage to `*.tmp`, then
/// rename), creating parent directories as needed.
///
/// # Errors
///
/// Returns an [`ErrorKind::Io`](crate::ErrorKind::Io) error naming the
/// path on any filesystem failure; on error the previous contents of
/// `path`, if any, are untouched.
pub fn write_atomic(path: &Path, contents: &[u8]) -> TcorResult<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| TcorError::io(format!("creating {}", parent.display()), e))?;
        }
    }
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, contents)
        .map_err(|e| TcorError::io(format!("writing {}", tmp.display()), e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        // Best effort: do not leave the orphan around on failure.
        let _ = std::fs::remove_file(&tmp);
        TcorError::io(
            format!("renaming {} over {}", tmp.display(), path.display()),
            e,
        )
    })
}

/// Like [`write_atomic`], but stages into a tmp sibling whose name is
/// unique to this process and call (`<name>.<pid>.<seq>.tmp`), so
/// *concurrent* writers to the same destination — two daemons sharing
/// one cache directory — never interleave inside one staging file.
/// Whichever rename lands last wins with a whole file; the loser's
/// bytes are simply replaced, never mixed.
///
/// # Errors
///
/// Same contract as [`write_atomic`]: an I/O error naming the path,
/// with the previous destination contents untouched.
pub fn write_atomic_unique(path: &Path, contents: &[u8]) -> TcorResult<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| TcorError::io(format!("creating {}", parent.display()), e))?;
        }
    }
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(name);
    std::fs::write(&tmp, contents)
        .map_err(|e| TcorError::io(format!("writing {}", tmp.display()), e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        TcorError::io(
            format!("renaming {} over {}", tmp.display(), path.display()),
            e,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tcor-fsio-{tag}-{}", std::process::id()))
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = temp_path("basic");
        let _ = std::fs::remove_dir_all(&dir);
        let file = dir.join("nested").join("out.csv");
        write_atomic(&file, b"v1").unwrap();
        assert_eq!(std::fs::read(&file).unwrap(), b"v1");
        write_atomic(&file, b"v2").unwrap();
        assert_eq!(std::fs::read(&file).unwrap(), b"v2");
        // No staging residue.
        assert!(!tmp_sibling(&file).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unique_staging_parallel_writers_never_tear() {
        let dir = temp_path("unique");
        let _ = std::fs::remove_dir_all(&dir);
        let file = dir.join("contested.bin");
        let mut threads = Vec::new();
        for byte in [b'a', b'b', b'c', b'd'] {
            let file = file.clone();
            threads.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    write_atomic_unique(&file, &[byte; 512]).unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let got = std::fs::read(&file).unwrap();
        assert_eq!(got.len(), 512);
        assert!(
            got.iter().all(|&b| b == got[0]),
            "destination is one writer's bytes, whole"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_sibling_stays_in_the_same_directory() {
        let p = Path::new("/a/b/c.csv");
        assert_eq!(tmp_sibling(p), Path::new("/a/b/c.csv.tmp"));
    }

    #[test]
    fn failure_leaves_previous_contents() {
        let dir = temp_path("fail");
        let _ = std::fs::remove_dir_all(&dir);
        let file = dir.join("out.csv");
        write_atomic(&file, b"v1").unwrap();
        // A directory squatting on the tmp path forces the staging
        // write to fail; the destination must be untouched.
        std::fs::create_dir_all(tmp_sibling(&file)).unwrap();
        let err = write_atomic(&file, b"v2").unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::Io);
        assert_eq!(std::fs::read(&file).unwrap(), b"v1");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
