//! The hierarchical metric registry — the uniform, labeled view over
//! every counter the simulator accumulates.
//!
//! Hot paths keep their plain-`u64` accumulators (an [`crate::AccessStats`]
//! bump is one add, no lookup); the registry is the *assembled* view: at
//! reporting time each structure publishes its counters under a
//! `/`-separated path, nested cache → set-class/region → event, e.g.
//!
//! ```text
//! attr$/read_hit          l2/pb_lists/l2_read       l2/event/dead_drop
//! ```
//!
//! The registry is atomic-free (it is built after simulation, on one
//! thread) and forms a commutative monoid under [`MetricRegistry::merge`],
//! so per-cell registries sum into suite aggregates. The audit layer in
//! `tcor-obs` reads conservation invariants off these paths.

use std::collections::BTreeMap;
use std::fmt;

use crate::stats::AccessStats;

/// A tree of named counters, keyed by `/`-separated paths.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricRegistry {
    counters: BTreeMap<String, u64>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter at `path`, creating it at zero first.
    pub fn add(&mut self, path: &str, n: u64) {
        *self.counters.entry(path.to_string()).or_insert(0) += n;
    }

    /// The counter at `path` (zero when absent).
    pub fn get(&self, path: &str) -> u64 {
        self.counters.get(path).copied().unwrap_or(0)
    }

    /// Sum of every counter whose path starts with `prefix` followed by
    /// `/` (or equals `prefix` exactly) — the roll-up of one subtree.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| {
                k.as_str() == prefix
                    || (k.starts_with(prefix) && k.as_bytes().get(prefix.len()) == Some(&b'/'))
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// Publishes one structure's [`AccessStats`] under `prefix`, one leaf
    /// per event kind.
    pub fn record_stats(&mut self, prefix: &str, s: &AccessStats) {
        for (event, n) in [
            ("probes", s.probes),
            ("read_hit", s.read_hits),
            ("read_miss", s.read_misses),
            ("write_hit", s.write_hits),
            ("write_miss", s.write_misses),
            ("writeback", s.writebacks),
            ("bypass", s.bypasses),
            ("dead_drop", s.dead_drops),
        ] {
            if n > 0 {
                self.add(&format!("{prefix}/{event}"), n);
            }
        }
    }

    /// Folds another registry into this one, path-wise.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterates `(path, value)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the registry holds no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for MetricRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_prefix_rollup() {
        let mut r = MetricRegistry::new();
        r.add("l2/pb_lists/l2_read", 3);
        r.add("l2/pb_lists/l2_write", 2);
        r.add("l2/textures/l2_read", 5);
        r.add("l2x/other", 100); // must NOT match the `l2` prefix
        assert_eq!(r.get("l2/pb_lists/l2_read"), 3);
        assert_eq!(r.get("missing"), 0);
        assert_eq!(r.sum_prefix("l2/pb_lists"), 5);
        assert_eq!(r.sum_prefix("l2"), 10);
        assert_eq!(r.sum_prefix("l2x/other"), 100);
    }

    #[test]
    fn record_stats_publishes_leaves() {
        let mut s = AccessStats::new();
        s.record_read(true);
        s.record_read(false);
        s.record_write(false);
        s.probes = 3;
        let mut r = MetricRegistry::new();
        r.record_stats("attr$", &s);
        assert_eq!(r.get("attr$/read_hit"), 1);
        assert_eq!(r.get("attr$/read_miss"), 1);
        assert_eq!(r.get("attr$/write_miss"), 1);
        assert_eq!(r.get("attr$/probes"), 3);
        assert_eq!(r.get("attr$/write_hit"), 0, "zero counters are omitted");
    }

    #[test]
    fn merge_is_pathwise_sum() {
        let mut a = MetricRegistry::new();
        a.add("x/y", 1);
        let mut b = MetricRegistry::new();
        b.add("x/y", 2);
        b.add("x/z", 7);
        a.merge(&b);
        assert_eq!(a.get("x/y"), 3);
        assert_eq!(a.get("x/z"), 7);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn display_lists_every_counter() {
        let mut r = MetricRegistry::new();
        r.add("a/b", 4);
        assert_eq!(r.to_string(), "a/b = 4\n");
    }
}
