//! Deterministic pseudo-random number generation, self-contained.
//!
//! The workspace builds with no registry access, so scene synthesis and
//! traffic generation use this local generator instead of the `rand`
//! crate: a SplitMix64 seeder feeding xoshiro256++ (Blackman & Vigna),
//! the same family `rand`'s `SmallRng` draws from. Streams are fixed by
//! the seed and by this file alone — every figure stays reproducible
//! bit-for-bit across toolchains.

/// SplitMix64: the canonical stream used to expand a 64-bit seed into
/// generator state (Vigna's reference constants).
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the stream for `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — 256 bits of state, equidistributed, fast, and more
/// than adequate statistically for workload synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace-wide small generator (drop-in for `rand`'s `SmallRng`
/// in the roles this repo used it for).
pub type SmallRng = Xoshiro256pp;

impl Xoshiro256pp {
    /// Expands `seed` through SplitMix64 into full state, exactly as
    /// `rand_xoshiro` does, so any nonzero-entropy seed is safe.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform over `range` (for the numeric types implementing
    /// [`UniformRange`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn random_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }
}

/// Types [`Xoshiro256pp::random_range`] can sample uniformly.
pub trait UniformRange: Sized {
    /// Draws one value from `range`.
    fn sample(rng: &mut Xoshiro256pp, range: std::ops::Range<Self>) -> Self;
}

/// Unbiased integer sampling in `[0, span)` by Lemire's widening
/// multiply with rejection.
fn uniform_u64(rng: &mut Xoshiro256pp, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

impl UniformRange for u64 {
    fn sample(rng: &mut Xoshiro256pp, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + uniform_u64(rng, range.end - range.start)
    }
}

impl UniformRange for u32 {
    fn sample(rng: &mut Xoshiro256pp, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + uniform_u64(rng, (range.end - range.start) as u64) as u32
    }
}

impl UniformRange for usize {
    fn sample(rng: &mut Xoshiro256pp, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + uniform_u64(rng, (range.end - range.start) as u64) as usize
    }
}

impl UniformRange for f64 {
    fn sample(rng: &mut Xoshiro256pp, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + rng.random_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from Vigna's reference code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism from the same seed.
        let mut again = SplitMix64::new(1234567);
        assert_eq!(again.next_u64(), first);
        assert_eq!(again.next_u64(), second);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.random_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!((3..17u64).contains(&r.random_range(3..17u64)));
            assert!((0..5usize).contains(&r.random_range(0..5usize)));
            let f = r.random_range(-4.0..4.0f64);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut r = Xoshiro256pp::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.random_bool(0.85)).count();
        assert!((83_000..87_000).contains(&hits), "{hits}");
    }
}
