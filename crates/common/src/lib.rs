//! # tcor-common
//!
//! Foundation types shared by every crate in the TCOR reproduction:
//! identifiers, the tile grid and its traversal orders, screen-space
//! geometry, simulation configuration (Table I of the paper) and
//! statistics counters.
//!
//! The paper models a Tile-Based Rendering (TBR) mobile GPU whose screen is
//! partitioned into 32×32-pixel tiles. The Tiling Engine bins primitives
//! into per-tile lists (the *Parameter Buffer*) and later fetches them tile
//! by tile in a fixed traversal order (Z-order in Table I). Everything in
//! TCOR derives from that fixed, known-in-advance traversal: the *OPT
//! Number* of a datum is the traversal rank of the next tile that will use
//! it, and the *last-use tile* drives the L2 dead-line policy.
//!
//! ```
//! use tcor_common::{GpuConfig, TileGrid, Traversal};
//!
//! let cfg = GpuConfig::paper_baseline();
//! let grid = TileGrid::new(cfg.screen_width, cfg.screen_height, cfg.tile_size);
//! assert_eq!(grid.tiles_x(), 62); // ceil(1960 / 32)
//! assert_eq!(grid.tiles_y(), 24); // 768 / 32
//! let order = Traversal::ZOrder.order(&grid);
//! assert_eq!(order.len(), grid.num_tiles());
//! ```

pub mod config;
pub mod error;
pub mod fault;
pub mod fsio;
pub mod geom;
pub mod grid;
pub mod hash;
pub mod ids;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod traversal;

pub use config::{CacheParams, GpuConfig, MemoryParams, TileCacheOrg};
pub use error::{ErrorKind, TcorError, TcorResult};
pub use fault::FaultInjector;
pub use fsio::{write_atomic, write_atomic_unique};
pub use geom::{Rect, Tri2};
pub use grid::TileGrid;
pub use hash::{fxhash64, hash_hex, FxBuildHasher, FxHashMap, FxHashSet, FxHasher64};
pub use ids::{Address, BlockAddr, PrimitiveId, TileId, TileRank, LINE_SIZE};
pub use metrics::MetricRegistry;
pub use rng::{SmallRng, SplitMix64, Xoshiro256pp};
pub use stats::AccessStats;
pub use trace::{FrameTrace, TraceEvent, TracePhase};
pub use traversal::{Traversal, TraversalOrder};
