//! Process-wide deterministic fault injection: the chaos layer's
//! trigger side.
//!
//! The runner's `FaultPlan` (PR 2) injects faults into *jobs* it
//! schedules itself; this module generalizes the idea to any code
//! path in the process. A [`FaultInjector`] is armed from a **seed**
//! plus a **spec string** naming *fault points* — stable identifiers
//! like `pcache/read` or `serve/drop_conn` that components ask about
//! at the moment they are about to do the real operation:
//!
//! ```text
//! spec     := clause [ "," clause ]*
//! clause   := point "=" pct [ "@" arg ] [ "#" limit ]
//! point    := fault-point name ("pcache/read", "serve/drop_conn", ...)
//! pct      := fire probability in percent (0..=100)
//! arg      := optional u64 payload (a byte offset, a stall in ms)
//! limit    := optional cap on total fires for this point
//! ```
//!
//! `pcache/read=100#6` fails the first six disk reads and then goes
//! quiet — the schedule a circuit-breaker test needs (errors, then
//! recovery). `serve/drop_conn=25@0` drops a quarter of responses
//! after zero body bytes.
//!
//! Decisions are deterministic: the `n`-th ask at a given point rolls
//! a xoshiro256++ stream keyed by `seed ^ fxhash64(point) ^ mix(n)`,
//! so a fixed seed replays the same per-point fire pattern on every
//! run regardless of thread interleaving across *different* points.
//!
//! The injector is **process-wide and zero-cost when disarmed**: the
//! global [`fire`] helper is a single relaxed atomic load on the
//! disarmed path, so production binaries pay nothing. Components that
//! need hermetic tests can hold their own injector instance instead
//! of arming the global one.

use crate::hash::fxhash64;
use crate::rng::Xoshiro256pp;
use crate::{ErrorKind, TcorError, TcorResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// One armed fault point.
#[derive(Clone, Debug)]
struct Rule {
    point: String,
    /// Fire probability per ask, percent.
    pct: u64,
    /// Payload handed to the caller on fire (offset, millis, ...).
    arg: u64,
    /// Total-fire cap; `None` = unbounded.
    limit: Option<u64>,
}

#[derive(Clone, Copy, Debug, Default)]
struct PointState {
    asks: u64,
    fired: u64,
}

/// A seeded, spec-driven fault injector.
pub struct FaultInjector {
    seed: u64,
    rules: Vec<Rule>,
    state: Mutex<HashMap<String, PointState>>,
}

impl FaultInjector {
    /// Parses `spec` (see the module docs for the grammar) under
    /// `seed`.
    ///
    /// # Errors
    ///
    /// A config error naming the malformed clause.
    pub fn parse(seed: u64, spec: &str) -> TcorResult<Self> {
        let mut rules = Vec::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let Some((point, rest)) = clause.split_once('=') else {
                return Err(TcorError::config(format!(
                    "bad fault clause `{clause}`: expected point=pct[@arg][#limit]"
                )));
            };
            let (rest, limit) = match rest.split_once('#') {
                Some((head, limit)) => {
                    let limit = limit
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| TcorError::config(format!("bad fault limit in `{clause}`")))?;
                    (head, Some(limit))
                }
                None => (rest, None),
            };
            let (pct, arg) = match rest.split_once('@') {
                Some((pct, arg)) => (
                    pct,
                    arg.trim()
                        .parse::<u64>()
                        .map_err(|_| TcorError::config(format!("bad fault arg in `{clause}`")))?,
                ),
                None => (rest, 0),
            };
            let pct = pct
                .trim()
                .parse::<u64>()
                .map_err(|_| TcorError::config(format!("bad fault rate in `{clause}`")))?;
            if pct > 100 {
                return Err(TcorError::config(format!(
                    "fault rate {pct} in `{clause}` exceeds 100"
                )));
            }
            rules.push(Rule {
                point: point.trim().to_string(),
                pct,
                arg,
                limit,
            });
        }
        Ok(FaultInjector {
            seed,
            rules,
            state: Mutex::new(HashMap::new()),
        })
    }

    /// The seed the injector was armed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, PointState>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Asks whether the fault at `point` fires now; `Some(arg)` means
    /// it does, carrying the clause's payload. Each ask advances the
    /// point's deterministic decision stream.
    pub fn fire(&self, point: &str) -> Option<u64> {
        let rule = self.rules.iter().find(|r| r.point == point)?;
        let mut state = self.lock();
        let entry = state.entry(rule.point.clone()).or_default();
        let n = entry.asks;
        entry.asks += 1;
        if rule.limit.is_some_and(|limit| entry.fired >= limit) {
            return None;
        }
        let mut rng = Xoshiro256pp::seed_from_u64(
            self.seed ^ fxhash64(point.as_bytes()) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        if rng.random_range(0..100u64) < rule.pct {
            entry.fired += 1;
            Some(rule.arg)
        } else {
            None
        }
    }

    /// Per-point fire counts, sorted by point name. Points that are
    /// armed but never fired report 0, so an armed process's metrics
    /// always show which faults are live.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let state = self.lock();
        let mut counts: Vec<(String, u64)> = self
            .rules
            .iter()
            .map(|r| (r.point.clone(), state.get(&r.point).map_or(0, |s| s.fired)))
            .collect();
        counts.sort();
        counts.dedup();
        counts
    }

    /// The injected I/O error for a fired point.
    pub fn io_error(&self, point: &str) -> TcorError {
        TcorError::with_source(
            ErrorKind::Io,
            format!("injected fault (seed {}) at {point}", self.seed),
            std::io::Error::other("fault injection"),
        )
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Mutex<Option<Arc<FaultInjector>>> {
    static GLOBAL: OnceLock<Mutex<Option<Arc<FaultInjector>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Arms the process-wide injector. Every [`fire`] call after this
/// consults `injector`'s schedule.
pub fn arm(injector: FaultInjector) {
    *global().lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(injector));
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the process-wide injector; [`fire`] returns to its
/// zero-cost no-op path.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *global().lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether the process-wide injector is armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Asks the process-wide injector about `point`. Disarmed (the
/// default), this is one relaxed atomic load and `None`.
pub fn fire(point: &str) -> Option<u64> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let injector = global()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()?;
    injector.fire(point)
}

/// Per-point fire counts of the process-wide injector; empty when
/// disarmed.
pub fn snapshot() -> Vec<(String, u64)> {
    if !ARMED.load(Ordering::Relaxed) {
        return Vec::new();
    }
    global()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .map(|i| i.snapshot())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_rates_args_and_limits() {
        let inj = FaultInjector::parse(1, "pcache/read=100, serve/drop_conn=25@64#3").unwrap();
        assert_eq!(inj.fire("pcache/read"), Some(0), "always fires at 100%");
        assert_eq!(inj.fire("unarmed/point"), None);
        assert!(FaultInjector::parse(1, "nonsense").is_err());
        assert!(FaultInjector::parse(1, "p=101").is_err());
        assert!(FaultInjector::parse(1, "p=x").is_err());
        assert!(FaultInjector::parse(1, "p=50@y").is_err());
        assert!(FaultInjector::parse(1, "p=50#z").is_err());
        // Empty spec arms nothing but is valid (a quiet injector).
        assert!(FaultInjector::parse(1, "").unwrap().fire("p").is_none());
    }

    #[test]
    fn decision_streams_are_deterministic_per_point() {
        let a = FaultInjector::parse(42, "p/x=30,p/y=30").unwrap();
        let b = FaultInjector::parse(42, "p/x=30,p/y=30").unwrap();
        let xs: Vec<bool> = (0..200).map(|_| a.fire("p/x").is_some()).collect();
        // Interleave differently on the second injector: p/x's stream
        // must not care what p/y consumed.
        let ys: Vec<bool> = (0..200)
            .map(|_| {
                let _ = b.fire("p/y");
                b.fire("p/x").is_some()
            })
            .collect();
        assert_eq!(xs, ys, "per-point streams are independent");
        let c = FaultInjector::parse(43, "p/x=30").unwrap();
        let zs: Vec<bool> = (0..200).map(|_| c.fire("p/x").is_some()).collect();
        assert_ne!(xs, zs, "a different seed reschedules");
    }

    #[test]
    fn limits_cap_total_fires() {
        let inj = FaultInjector::parse(7, "disk=100#4").unwrap();
        let fired = (0..50).filter(|_| inj.fire("disk").is_some()).count();
        assert_eq!(fired, 4);
        assert_eq!(inj.snapshot(), vec![("disk".to_string(), 4)]);
    }

    #[test]
    fn global_injector_arms_fires_and_disarms() {
        // Unique point names: the global is shared with any parallel
        // test in this process.
        assert_eq!(fire("test/global-point"), None, "disarmed is quiet");
        arm(FaultInjector::parse(5, "test/global-point=100#2").unwrap());
        assert!(armed());
        assert_eq!(fire("test/global-point"), Some(0));
        assert_eq!(fire("test/global-point"), Some(0));
        assert_eq!(fire("test/global-point"), None, "limit reached");
        assert_eq!(snapshot(), vec![("test/global-point".to_string(), 2)]);
        disarm();
        assert!(!armed());
        assert!(snapshot().is_empty());
        assert_eq!(fire("test/global-point"), None);
    }
}
