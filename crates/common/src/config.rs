//! Simulation configuration mirroring Table I of the paper.
//!
//! ```text
//! Tech Specs            600 MHz, 1 V, 32 nm
//! Screen Resolution     1960x768
//! Tile Size             32x32
//! Tile Traversal Order  Z-order
//! Main Memory           50-100 cycles, 1 GiB
//! Vertex Cache          64 B/line, 64 KiB, 4-way, 1 cycle
//! Texture Caches (4x)   64 B/line, 64 KiB, 4-way, 1 cycle
//! Tile Cache            64 B/line, 64 KiB, 4-way, 1 cycle
//! L2 Cache              64 B/line, 1 MiB, 8-way, 12 cycles
//! ```

use crate::ids::LINE_SIZE;
use crate::traversal::Traversal;

/// Geometry and latency of one cache structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Ways per set; `0` encodes fully associative.
    pub ways: u32,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheParams {
    /// Creates cache parameters. `ways == 0` means fully associative.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a multiple of the line size, or if a
    /// set-associative geometry does not divide evenly into sets.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: u32, latency: u32) -> Self {
        assert!(line_bytes > 0 && size_bytes >= line_bytes);
        assert_eq!(size_bytes % line_bytes, 0, "capacity must be whole lines");
        if ways > 0 {
            let lines = size_bytes / line_bytes;
            assert_eq!(lines % ways as u64, 0, "lines must divide into sets");
        }
        CacheParams {
            size_bytes,
            line_bytes,
            ways,
            latency,
        }
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets (1 when fully associative).
    pub fn num_sets(&self) -> u64 {
        if self.ways == 0 {
            1
        } else {
            self.num_lines() / self.ways as u64
        }
    }

    /// Effective associativity (all lines when fully associative).
    pub fn effective_ways(&self) -> u64 {
        if self.ways == 0 {
            self.num_lines()
        } else {
            self.ways as u64
        }
    }

    /// True when `ways == 0`.
    pub fn is_fully_associative(&self) -> bool {
        self.ways == 0
    }
}

/// Main-memory model parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemoryParams {
    /// Lowest access latency in cycles (row-buffer hit).
    pub min_latency: u32,
    /// Highest access latency in cycles (bank conflict / precharge).
    pub max_latency: u32,
    /// Capacity in bytes (1 GiB in Table I); only bounds address synthesis.
    pub size_bytes: u64,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            min_latency: 50,
            max_latency: 100,
            size_bytes: 1 << 30,
        }
    }
}

/// How the Tile Cache budget is organized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TileCacheOrg {
    /// The baseline: one unified cache for both PB sections, LRU.
    Unified {
        /// The unified cache geometry.
        cache: CacheParams,
    },
    /// TCOR: a split Primitive List Cache (LRU) + Attribute Cache (OPT).
    /// §V.B: 64 KiB baseline splits as 16 KiB lists + 48 KiB attributes;
    /// 128 KiB splits as 16 KiB + 112 KiB.
    Split {
        /// Primitive List Cache geometry (conventional, LRU).
        list_cache: CacheParams,
        /// Attribute Cache capacity in bytes (Primitive Buffer + Attribute
        /// Buffer share this budget; see `tcor::attribute_cache`).
        attribute_bytes: u64,
        /// Attribute Cache (Primitive Buffer) associativity.
        attribute_ways: u32,
    },
}

impl TileCacheOrg {
    /// Total Tile Cache budget in bytes.
    pub fn total_bytes(&self) -> u64 {
        match *self {
            TileCacheOrg::Unified { cache } => cache.size_bytes,
            TileCacheOrg::Split {
                list_cache,
                attribute_bytes,
                ..
            } => list_cache.size_bytes + attribute_bytes,
        }
    }
}

/// Full GPU simulation configuration (Table I).
#[derive(Clone, Debug, PartialEq)]
pub struct GpuConfig {
    /// Core clock in Hz (600 MHz).
    pub clock_hz: u64,
    /// Supply voltage in volts (1.0 V).
    pub voltage: f64,
    /// Process node in nanometres (32 nm).
    pub tech_nm: u32,
    /// Screen width in pixels.
    pub screen_width: u32,
    /// Screen height in pixels.
    pub screen_height: u32,
    /// Tile edge in pixels.
    pub tile_size: u32,
    /// Tile traversal order of the Tile Fetcher.
    pub traversal: Traversal,
    /// L1 vertex cache.
    pub vertex_cache: CacheParams,
    /// Each of the four L1 texture caches.
    pub texture_cache: CacheParams,
    /// Number of texture caches / fragment processors.
    pub num_texture_caches: u32,
    /// The Tile Cache organization under evaluation.
    pub tile_cache: TileCacheOrg,
    /// Shared L2.
    pub l2: CacheParams,
    /// Main memory model.
    pub memory: MemoryParams,
}

impl GpuConfig {
    /// The paper's baseline configuration: Table I with the unified
    /// 64 KiB 4-way Tile Cache.
    pub fn paper_baseline() -> Self {
        GpuConfig {
            clock_hz: 600_000_000,
            voltage: 1.0,
            tech_nm: 32,
            screen_width: 1960,
            screen_height: 768,
            tile_size: 32,
            traversal: Traversal::ZOrder,
            vertex_cache: CacheParams::new(64 << 10, LINE_SIZE, 4, 1),
            texture_cache: CacheParams::new(64 << 10, LINE_SIZE, 4, 1),
            num_texture_caches: 4,
            tile_cache: TileCacheOrg::Unified {
                cache: CacheParams::new(64 << 10, LINE_SIZE, 4, 1),
            },
            l2: CacheParams::new(1 << 20, LINE_SIZE, 8, 12),
            memory: MemoryParams::default(),
        }
    }

    /// The larger baseline also reported in §V.B: a unified 128 KiB 4-way
    /// Tile Cache.
    pub fn paper_baseline_128k() -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.tile_cache = TileCacheOrg::Unified {
            cache: CacheParams::new(128 << 10, LINE_SIZE, 4, 1),
        };
        cfg
    }

    /// TCOR organization matching the 64 KiB baseline budget:
    /// 16 KiB Primitive List Cache + 48 KiB Attribute Cache (§V.B).
    pub fn paper_tcor() -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.tile_cache = TileCacheOrg::Split {
            list_cache: CacheParams::new(16 << 10, LINE_SIZE, 4, 1),
            attribute_bytes: 48 << 10,
            attribute_ways: 4,
        };
        cfg
    }

    /// TCOR organization matching the 128 KiB budget:
    /// 16 KiB Primitive List Cache + 112 KiB Attribute Cache (§V.B).
    pub fn paper_tcor_128k() -> Self {
        let mut cfg = Self::paper_baseline();
        cfg.tile_cache = TileCacheOrg::Split {
            list_cache: CacheParams::new(16 << 10, LINE_SIZE, 4, 1),
            attribute_bytes: 112 << 10,
            attribute_ways: 4,
        };
        cfg
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_geometry_math() {
        let p = CacheParams::new(64 << 10, 64, 4, 1);
        assert_eq!(p.num_lines(), 1024);
        assert_eq!(p.num_sets(), 256);
        assert_eq!(p.effective_ways(), 4);
        assert!(!p.is_fully_associative());
    }

    #[test]
    fn fully_associative_geometry() {
        let p = CacheParams::new(4096, 64, 0, 1);
        assert_eq!(p.num_sets(), 1);
        assert_eq!(p.effective_ways(), 64);
        assert!(p.is_fully_associative());
    }

    #[test]
    #[should_panic(expected = "whole lines")]
    fn ragged_capacity_panics() {
        CacheParams::new(100, 64, 1, 1);
    }

    #[test]
    fn paper_budgets_are_preserved() {
        assert_eq!(
            GpuConfig::paper_baseline().tile_cache.total_bytes(),
            64 << 10
        );
        assert_eq!(GpuConfig::paper_tcor().tile_cache.total_bytes(), 64 << 10);
        assert_eq!(
            GpuConfig::paper_baseline_128k().tile_cache.total_bytes(),
            128 << 10
        );
        assert_eq!(
            GpuConfig::paper_tcor_128k().tile_cache.total_bytes(),
            128 << 10
        );
    }

    #[test]
    fn table_one_values() {
        let cfg = GpuConfig::paper_baseline();
        assert_eq!(cfg.clock_hz, 600_000_000);
        assert_eq!(cfg.l2.size_bytes, 1 << 20);
        assert_eq!(cfg.l2.ways, 8);
        assert_eq!(cfg.l2.latency, 12);
        assert_eq!(cfg.memory.min_latency, 50);
        assert_eq!(cfg.memory.max_latency, 100);
        assert_eq!(cfg.traversal, Traversal::ZOrder);
    }
}
