//! Access-statistics counters shared by every cache model.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Hit/miss/write-back counters for one cache structure.
///
/// `AccessStats` is a plain accumulator: models bump the counters, the
/// experiment harness reads ratios. It forms a commutative monoid under
/// `+`, so per-benchmark stats can be summed into suite aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Read requests that hit.
    pub read_hits: u64,
    /// Read requests that missed.
    pub read_misses: u64,
    /// Write requests that hit.
    pub write_hits: u64,
    /// Write requests that missed.
    pub write_misses: u64,
    /// Dirty evictions written back to the next level.
    pub writebacks: u64,
    /// Writes bypassed directly to the next level (TCOR §III.C.4).
    pub bypasses: u64,
    /// Dirty lines dropped without write-back because they were dead
    /// (TCOR L2 enhancement, §III.D.2).
    pub dead_drops: u64,
    /// Requests observed at the structure's entry point. Bumped at a code
    /// site *independent* of the hit/miss classification so the audit
    /// layer can check the conservation invariant
    /// `probes == hits() + misses()`; `record_read`/`record_write` never
    /// touch it. Zero means the owning model does not probe-count.
    pub probes: u64,
}

impl AccessStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total read accesses.
    pub fn reads(&self) -> u64 {
        self.read_hits + self.read_misses
    }

    /// Total write accesses.
    pub fn writes(&self) -> u64 {
        self.write_hits + self.write_misses
    }

    /// Total accesses (reads + writes; bypasses are not accesses to *this*
    /// structure and are excluded).
    pub fn accesses(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Miss ratio over all accesses; `0.0` when there were none.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }

    /// Miss ratio over reads only; `0.0` when there were none.
    pub fn read_miss_ratio(&self) -> f64 {
        let total = self.reads();
        if total == 0 {
            0.0
        } else {
            self.read_misses as f64 / total as f64
        }
    }

    /// Records a read with the given outcome.
    pub fn record_read(&mut self, hit: bool) {
        if hit {
            self.read_hits += 1;
        } else {
            self.read_misses += 1;
        }
    }

    /// Records a write with the given outcome.
    pub fn record_write(&mut self, hit: bool) {
        if hit {
            self.write_hits += 1;
        } else {
            self.write_misses += 1;
        }
    }
}

impl Add for AccessStats {
    type Output = AccessStats;

    fn add(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            read_hits: self.read_hits + rhs.read_hits,
            read_misses: self.read_misses + rhs.read_misses,
            write_hits: self.write_hits + rhs.write_hits,
            write_misses: self.write_misses + rhs.write_misses,
            writebacks: self.writebacks + rhs.writebacks,
            bypasses: self.bypasses + rhs.bypasses,
            dead_drops: self.dead_drops + rhs.dead_drops,
            probes: self.probes + rhs.probes,
        }
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: AccessStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for AccessStats {
    fn sum<I: Iterator<Item = AccessStats>>(iter: I) -> Self {
        iter.fold(AccessStats::default(), Add::add)
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc {} (r {}+{}, w {}+{}), miss {:.4}, wb {}, byp {}, dead {}",
            self.accesses(),
            self.read_hits,
            self.read_misses,
            self.write_hits,
            self.write_misses,
            self.miss_ratio(),
            self.writebacks,
            self.bypasses,
            self.dead_drops,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = AccessStats::new();
        for _ in 0..3 {
            s.record_read(true);
        }
        s.record_read(false);
        s.record_write(false);
        assert_eq!(s.reads(), 4);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.accesses(), 5);
        assert_eq!(s.misses(), 2);
        assert!((s.miss_ratio() - 0.4).abs() < 1e-12);
        assert!((s.read_miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = AccessStats::new();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.read_miss_ratio(), 0.0);
    }

    #[test]
    fn sum_is_componentwise() {
        let a = AccessStats {
            read_hits: 1,
            read_misses: 2,
            write_hits: 3,
            write_misses: 4,
            writebacks: 5,
            bypasses: 6,
            dead_drops: 7,
            probes: 3,
        };
        let b = a;
        let c: AccessStats = [a, b].into_iter().sum();
        assert_eq!(c.read_hits, 2);
        assert_eq!(c.dead_drops, 14);
        assert_eq!(c.probes, 6);
        assert_eq!(c.accesses(), 2 * a.accesses());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", AccessStats::new()).is_empty());
    }
}
