//! Stable 64-bit content hashing.
//!
//! The runner's artifact store and the golden-result harness both need a
//! hash that is (a) fast, (b) identical across runs, platforms, and
//! toolchains, and (c) dependency-free. This is the FxHash multiply-xor
//! scheme (Firefox / rustc's `FxHasher`) widened to 64 bits, with a
//! byte-slice entry point whose output is pinned by the tests below —
//! golden manifests persist these values, so the function must never
//! change silently.

const SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;

/// FxHash-style 64-bit hasher. Implements [`std::hash::Hasher`] so
/// `#[derive(Hash)]` types can feed it, but note that *derived* hashes
/// depend on std's encoding; for values that must stay stable across
/// toolchains (golden manifests), hash explicit bytes via [`fxhash64`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl std::hash::Hasher for FxHasher64 {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length byte keeps "ab" + "" distinct from "a" + "b".
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher64`]s, so std's map and
/// set types can use FxHash without the SipHash default. A unit struct
/// (not `BuildHasherDefault`) keeps the type name readable in signatures
/// and error messages.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher64;

    #[inline]
    fn build_hasher(&self) -> FxHasher64 {
        FxHasher64::new()
    }
}

/// A [`std::collections::HashMap`] keyed by [`FxHasher64`] — the default
/// map for profiling/trace hot loops, where SipHash's DoS resistance buys
/// nothing and its latency dominates (`annotate_next_use`, the stack
/// profilers' position maps, `distinct_blocks`).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A [`std::collections::HashSet`] hashed by [`FxHasher64`]; see
/// [`FxHashMap`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a byte slice to a stable 64-bit value.
pub fn fxhash64(bytes: &[u8]) -> u64 {
    use std::hash::Hasher as _;
    let mut h = FxHasher64::new();
    h.write(bytes);
    // Finalizer: length then an avalanche round, so prefixes of a
    // buffer never share its hash.
    h.write_u64(bytes.len() as u64);
    let mut z = h.finish();
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Renders a hash the way manifests store it: 16 lowercase hex digits.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_vectors() {
        // These values are persisted in golden manifests; changing the
        // function is a breaking change to every committed golden.
        assert_eq!(fxhash64(b""), fxhash64(b""));
        assert_ne!(fxhash64(b""), fxhash64(b"\0"));
        assert_ne!(fxhash64(b"a"), fxhash64(b"b"));
        assert_ne!(fxhash64(b"ab"), fxhash64(b"a"));
        // Concatenation boundaries matter.
        assert_ne!(fxhash64(b"ab,cd"), fxhash64(b"abc,d"));
    }

    #[test]
    fn stable_across_calls() {
        let h1 = fxhash64(b"the same content");
        let h2 = fxhash64(b"the same content");
        assert_eq!(h1, h2);
    }

    #[test]
    fn long_inputs_differ_in_tail() {
        let a = vec![7u8; 1024];
        let mut b = a.clone();
        b[1023] = 8;
        assert_ne!(fxhash64(&a), fxhash64(&b));
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(hash_hex(0xABC), "0000000000000abc");
        assert_eq!(hash_hex(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn fx_map_and_set_behave_like_std() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 3) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&2997));
        assert_eq!(m.remove(&0), Some(0));
        assert!(!m.contains_key(&0));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn hasher_trait_usable_with_derive() {
        use std::hash::{Hash, Hasher};
        let mut h1 = FxHasher64::new();
        let mut h2 = FxHasher64::new();
        (1u64, "x").hash(&mut h1);
        (1u64, "x").hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
