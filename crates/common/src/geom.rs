//! Minimal screen-space geometry for the binning substrate.
//!
//! The Polygon List Builder only needs a conservative tile-overlap test, for
//! which the paper's baseline (following Antochi et al. \[2\]) uses primitive
//! bounding boxes. We carry full triangles so the Raster Pipeline model can
//! estimate fragment counts (triangle area), but binning itself uses
//! [`Rect`]s.

use std::fmt;

/// An axis-aligned screen-space rectangle, `x0 <= x1`, `y0 <= y1`
/// (half-open semantics on tile boundaries: touching a boundary exactly
/// does not enter the next tile).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Rect {
    /// Left edge (pixels).
    pub x0: f32,
    /// Top edge (pixels).
    pub y0: f32,
    /// Right edge (pixels).
    pub x1: f32,
    /// Bottom edge (pixels).
    pub y1: f32,
}

impl Rect {
    /// Creates a rectangle, normalizing so that `x0 <= x1` and `y0 <= y1`.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> f32 {
        self.x1 - self.x0
    }

    /// Height in pixels.
    pub fn height(&self) -> f32 {
        self.y1 - self.y0
    }

    /// Area in square pixels.
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Intersects with the screen `[0,w) × [0,h)`. Returns `None` when the
    /// intersection is empty or degenerate to a zero-area sliver entirely
    /// on the far boundary.
    pub fn clamp_to(&self, w: f32, h: f32) -> Option<Rect> {
        let x0 = self.x0.max(0.0);
        let y0 = self.y0.max(0.0);
        let x1 = self.x1.min(w);
        let y1 = self.y1.min(h);
        if x0 >= x1 && !(x0 == x1 && x0 < w) {
            return None;
        }
        if y0 >= y1 && !(y0 == y1 && y0 < h) {
            return None;
        }
        if x1 <= 0.0 || y1 <= 0.0 || x0 >= w || y0 >= h {
            return None;
        }
        Some(Rect { x0, y0, x1, y1 })
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1},{:.1}]x[{:.1},{:.1}]",
            self.x0, self.x1, self.y0, self.y1
        )
    }
}

/// A screen-space triangle: the primitive shape produced by the Geometry
/// Pipeline's primitive assembly.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Tri2 {
    /// Vertex positions in pixels.
    pub v: [(f32, f32); 3],
}

impl Tri2 {
    /// Creates a triangle from three screen-space vertices.
    pub fn new(a: (f32, f32), b: (f32, f32), c: (f32, f32)) -> Self {
        Tri2 { v: [a, b, c] }
    }

    /// Axis-aligned bounding box — the binning footprint.
    pub fn bbox(&self) -> Rect {
        let xs = [self.v[0].0, self.v[1].0, self.v[2].0];
        let ys = [self.v[0].1, self.v[1].1, self.v[2].1];
        Rect {
            x0: xs.iter().copied().fold(f32::INFINITY, f32::min),
            y0: ys.iter().copied().fold(f32::INFINITY, f32::min),
            x1: xs.iter().copied().fold(f32::NEG_INFINITY, f32::max),
            y1: ys.iter().copied().fold(f32::NEG_INFINITY, f32::max),
        }
    }

    /// Signed double area (positive for counter-clockwise winding).
    pub fn double_area(&self) -> f32 {
        let [(ax, ay), (bx, by), (cx, cy)] = self.v;
        (bx - ax) * (cy - ay) - (cx - ax) * (by - ay)
    }

    /// Unsigned area in square pixels — the Raster Pipeline model uses this
    /// as the fragment-count estimate.
    pub fn area(&self) -> f32 {
        self.double_area().abs() * 0.5
    }

    /// Exact triangle/rectangle overlap via the separating-axis theorem —
    /// the accurate tile-overlap test of Antochi et al. (the paper's
    /// reference \[2\]), as opposed to the conservative bounding-box test.
    ///
    /// Degenerate (zero-area) triangles fall back to the bounding-box
    /// test, which is conservative and numerically robust.
    pub fn overlaps_rect(&self, rect: &Rect) -> bool {
        let bb = self.bbox();
        // Axis-aligned axes first (equivalent to the bbox test).
        if bb.x1 < rect.x0 || bb.x0 > rect.x1 || bb.y1 < rect.y0 || bb.y0 > rect.y1 {
            return false;
        }
        if self.double_area().abs() < 1e-6 {
            return true; // degenerate: bbox answer
        }
        // Triangle edge normals.
        let corners = [
            (rect.x0, rect.y0),
            (rect.x1, rect.y0),
            (rect.x0, rect.y1),
            (rect.x1, rect.y1),
        ];
        for i in 0..3 {
            let (px, py) = self.v[i];
            let (qx, qy) = self.v[(i + 1) % 3];
            let (nx, ny) = (py - qy, qx - px);
            let tri_min = self
                .v
                .iter()
                .map(|&(x, y)| nx * x + ny * y)
                .fold(f32::INFINITY, f32::min);
            let tri_max = self
                .v
                .iter()
                .map(|&(x, y)| nx * x + ny * y)
                .fold(f32::NEG_INFINITY, f32::max);
            let rect_min = corners
                .iter()
                .map(|&(x, y)| nx * x + ny * y)
                .fold(f32::INFINITY, f32::min);
            let rect_max = corners
                .iter()
                .map(|&(x, y)| nx * x + ny * y)
                .fold(f32::NEG_INFINITY, f32::max);
            if tri_max < rect_min || tri_min > rect_max {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(10.0, 20.0, 0.0, 5.0);
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (0.0, 5.0, 10.0, 20.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 15.0);
        assert_eq!(r.area(), 150.0);
    }

    #[test]
    fn clamp_inside_is_identity() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.clamp_to(100.0, 100.0), Some(r));
    }

    #[test]
    fn clamp_outside_is_none() {
        assert_eq!(Rect::new(-5.0, -5.0, -1.0, -1.0).clamp_to(10.0, 10.0), None);
        assert_eq!(Rect::new(11.0, 0.0, 20.0, 5.0).clamp_to(10.0, 10.0), None);
    }

    #[test]
    fn clamp_partial_overlap_truncates() {
        let r = Rect::new(-5.0, -5.0, 5.0, 5.0)
            .clamp_to(10.0, 10.0)
            .unwrap();
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (0.0, 0.0, 5.0, 5.0));
    }

    #[test]
    fn triangle_area_and_bbox() {
        let t = Tri2::new((0.0, 0.0), (10.0, 0.0), (0.0, 10.0));
        assert_eq!(t.area(), 50.0);
        let b = t.bbox();
        assert_eq!((b.x0, b.y0, b.x1, b.y1), (0.0, 0.0, 10.0, 10.0));
    }

    #[test]
    fn triangle_area_winding_independent() {
        let ccw = Tri2::new((0.0, 0.0), (10.0, 0.0), (0.0, 10.0));
        let cw = Tri2::new((0.0, 0.0), (0.0, 10.0), (10.0, 0.0));
        assert_eq!(ccw.area(), cw.area());
        assert!(ccw.double_area() * cw.double_area() < 0.0);
    }

    #[test]
    fn degenerate_triangle_has_zero_area() {
        let t = Tri2::new((0.0, 0.0), (5.0, 5.0), (10.0, 10.0));
        assert_eq!(t.area(), 0.0);
    }

    #[test]
    fn exact_overlap_agrees_with_bbox_on_contained_rects() {
        let t = Tri2::new((0.0, 0.0), (100.0, 0.0), (0.0, 100.0));
        assert!(t.overlaps_rect(&Rect::new(10.0, 10.0, 20.0, 20.0)));
        assert!(!t.overlaps_rect(&Rect::new(200.0, 200.0, 210.0, 210.0)));
    }

    #[test]
    fn exact_overlap_rejects_bbox_false_positives() {
        // A thin diagonal triangle: its bbox covers the whole square, but
        // the far corner rect is outside the hypotenuse.
        let t = Tri2::new((0.0, 0.0), (100.0, 0.0), (0.0, 100.0));
        let far_corner = Rect::new(80.0, 80.0, 95.0, 95.0);
        let bb = t.bbox();
        assert!(
            bb.x1 >= far_corner.x0 && bb.y1 >= far_corner.y0,
            "bbox overlaps"
        );
        assert!(!t.overlaps_rect(&far_corner), "SAT must reject it");
    }

    #[test]
    fn exact_overlap_accepts_edge_grazing() {
        let t = Tri2::new((0.0, 0.0), (100.0, 0.0), (0.0, 100.0));
        // Rect whose corner touches the hypotenuse region.
        assert!(t.overlaps_rect(&Rect::new(40.0, 40.0, 60.0, 60.0)));
    }

    #[test]
    fn degenerate_triangle_falls_back_to_bbox() {
        let t = Tri2::new((0.0, 0.0), (5.0, 5.0), (10.0, 10.0));
        assert!(t.overlaps_rect(&Rect::new(0.0, 0.0, 10.0, 10.0)));
        assert!(!t.overlaps_rect(&Rect::new(20.0, 0.0, 30.0, 10.0)));
    }

    #[test]
    fn rect_fully_inside_triangle_overlaps() {
        let t = Tri2::new((0.0, 0.0), (300.0, 0.0), (0.0, 300.0));
        assert!(t.overlaps_rect(&Rect::new(50.0, 50.0, 60.0, 60.0)));
    }

    #[test]
    fn triangle_fully_inside_rect_overlaps() {
        let t = Tri2::new((10.0, 10.0), (20.0, 10.0), (10.0, 20.0));
        assert!(t.overlaps_rect(&Rect::new(0.0, 0.0, 100.0, 100.0)));
    }
}
