//! Strongly-typed identifiers used throughout the simulator.
//!
//! Newtypes keep tile identifiers, traversal ranks, primitive identifiers
//! and byte/block addresses from being mixed up (they are all "just
//! integers" in hardware, and mixing them is the classic simulator bug).

use std::fmt;

/// Cache line / memory block size in bytes, fixed at 64 throughout the
/// paper ("we assume a cache line of 64 bytes", §II.B).
pub const LINE_SIZE: u64 = 64;

/// Identifier of a tile on the screen grid, in **row-major** numbering
/// (`y * tiles_x + x`). Independent of the traversal order.
///
/// The paper reserves 12 bits for tile identifiers (4096 tiles max); the
/// baseline 1960×768 screen with 32×32 tiles has 62×24 = 1488 tiles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TileId(pub u32);

impl TileId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile {}", self.0)
    }
}

/// Position of a tile in the Tile Fetcher's traversal order
/// (0 = first tile processed). This is the quantity stored in a PMD's
/// *OPT Number* field: replacement compares ranks, and "farther in the
/// future" means a larger rank.
///
/// `TileRank` is ordered; the OPT policy evicts the line with the
/// **greatest** rank among unlocked candidates (§III.C.6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TileRank(pub u32);

impl TileRank {
    /// Sentinel for "no further use": larger than every real rank.
    pub const NEVER: TileRank = TileRank(u32::MAX);

    /// Largest rank representable in a stored OPT Number: the paper
    /// allocates 12 bits for it (§III.C), so hardware saturates at 4095.
    /// Ranks at or above this (including [`TileRank::NEVER`]) collapse to
    /// "farthest representable future", which is safe: the grid in Table I
    /// has 1488 tiles, and any rank beyond the screen is equally evictable.
    pub const OPT_MAX: u32 = (1 << 12) - 1;

    /// The raw rank value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }

    /// This rank clamped to the 12-bit storable range — what hardware
    /// actually writes into an OPT Number or PB tag field.
    #[inline]
    pub fn saturated(self) -> TileRank {
        TileRank(self.0.min(Self::OPT_MAX))
    }

    /// True if this rank is the [`TileRank::NEVER`] sentinel.
    #[inline]
    pub fn is_never(self) -> bool {
        self.0 == u32::MAX
    }
}

impl fmt::Debug for TileRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            write!(f, "R∞")
        } else {
            write!(f, "R{}", self.0)
        }
    }
}

/// Identifier of a primitive within a frame, in Polygon List Builder
/// arrival order (0 = first binned).
///
/// In the paper's hardware layout the primitive ID doubles as the address
/// of the primitive's first attribute in PB-Attributes; the simulator keeps
/// the logical index and derives addresses through `tcor-pbuf` layouts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PrimitiveId(pub u32);

impl PrimitiveId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PrimitiveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PrimitiveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "primitive {}", self.0)
    }
}

/// A byte address in the simulated physical address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

impl Address {
    /// The memory block (cache line) containing this byte.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / LINE_SIZE)
    }

    /// Byte offset within the containing block.
    #[inline]
    pub fn block_offset(self) -> u64 {
        self.0 % LINE_SIZE
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(v: u64) -> Self {
        Address(v)
    }
}

/// A memory-block (64-byte cache line) address: the byte address divided by
/// [`LINE_SIZE`]. Caches in `tcor-cache`/`tcor-mem` operate on these.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Byte address of the first byte of this block.
    #[inline]
    pub fn base(self) -> Address {
        Address(self.0 * LINE_SIZE)
    }

    /// The raw block number.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B0x{:x}", self.0)
    }
}

impl fmt::LowerHex for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_block_math() {
        assert_eq!(Address(0).block(), BlockAddr(0));
        assert_eq!(Address(63).block(), BlockAddr(0));
        assert_eq!(Address(64).block(), BlockAddr(1));
        assert_eq!(Address(130).block_offset(), 2);
        assert_eq!(BlockAddr(3).base(), Address(192));
    }

    #[test]
    fn tile_rank_saturates_at_twelve_bits() {
        assert_eq!(TileRank::OPT_MAX, 4095);
        assert_eq!(TileRank(0).saturated(), TileRank(0));
        assert_eq!(TileRank(4095).saturated(), TileRank(4095));
        assert_eq!(TileRank(4096).saturated(), TileRank(4095));
        assert_eq!(TileRank::NEVER.saturated(), TileRank(4095));
    }

    #[test]
    fn tile_rank_ordering_matches_future_distance() {
        let near = TileRank(3);
        let far = TileRank(100);
        assert!(far > near);
        assert!(TileRank::NEVER > far);
        assert!(TileRank::NEVER.is_never());
        assert!(!far.is_never());
    }

    #[test]
    fn debug_formats_are_compact_and_nonempty() {
        assert_eq!(format!("{:?}", TileId(7)), "T7");
        assert_eq!(format!("{:?}", PrimitiveId(9)), "P9");
        assert_eq!(format!("{:?}", TileRank(2)), "R2");
        assert_eq!(format!("{:?}", TileRank::NEVER), "R∞");
        assert_eq!(format!("{:?}", Address(255)), "0xff");
    }

    #[test]
    fn ids_are_hash_and_ord() {
        use std::collections::BTreeSet;
        let set: BTreeSet<TileId> = [TileId(3), TileId(1), TileId(3)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
