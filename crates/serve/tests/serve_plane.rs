//! Serve-plane behavior over real loopback sockets: coalescing, load
//! shedding, deadlines, warm-vs-cold responses, graceful shutdown, and
//! the telemetry stream — all against a stub backend so the tests
//! exercise the daemon, not the simulator.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tcor_runner::Telemetry;
use tcor_serve::{http_request, ApiBody, ApiCall, Backend, ServeConfig};

/// Counts calls per canonical request and sleeps a configurable time,
/// standing in for the simulator.
struct StubBackend {
    delay: Duration,
    calls: Mutex<HashMap<String, u64>>,
}

impl StubBackend {
    fn new(delay: Duration) -> Self {
        StubBackend {
            delay,
            calls: Mutex::new(HashMap::new()),
        }
    }

    fn calls_for(&self, canonical: &str) -> u64 {
        *self.calls.lock().unwrap().get(canonical).unwrap_or(&0)
    }
}

impl Backend for StubBackend {
    fn call(&self, call: &ApiCall) -> tcor_common::TcorResult<ApiBody> {
        *self
            .calls
            .lock()
            .unwrap()
            .entry(call.canonical())
            .or_insert(0) += 1;
        std::thread::sleep(self.delay);
        Ok(ApiBody {
            content_type: "application/json".to_string(),
            body: format!("{{\"request\":\"{}\"}}", call.canonical()),
        })
    }
}

/// Panics on its first call (after holding the flight open long enough
/// for followers to attach), then behaves like [`StubBackend`].
struct PanicOnceBackend {
    delay: Duration,
    panicked: std::sync::atomic::AtomicBool,
}

impl PanicOnceBackend {
    fn new(delay: Duration) -> Self {
        PanicOnceBackend {
            delay,
            panicked: std::sync::atomic::AtomicBool::new(false),
        }
    }
}

impl Backend for PanicOnceBackend {
    fn call(&self, call: &ApiCall) -> tcor_common::TcorResult<ApiBody> {
        std::thread::sleep(self.delay);
        if !self
            .panicked
            .swap(true, std::sync::atomic::Ordering::SeqCst)
        {
            panic!("injected backend panic");
        }
        Ok(ApiBody {
            content_type: "application/json".to_string(),
            body: format!("{{\"request\":\"{}\"}}", call.canonical()),
        })
    }
}

fn config(workers: usize, queue_depth: usize, deadline: Duration) -> ServeConfig {
    ServeConfig {
        port: 0,
        workers,
        queue_depth,
        cache_cap: 32,
        deadline,
        ..ServeConfig::default()
    }
}

fn get(addr: &str, path: &str) -> tcor_serve::HttpReply {
    http_request(addr, "GET", path, None, Duration::from_secs(10)).expect("request")
}

fn metric(metrics_text: &str, path: &str) -> u64 {
    metrics_text
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{path} = ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no metric {path} in:\n{metrics_text}"))
}

#[test]
fn health_and_metrics_answer_inline() {
    let backend = Arc::new(StubBackend::new(Duration::ZERO));
    let server = tcor_serve::start(config(2, 8, Duration::from_secs(5)), backend, None).unwrap();
    let addr = server.addr().to_string();
    assert_eq!(get(&addr, "/health").body, "ok\n");
    let metrics = get(&addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("serve/request_received = 0"));
    assert_eq!(get(&addr, "/no/such/route").status, 404);
    server.stop();
    server.wait();
}

/// N identical concurrent requests run ONE simulation; the rest
/// coalesce onto it and all get the same body.
#[test]
fn identical_concurrent_requests_coalesce_to_one_compute() {
    let backend = Arc::new(StubBackend::new(Duration::from_millis(150)));
    let server = tcor_serve::start(
        config(8, 32, Duration::from_secs(10)),
        Arc::clone(&backend) as Arc<dyn Backend>,
        None,
    )
    .unwrap();
    let addr = server.addr().to_string();
    let bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let reply = get(&addr, "/v1/cell/GTr/base64");
                    assert_eq!(reply.status, 200);
                    reply.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(backend.calls_for("cell/GTr/base64"), 1, "one simulation");
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "one shared body");
    let metrics = server.metrics_text();
    assert_eq!(metric(&metrics, "serve/request_received"), 8);
    assert_eq!(metric(&metrics, "serve/cold_computes"), 1);
    assert_eq!(
        metric(&metrics, "serve/request_coalesced") + metric(&metrics, "serve/cache_warm_hits"),
        7,
        "everyone else rode the flight or the cache it filled"
    );
    server.stop();
    server.wait();
}

/// With one worker and a one-slot queue, a burst must shed: refused
/// requests get 429 with a Retry-After hint and never reach the
/// backend.
#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    let backend = Arc::new(StubBackend::new(Duration::from_millis(300)));
    let server = tcor_serve::start(
        config(1, 1, Duration::from_secs(10)),
        Arc::clone(&backend) as Arc<dyn Backend>,
        None,
    )
    .unwrap();
    let addr = server.addr().to_string();
    let replies: Vec<tcor_serve::HttpReply> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let addr = addr.clone();
                // Distinct keys so nothing coalesces away the pressure.
                s.spawn(move || get(&addr, &format!("/v1/table/fig{i}")))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let statuses: Vec<u16> = replies.iter().map(|r| r.status).collect();
    let shed = statuses.iter().filter(|&&s| s == 429).count();
    let ok = statuses.iter().filter(|&&s| s == 200).count();
    assert!(
        shed > 0,
        "a 12-deep burst into depth-1 must shed: {statuses:?}"
    );
    assert!(ok > 0, "admitted work still completes: {statuses:?}");
    assert_eq!(shed + ok, statuses.len(), "nothing lost: {statuses:?}");
    assert_eq!(
        metric(&server.metrics_text(), "serve/request_shed"),
        shed as u64
    );
    // Every shed reply carried both retry hints: integer seconds for
    // generic clients, the precise ms figure (queue depth × recent
    // service time) for ours. The values are load-dependent; what's
    // invariant is that they exist, parse, and agree on scale.
    for reply in replies.iter().filter(|r| r.status == 429) {
        let secs: u64 = reply
            .header("retry-after")
            .expect("Retry-After on 429")
            .parse()
            .expect("integer Retry-After");
        let ms: u64 = reply
            .header("x-tcor-retry-after-ms")
            .expect("X-Tcor-Retry-After-Ms on 429")
            .parse()
            .expect("integer ms hint");
        assert!(secs >= 1);
        assert!((25..=30_000).contains(&ms));
        assert!(secs == ms.div_ceil(1000).max(1));
    }
    let backend_calls: u64 = (0..12)
        .map(|i| backend.calls_for(&format!("table/fig{i}")))
        .sum();
    assert_eq!(backend_calls, ok as u64, "shed work never ran");
    server.stop();
    server.wait();
}

/// A request that overstays its deadline in the queue is answered 504
/// and its job is never started.
#[test]
fn deadline_expiry_in_queue_aborts_the_job_with_504() {
    let backend = Arc::new(StubBackend::new(Duration::from_millis(400)));
    let server = tcor_serve::start(
        config(1, 8, Duration::from_millis(120)),
        Arc::clone(&backend) as Arc<dyn Backend>,
        None,
    )
    .unwrap();
    let addr = server.addr().to_string();
    // Occupy the single worker well past the victim's deadline.
    let blocker = {
        let addr = addr.clone();
        std::thread::spawn(move || get(&addr, "/v1/table/slow"))
    };
    std::thread::sleep(Duration::from_millis(50));
    let victim = get(&addr, "/v1/cell/GTr/base64");
    assert_eq!(victim.status, 504, "queued past its deadline");
    assert_eq!(
        backend.calls_for("cell/GTr/base64"),
        0,
        "aborted before the job ever started"
    );
    let _ = blocker.join();
    assert_eq!(metric(&server.metrics_text(), "serve/deadline_expired"), 1);
    server.stop();
    server.wait();
}

/// A follower whose leader outlives the follower's deadline gets 504;
/// the leader still completes and fills the cache.
#[test]
fn coalesced_follower_times_out_while_leader_completes() {
    let backend = Arc::new(StubBackend::new(Duration::from_millis(400)));
    let server = tcor_serve::start(
        config(4, 8, Duration::from_millis(150)),
        Arc::clone(&backend) as Arc<dyn Backend>,
        None,
    )
    .unwrap();
    let addr = server.addr().to_string();
    let leader = {
        let addr = addr.clone();
        std::thread::spawn(move || get(&addr, "/v1/cell/SoD/tcor64"))
    };
    std::thread::sleep(Duration::from_millis(50));
    let follower = get(&addr, "/v1/cell/SoD/tcor64");
    assert_eq!(follower.status, 504, "follower deadline < leader runtime");
    // The leader ran over its own deadline check only at *dequeue*; it
    // completes and publishes.
    assert_eq!(leader.join().unwrap().status, 200);
    assert_eq!(backend.calls_for("cell/SoD/tcor64"), 1);
    // The flight's result is cached: an immediate retry is warm.
    let retry = get(&addr, "/v1/cell/SoD/tcor64");
    assert_eq!(retry.status, 200);
    assert_eq!(retry.header("x-tcor-cache"), Some("mem"));
    server.stop();
    server.wait();
}

/// Warm and cold responses are byte-identical bodies; only the cache
/// header distinguishes them.
#[test]
fn warm_response_is_byte_identical_to_cold() {
    let backend = Arc::new(StubBackend::new(Duration::from_millis(30)));
    let server = tcor_serve::start(
        config(2, 8, Duration::from_secs(5)),
        Arc::clone(&backend) as Arc<dyn Backend>,
        None,
    )
    .unwrap();
    let addr = server.addr().to_string();
    let cold = get(&addr, "/v1/misscurve/GTr/lru");
    let warm = get(&addr, "/v1/misscurve/GTr/lru");
    assert_eq!(cold.status, 200);
    assert_eq!(warm.status, 200);
    assert_eq!(cold.body, warm.body, "byte-identical bodies");
    assert_eq!(cold.header("x-tcor-cache"), Some("miss"));
    assert_eq!(warm.header("x-tcor-cache"), Some("mem"));
    assert_eq!(backend.calls_for("misscurve/GTr/lru"), 1);
    let metrics = server.metrics_text();
    assert_eq!(metric(&metrics, "serve/cache_warm_hits"), 1);
    assert_eq!(metric(&metrics, "serve/cache_mem_hits"), 1);
    assert_eq!(metric(&metrics, "serve/cache_disk_hits"), 0);
    assert_eq!(metric(&metrics, "serve/cold_computes"), 1);
    assert_eq!(metric(&metrics, "pcache/mem_hits"), 1);
    server.stop();
    server.wait();
}

/// A daemon restarted over the same `--cache-dir` serves the previous
/// process's results from the disk tier — byte-identical, never
/// touching the backend — and promotes them so the next hit is `mem`.
#[test]
fn restarted_daemon_answers_from_the_disk_tier() {
    let dir = std::env::temp_dir().join(format!("tcor-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let with_disk = |mut cfg: ServeConfig| {
        cfg.cache_dir = Some(dir.clone());
        cfg.cache_disk_bytes = 1 << 20;
        cfg
    };
    let cold_body = {
        let backend = Arc::new(StubBackend::new(Duration::ZERO));
        let server = tcor_serve::start(
            with_disk(config(2, 8, Duration::from_secs(5))),
            backend,
            None,
        )
        .unwrap();
        let addr = server.addr().to_string();
        let cold = get(&addr, "/v1/cell/GTr/base64");
        assert_eq!(cold.status, 200);
        assert_eq!(cold.header("x-tcor-cache"), Some("miss"));
        server.stop();
        server.wait(); // daemon one "dies"
        cold.body
    };
    let backend = Arc::new(StubBackend::new(Duration::ZERO));
    let server = tcor_serve::start(
        with_disk(config(2, 8, Duration::from_secs(5))),
        Arc::clone(&backend) as Arc<dyn Backend>,
        None,
    )
    .unwrap();
    let addr = server.addr().to_string();
    let warm_disk = get(&addr, "/v1/cell/GTr/base64");
    assert_eq!(warm_disk.status, 200);
    assert_eq!(
        warm_disk.header("x-tcor-cache"),
        Some("disk"),
        "first post-restart hit restores from disk"
    );
    assert_eq!(warm_disk.body, cold_body, "byte-identical across restart");
    assert_eq!(backend.calls_for("cell/GTr/base64"), 0, "never recomputed");
    let warm_mem = get(&addr, "/v1/cell/GTr/base64");
    assert_eq!(warm_mem.header("x-tcor-cache"), Some("mem"), "promoted");
    let metrics = server.metrics_text();
    assert_eq!(metric(&metrics, "serve/cache_disk_hits"), 1);
    assert_eq!(metric(&metrics, "serve/cache_mem_hits"), 1);
    assert_eq!(metric(&metrics, "pcache/disk_hits"), 1);
    server.stop();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A leader panic must not cascade to its followers: the panicking
/// request itself answers 500, but every follower re-enters the flight
/// — one re-leads the computation — and is answered 200 with the
/// recomputed body. Regression test for the pre-re-lead behavior where
/// all followers surfaced "leading computation failed".
#[test]
fn followers_relead_after_a_leader_panic() {
    let backend = Arc::new(PanicOnceBackend::new(Duration::from_millis(150)));
    let server = tcor_serve::start(
        config(8, 32, Duration::from_secs(10)),
        backend as Arc<dyn Backend>,
        None,
    )
    .unwrap();
    let addr = server.addr().to_string();
    let replies: Vec<tcor_serve::HttpReply> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || get(&addr, "/v1/cell/GTr/base64"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let failed = replies.iter().filter(|r| r.status == 500).count();
    assert_eq!(failed, 1, "only the panicking leader answers 500");
    let bodies: Vec<&String> = replies
        .iter()
        .filter(|r| r.status == 200)
        .map(|r| &r.body)
        .collect();
    assert_eq!(bodies.len(), 7, "every follower recovered");
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "one shared body");
    let metrics = server.metrics_text();
    assert!(
        metric(&metrics, "serve/flight_retries") >= 1,
        "at least one follower re-entered the abandoned flight"
    );
    server.stop();
    server.wait();
}

/// `POST /admin/shutdown` answers 200, drains, and every thread exits;
/// afterwards the port no longer accepts work.
#[test]
fn admin_shutdown_drains_and_exits() {
    let telemetry = Arc::new(Telemetry::new());
    let backend = Arc::new(StubBackend::new(Duration::from_millis(20)));
    let server = tcor_serve::start(
        config(2, 8, Duration::from_secs(5)),
        Arc::clone(&backend) as Arc<dyn Backend>,
        Some(Arc::clone(&telemetry)),
    )
    .unwrap();
    let addr = server.addr().to_string();
    assert_eq!(get(&addr, "/v1/cell/GTr/base64").status, 200);
    let bye = http_request(
        &addr,
        "POST",
        "/admin/shutdown",
        None,
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(bye.status, 200);
    let spans = server.wait(); // joins accept + workers: must not hang
    assert_eq!(spans.len(), 1, "one API request answered");
    assert_eq!(spans[0].endpoint, "/v1/cell/GTr/base64");
    assert_eq!(spans[0].status, 200);
    // The daemon is really gone.
    let after = http_request(&addr, "GET", "/health", None, Duration::from_millis(500));
    assert!(after.is_err(), "port must be closed after shutdown");
    // The telemetry stream carries the serving timeline events.
    let mut jsonl = Vec::new();
    telemetry.write_jsonl(&mut jsonl).unwrap();
    let jsonl = String::from_utf8(jsonl).unwrap();
    assert!(jsonl.contains("\"event\":\"request_received\""));
    assert!(jsonl.contains("\"event\":\"request_done\""));
    assert!(jsonl.contains("\"source\":\"compute\""));
}

/// ≥32 simultaneous keep-alive connections on one cold key: exactly
/// one simulation runs (singleflight), every body is byte-identical,
/// and a second request down each held connection is a warm inline
/// hit counted as a keep-alive reuse.
#[test]
fn many_keepalive_connections_coalesce_on_one_cold_key() {
    const CLIENTS: usize = 32;
    let backend = Arc::new(StubBackend::new(Duration::from_millis(300)));
    let server = tcor_serve::start(
        config(4, 64, Duration::from_secs(10)),
        Arc::clone(&backend) as Arc<dyn Backend>,
        None,
    )
    .unwrap();
    let addr = server.addr().to_string();
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = tcor_serve::HttpClient::new(&addr, Duration::from_secs(10));
                barrier.wait();
                let cold = client
                    .request("GET", "/v1/cell/GTr/base64", None)
                    .expect("cold request");
                let warm = client
                    .request("GET", "/v1/cell/GTr/base64", None)
                    .expect("warm request on the same connection");
                (cold.body, warm.body, client.is_connected())
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let expected = "{\"request\":\"cell/GTr/base64\"}";
    for (cold, warm, connected) in &results {
        assert_eq!(cold, expected, "cold bodies byte-identical");
        assert_eq!(warm, expected, "warm bodies byte-identical");
        assert!(connected, "connection survived both requests");
    }
    assert_eq!(
        backend.calls_for("cell/GTr/base64"),
        1,
        "one compute for {CLIENTS} connections"
    );
    let metrics = server.metrics_text();
    assert_eq!(metric(&metrics, "serve/cold_computes"), 1);
    assert_eq!(
        metric(&metrics, "serve/request_received"),
        2 * CLIENTS as u64
    );
    assert_eq!(
        metric(&metrics, "serve/request_coalesced") + metric(&metrics, "serve/cache_warm_hits"),
        2 * CLIENTS as u64 - 1,
        "everyone but the leader coalesced or hit warm"
    );
    assert_eq!(metric(&metrics, "serve/conns_accepted"), CLIENTS as u64);
    assert_eq!(
        metric(&metrics, "serve/keepalive_reuses"),
        CLIENTS as u64,
        "each connection served a second request"
    );
    server.stop();
    server.wait();
}

/// A slowloris peer — request head held open forever — is answered 408
/// at the per-request deadline and closed, and meanwhile never blocks
/// the event plane from answering healthy clients.
#[test]
fn slowloris_partial_request_times_out_with_408() {
    use std::io::{Read, Write};
    let backend = Arc::new(StubBackend::new(Duration::ZERO));
    let server =
        tcor_serve::start(config(2, 8, Duration::from_millis(400)), backend, None).unwrap();
    let addr = server.addr().to_string();
    let mut slow = std::net::TcpStream::connect(&addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    slow.write_all(b"GET /v1/cell/GTr/base64 HTTP/1.1\r\nHost: trickle\r\n")
        .unwrap(); // never finishes the head
                   // The held-open connection must not pin the plane.
    for _ in 0..4 {
        assert_eq!(get(&addr, "/health").status, 200);
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut raw = Vec::new();
    slow.read_to_end(&mut raw).unwrap(); // server answers then closes
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 408 "),
        "slowloris answered 408, got: {text}"
    );
    assert!(text.contains("Connection: close"));
    let metrics = server.metrics_text();
    assert!(metric(&metrics, "serve/deadline_expired") >= 1);
    server.stop();
    server.wait();
}

/// Two requests written back-to-back on one connection come back as
/// two in-order responses (HTTP/1.1 pipelining), visible in the
/// pipelined-batch counter.
#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    use std::io::{Read, Write};
    let backend = Arc::new(StubBackend::new(Duration::ZERO));
    let server = tcor_serve::start(config(2, 8, Duration::from_secs(5)), backend, None).unwrap();
    let addr = server.addr().to_string();
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap(); // close after the 2nd reply
    let text = String::from_utf8_lossy(&raw);
    let first = text.find("HTTP/1.1 200").expect("first response");
    let second = text.rfind("HTTP/1.1 200").expect("second response");
    assert!(second > first, "two responses on the wire");
    let (head1, head2) = (&text[..second], &text[second..]);
    assert!(head1.contains("Connection: keep-alive"), "1st keeps alive");
    assert!(head2.contains("Connection: close"), "2nd negotiated close");
    assert!(head1.contains("ok\n"), "health body first");
    assert!(head2.contains("serve/request_done"), "metrics body second");
    let metrics = server.metrics_text();
    assert!(metric(&metrics, "serve/pipelined_batches") >= 1);
    server.stop();
    server.wait();
}

/// Extracts the session id from an open receipt
/// (`{"session":"s…",…}`).
fn stream_session_id(receipt: &str) -> String {
    receipt.split('"').nth(3).expect("session id").to_string()
}

/// The full streaming lifecycle over loopback: open, chunked upload,
/// live snapshot, finish — with the finished curve byte-identical to
/// the offline profiler and the plane's counters advancing.
#[test]
fn stream_session_lifecycle_over_loopback() {
    let backend = Arc::new(StubBackend::new(Duration::ZERO));
    let server = tcor_serve::start(config(2, 8, Duration::from_secs(10)), backend, None).unwrap();
    let addr = server.addr().to_string();
    let post = |path: &str, body: Option<&str>| {
        http_request(&addr, "POST", path, body, Duration::from_secs(10)).expect("request")
    };

    let open = post("/v1/stream", Some("label=GTr"));
    assert_eq!(open.status, 200);
    let id = stream_session_id(&open.body);
    let chunk1 = post(&format!("/v1/stream/{id}/chunk"), Some("R1\nR2\nR3\n"));
    assert_eq!(chunk1.status, 200);
    assert!(chunk1.body.contains("\"accesses\":3"), "{}", chunk1.body);
    // A live snapshot mid-stream is exact for the ingested prefix.
    let live = get(&addr, &format!("/v1/stream/{id}/curve"));
    assert_eq!(live.status, 200);
    assert!(live.body.contains("\"finished\":false"));
    let chunk2 = post(&format!("/v1/stream/{id}/chunk"), Some("R1\nR2\nR9\n"));
    assert_eq!(chunk2.status, 200);
    let done = post(&format!("/v1/stream/{id}/finish?policy=opt"), None);
    assert_eq!(done.status, 200);

    // Byte parity with the whole-trace profiler, same encoder.
    use tcor_cache::profile::OptStackProfiler;
    use tcor_cache::{annotate_next_use, Access};
    let trace: Vec<Access> = [1u64, 2, 3, 1, 2, 9]
        .iter()
        .map(|&b| Access::read(tcor_common::BlockAddr(b)))
        .collect();
    let opt = OptStackProfiler::profile(&trace, &annotate_next_use(&trace));
    let grid = tcor_stream::default_grid();
    let curve: Vec<f64> = grid
        .caps
        .iter()
        .map(|&c| tcor_stream::miss_ratio(opt.misses_at(c), trace.len() as u64))
        .collect();
    let want = tcor_stream::misscurve_json("GTr", "opt", &grid.size_kb, &curve).render() + "\n";
    assert_eq!(done.body, want, "streamed != whole-trace bytes");

    let metrics = server.metrics_text();
    assert_eq!(metric(&metrics, "stream/sessions_opened"), 1);
    assert_eq!(metric(&metrics, "stream/chunks"), 2);
    assert_eq!(metric(&metrics, "stream/accesses"), 6);
    assert_eq!(metric(&metrics, "stream/snapshots"), 2);
    assert_eq!(metric(&metrics, "stream/rejected"), 0);
    server.stop();
    server.wait();
}

/// Typed stream failures cross the wire as their 4xx statuses — and
/// the daemon survives all of them.
#[test]
fn stream_failures_are_typed_4xx_never_5xx() {
    let mut cfg = config(2, 8, Duration::from_secs(10));
    cfg.stream.max_sessions = 1;
    cfg.stream.session_bytes = 64;
    let backend = Arc::new(StubBackend::new(Duration::ZERO));
    let server = tcor_serve::start(cfg, backend, None).unwrap();
    let addr = server.addr().to_string();
    let post = |path: &str, body: Option<&str>| {
        http_request(&addr, "POST", path, body, Duration::from_secs(10)).expect("request")
    };

    // Unknown session -> 404.
    assert_eq!(post("/v1/stream/s99/chunk", Some("R1\n")).status, 404);
    let open = post("/v1/stream", None);
    assert_eq!(open.status, 200);
    let id = stream_session_id(&open.body);
    // Sessions full -> 429.
    assert_eq!(post("/v1/stream", None).status, 429);
    // Malformed chunk -> 400, session intact.
    assert_eq!(
        post(&format!("/v1/stream/{id}/chunk"), Some("zap!\n")).status,
        400
    );
    assert_eq!(
        post(&format!("/v1/stream/{id}/chunk"), Some("R1\n")).status,
        200
    );
    // Byte budget -> 413, session still intact.
    let big = "R1\n".repeat(32);
    assert_eq!(
        post(&format!("/v1/stream/{id}/chunk"), Some(&big)).status,
        413
    );
    // Chunk after finish -> 409.
    assert_eq!(post(&format!("/v1/stream/{id}/finish"), None).status, 200);
    assert_eq!(
        post(&format!("/v1/stream/{id}/chunk"), Some("R2\n")).status,
        409
    );
    // Bad method on a stream route -> 405.
    assert_eq!(get(&addr, &format!("/v1/stream/{id}/chunk")).status, 405);

    let metrics = server.metrics_text();
    assert_eq!(metric(&metrics, "stream/rejected"), 5);
    assert_eq!(metric(&metrics, "serve/errors"), 0, "no 5xx anywhere");
    server.stop();
    server.wait();
}

/// Bodies over a route's limit are refused 413 from the head alone —
/// the daemon answers before (and without) buffering the body.
#[test]
fn oversize_bodies_are_rejected_from_the_head() {
    use std::io::{Read, Write};
    let backend = Arc::new(StubBackend::new(Duration::ZERO));
    let server = tcor_serve::start(config(2, 8, Duration::from_secs(5)), backend, None).unwrap();
    let addr = server.addr().to_string();
    for (path, declared) in [
        ("/v1/stream/s0/chunk", 4 * 1024 * 1024), // over the 1 MiB stream cap
        ("/v1/run", 128 * 1024),                  // over the 64 KiB API cap
    ] {
        let mut sock = std::net::TcpStream::connect(&addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Head only — a server waiting for the body would hang here.
        sock.write_all(
            format!("POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {declared}\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
        let mut reply = String::new();
        sock.read_to_string(&mut reply).unwrap();
        assert!(
            reply.starts_with("HTTP/1.1 413 "),
            "{path}: wanted 413, got {}",
            reply.lines().next().unwrap_or("<empty>")
        );
        assert!(reply.contains("Connection: close"), "poisoned conns close");
    }
    // An admitted stream chunk *under* the cap still works even though
    // it exceeds the API-route cap.
    let open = http_request(&addr, "POST", "/v1/stream", None, Duration::from_secs(10)).unwrap();
    let id = stream_session_id(&open.body);
    let big = "R1\nR2\n".repeat(20_000); // ~120 KiB > 64 KiB API cap
    let reply = http_request(
        &addr,
        "POST",
        &format!("/v1/stream/{id}/chunk"),
        Some(&big),
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(reply.status, 200, "under-cap stream chunk admitted");
    let metrics = server.metrics_text();
    assert_eq!(metric(&metrics, "serve/body_rejected"), 2);
    server.stop();
    server.wait();
}
