//! Decoder-totality fuzzing for HTTP request parsing.
//!
//! `read_request` sits on the network boundary: every byte sequence a
//! peer can send must come back as `Ok` or a typed serve-class error —
//! never a panic, never an unbounded allocation. The fuzz here is
//! seeded (Xoshiro, fixed seed) so a failure reproduces exactly; the
//! corpus is structured mutations of valid requests (which land near
//! the parser's edge cases) plus fully random buffers (which land far
//! from them).

use tcor_common::{ErrorKind, Xoshiro256pp};
use tcor_serve::read_request;

/// Valid requests covering every shape the daemon routes: header-only
/// GETs, a body-carrying POST, and an empty-body POST.
const VALID: &[&str] = &[
    "GET /health HTTP/1.1\r\nHost: localhost\r\n\r\n",
    "GET /v1/cell/GTr/base64 HTTP/1.1\r\nX-Probe: 1\r\nAccept: */*\r\n\r\n",
    "POST /v1/run HTTP/1.1\r\nContent-Length: 16\r\n\r\nexperiment=fig10",
    "POST /admin/shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
];

/// One seeded mutation pass: 1–4 edits, each a truncation, bit flip,
/// byte insertion, or byte removal at a random offset.
fn mutate(rng: &mut Xoshiro256pp, base: &[u8]) -> Vec<u8> {
    let mut buf = base.to_vec();
    let edits = 1 + rng.random_range(0..4u64) as usize;
    for _ in 0..edits {
        match rng.random_range(0..4u64) {
            0 if !buf.is_empty() => {
                let at = rng.random_range(0..buf.len() as u64) as usize;
                buf.truncate(at);
            }
            1 if !buf.is_empty() => {
                let at = rng.random_range(0..buf.len() as u64) as usize;
                buf[at] ^= 1 << rng.random_range(0..8u64);
            }
            2 => {
                let at = rng.random_range(0..buf.len() as u64 + 1) as usize;
                buf.insert(at, rng.random_range(0..256u64) as u8);
            }
            _ if !buf.is_empty() => {
                let at = rng.random_range(0..buf.len() as u64) as usize;
                buf.remove(at);
            }
            _ => {}
        }
    }
    buf
}

#[test]
fn the_valid_corpus_parses_clean() {
    for raw in VALID {
        let req = read_request(raw.as_bytes()).expect("valid corpus request");
        assert!(!req.method.is_empty());
        assert!(req.path.starts_with('/'));
    }
}

#[test]
fn mutated_requests_never_panic_and_fail_typed() {
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let (mut ok, mut err) = (0u64, 0u64);
    for round in 0..2000 {
        let base = VALID[round % VALID.len()].as_bytes();
        let fuzzed = mutate(&mut rng, base);
        match read_request(fuzzed.as_slice()) {
            Ok(_) => ok += 1,
            Err(e) => {
                assert_eq!(
                    e.kind(),
                    ErrorKind::Serve,
                    "parse failures must be serve-class: {e}"
                );
                err += 1;
            }
        }
    }
    // Mutations near valid requests must actually exercise the error
    // paths — and some single-bit header flips should survive parsing.
    assert!(err > 0, "no mutation reached an error path");
    assert!(ok > 0, "no mutation survived parsing (corpus too fragile)");
}

#[test]
fn random_buffers_never_panic() {
    let mut rng = Xoshiro256pp::seed_from_u64(4242);
    for _ in 0..2000 {
        let len = rng.random_range(0..512u64) as usize;
        let buf: Vec<u8> = (0..len)
            .map(|_| rng.random_range(0..256u64) as u8)
            .collect();
        if let Err(e) = read_request(buf.as_slice()) {
            assert_eq!(e.kind(), ErrorKind::Serve);
        }
    }
}

/// The parser's limits hold under adversarial (not random) input: a
/// line that never ends, a header flood, and a declared body larger
/// than the cap are all refused without reading unbounded memory.
#[test]
fn adversarial_inputs_hit_the_declared_limits() {
    let endless_line = vec![b'A'; 1 << 20];
    assert!(read_request(endless_line.as_slice()).is_err());

    let mut flood = String::from("GET / HTTP/1.1\r\n");
    for i in 0..1000 {
        flood.push_str(&format!("X-H{i}: v\r\n"));
    }
    flood.push_str("\r\n");
    assert!(read_request(flood.as_bytes()).is_err());

    let oversize = "POST / HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n";
    assert!(read_request(oversize.as_bytes()).is_err());
}
