//! URL routing and content-addressed request keying.
//!
//! The router maps a parsed request onto either a control route
//! (health, metrics, shutdown) answered inline, or an [`ApiCall`] — a
//! *canonicalized* description of simulator work. Canonicalization is
//! what makes coalescing and caching sound: two requests that mean the
//! same computation (`POST /v1/run` with reordered parameters, or the
//! equivalent `GET /v1/cell/...`) reduce to one canonical string, and
//! its `fxhash64` is the shared cache/singleflight key — the same
//! content-addressing discipline `tcor-runner` uses for artifacts.

use crate::http::{Request, Response, MAX_BODY, STREAM_MAX_BODY};
use tcor_common::fxhash64;

/// Where a request goes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// `GET /health` — liveness probe.
    Health,
    /// `GET /metrics` — text counters.
    Metrics,
    /// `POST /admin/shutdown` — graceful drain.
    Shutdown,
    /// Simulator work, keyed and coalesced.
    Api(ApiCall),
    /// Streaming profile session operation (stateful — never cached
    /// or coalesced).
    Stream(StreamOp),
}

/// One streaming-plane operation, addressed by session id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamOp {
    /// `POST /v1/stream` — open a session; body carries parameters.
    Open {
        /// Raw `key=value` parameter body.
        params: String,
    },
    /// `POST /v1/stream/{id}/chunk` — ingest one trace chunk.
    Chunk {
        /// Session id.
        id: String,
        /// Chunk payload in the `tcor-workloads` chunk line format.
        body: String,
    },
    /// `GET /v1/stream/{id}/curve[?policy=opt|lru]` — live snapshot.
    Curve {
        /// Session id.
        id: String,
        /// Optional single-policy selection.
        policy: Option<String>,
    },
    /// `POST /v1/stream/{id}/finish[?policy=opt|lru]` — finalize.
    Finish {
        /// Session id.
        id: String,
        /// Optional single-policy selection.
        policy: Option<String>,
    },
}

impl StreamOp {
    /// Endpoint label for metrics/telemetry.
    pub fn endpoint(&self) -> &'static str {
        match self {
            StreamOp::Open { .. } => "/v1/stream",
            StreamOp::Chunk { .. } => "/v1/stream/chunk",
            StreamOp::Curve { .. } => "/v1/stream/curve",
            StreamOp::Finish { .. } => "/v1/stream/finish",
        }
    }
}

/// One canonical unit of simulator work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiCall {
    /// Full experiment cell report for (workload alias, config name).
    Cell {
        /// Benchmark alias ("GTr").
        workload: String,
        /// Cell config name ("base64").
        config: String,
    },
    /// Miss curve for (workload alias, replacement policy).
    MissCurve {
        /// Benchmark alias.
        workload: String,
        /// Policy name ("lru", "opt", ...).
        policy: String,
    },
    /// A whole experiment's tables as CSV ("fig10").
    Table {
        /// Experiment id.
        experiment: String,
    },
    /// Ad-hoc run described by sorted `key=value` parameters.
    Run {
        /// Parameters, sorted by key (canonical form).
        params: Vec<(String, String)>,
    },
}

impl ApiCall {
    /// The canonical string: equal strings ⇔ equal computations.
    pub fn canonical(&self) -> String {
        match self {
            ApiCall::Cell { workload, config } => format!("cell/{workload}/{config}"),
            ApiCall::MissCurve { workload, policy } => format!("misscurve/{workload}/{policy}"),
            ApiCall::Table { experiment } => format!("table/{experiment}"),
            ApiCall::Run { params } => {
                let kv: Vec<String> = params.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("run?{}", kv.join("&"))
            }
        }
    }

    /// Content-addressed key shared by the response cache and the
    /// singleflight map.
    pub fn cache_key(&self) -> u64 {
        fxhash64(self.canonical().as_bytes())
    }

    /// Endpoint label for metrics/telemetry ("/v1/cell", ...).
    pub fn endpoint(&self) -> &'static str {
        match self {
            ApiCall::Cell { .. } => "/v1/cell",
            ApiCall::MissCurve { .. } => "/v1/misscurve",
            ApiCall::Table { .. } => "/v1/table",
            ApiCall::Run { .. } => "/v1/run",
        }
    }
}

fn parse_params(body: &str) -> Result<Vec<(String, String)>, Response> {
    let mut params = Vec::new();
    for pair in body.split(['&', '\n']) {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let Some((k, v)) = pair.split_once('=') else {
            return Err(Response::text(
                400,
                format!("bad parameter `{pair}`: expected key=value\n"),
            ));
        };
        params.push((k.trim().to_string(), v.trim().to_string()));
    }
    if params.is_empty() {
        return Err(Response::text(
            400,
            "empty run request: POST key=value pairs (`experiment=fig10` or \
             `workload=GTr&config=base64`)\n",
        ));
    }
    params.sort();
    params.dedup();
    Ok(params)
}

/// Parses an optional `policy=...` query (the only query any route
/// accepts; anything else fails loudly instead of being ignored).
fn policy_param(query: Option<&str>) -> Result<Option<String>, Response> {
    let Some(query) = query.filter(|q| !q.is_empty()) else {
        return Ok(None);
    };
    match query.split_once('=') {
        Some(("policy", value)) if !value.is_empty() && !value.contains('&') => {
            Ok(Some(value.to_string()))
        }
        _ => Err(Response::text(
            400,
            format!("bad query `{query}`: expected policy=opt|lru\n"),
        )),
    }
}

/// The request body size this route accepts, decided from the head
/// alone (before any body bytes are buffered): the streaming chunk
/// ingest path gets [`STREAM_MAX_BODY`], everything else [`MAX_BODY`].
pub fn body_limit(method: &str, path: &str) -> usize {
    let path = path.split('?').next().unwrap_or(path);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["v1", "stream", _, "chunk"] if method == "POST" => STREAM_MAX_BODY,
        _ => MAX_BODY,
    }
}

/// Routes a request, or produces the error response (404 unknown path,
/// 405 wrong method, 400 malformed run body) to send instead.
#[allow(clippy::result_large_err)]
pub fn route(req: &Request) -> Result<Route, Response> {
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (req.path.as_str(), None),
    };
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let get = req.method == "GET";
    let post = req.method == "POST";
    match segments.as_slice() {
        ["health"] if get => Ok(Route::Health),
        ["metrics"] if get => Ok(Route::Metrics),
        ["admin", "shutdown"] if post => Ok(Route::Shutdown),
        ["v1", "cell", workload, config] if get => Ok(Route::Api(ApiCall::Cell {
            workload: (*workload).to_string(),
            config: (*config).to_string(),
        })),
        ["v1", "misscurve", workload, policy] if get => Ok(Route::Api(ApiCall::MissCurve {
            workload: (*workload).to_string(),
            policy: (*policy).to_string(),
        })),
        ["v1", "table", experiment] if get => Ok(Route::Api(ApiCall::Table {
            experiment: (*experiment).to_string(),
        })),
        ["v1", "run"] if post => Ok(Route::Api(ApiCall::Run {
            params: parse_params(&req.body)?,
        })),
        ["v1", "stream"] if post => Ok(Route::Stream(StreamOp::Open {
            params: req.body.clone(),
        })),
        ["v1", "stream", id, "chunk"] if post => Ok(Route::Stream(StreamOp::Chunk {
            id: (*id).to_string(),
            body: req.body.clone(),
        })),
        ["v1", "stream", id, "curve"] if get => Ok(Route::Stream(StreamOp::Curve {
            id: (*id).to_string(),
            policy: policy_param(query)?,
        })),
        ["v1", "stream", id, "finish"] if post => Ok(Route::Stream(StreamOp::Finish {
            id: (*id).to_string(),
            policy: policy_param(query)?,
        })),
        ["health" | "metrics"] | ["admin", "shutdown"] | ["v1", "run"] | ["v1", "stream"] => {
            Err(Response::text(
                405,
                format!("method {} not allowed on {}\n", req.method, req.path),
            ))
        }
        ["v1", "stream", _, "chunk" | "curve" | "finish"] => Err(Response::text(
            405,
            format!("method {} not allowed on {}\n", req.method, req.path),
        )),
        ["v1", "cell" | "misscurve", ..] | ["v1", "table", ..] if !get => Err(Response::text(
            405,
            format!("method {} not allowed on {}\n", req.method, req.path),
        )),
        _ => Err(Response::text(404, format!("no route for {}\n", req.path))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            version: "HTTP/1.1".to_string(),
            headers: Vec::new(),
            body: body.to_string(),
        }
    }

    #[test]
    fn routes_the_surface() {
        assert_eq!(route(&req("GET", "/health", "")), Ok(Route::Health));
        assert_eq!(route(&req("GET", "/metrics", "")), Ok(Route::Metrics));
        assert_eq!(
            route(&req("POST", "/admin/shutdown", "")),
            Ok(Route::Shutdown)
        );
        assert_eq!(
            route(&req("GET", "/v1/cell/GTr/base64", "")),
            Ok(Route::Api(ApiCall::Cell {
                workload: "GTr".into(),
                config: "base64".into()
            }))
        );
        assert_eq!(
            route(&req("GET", "/v1/misscurve/SoD/lru", "")),
            Ok(Route::Api(ApiCall::MissCurve {
                workload: "SoD".into(),
                policy: "lru".into()
            }))
        );
        assert_eq!(
            route(&req("GET", "/v1/table/fig10", "")),
            Ok(Route::Api(ApiCall::Table {
                experiment: "fig10".into()
            }))
        );
    }

    #[test]
    fn unknown_is_404_and_wrong_method_is_405() {
        assert_eq!(route(&req("GET", "/nope", "")).unwrap_err().status, 404);
        assert_eq!(
            route(&req("GET", "/v1/cell/GTr", "")).unwrap_err().status,
            404
        );
        assert_eq!(route(&req("POST", "/health", "")).unwrap_err().status, 405);
        assert_eq!(
            route(&req("DELETE", "/v1/table/fig10", ""))
                .unwrap_err()
                .status,
            405
        );
        assert_eq!(route(&req("GET", "/v1/run", "")).unwrap_err().status, 405);
    }

    #[test]
    fn run_params_canonicalize_order() {
        let a = route(&req("POST", "/v1/run", "workload=GTr&config=base64")).unwrap();
        let b = route(&req("POST", "/v1/run", "config=base64\nworkload=GTr")).unwrap();
        assert_eq!(a, b);
        let (Route::Api(a), Route::Api(b)) = (a, b) else {
            panic!("api routes")
        };
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.canonical(), "run?config=base64&workload=GTr");
    }

    #[test]
    fn equivalent_calls_share_keys_and_distinct_calls_do_not() {
        let cell = ApiCall::Cell {
            workload: "GTr".into(),
            config: "base64".into(),
        };
        let same = ApiCall::Cell {
            workload: "GTr".into(),
            config: "base64".into(),
        };
        let other = ApiCall::Cell {
            workload: "GTr".into(),
            config: "tcor64".into(),
        };
        assert_eq!(cell.cache_key(), same.cache_key());
        assert_ne!(cell.cache_key(), other.cache_key());
        assert_eq!(cell.endpoint(), "/v1/cell");
    }

    #[test]
    fn routes_the_stream_surface() {
        assert_eq!(
            route(&req("POST", "/v1/stream", "label=GTr")),
            Ok(Route::Stream(StreamOp::Open {
                params: "label=GTr".into()
            }))
        );
        assert_eq!(
            route(&req("POST", "/v1/stream/s00000000/chunk", "R1\n")),
            Ok(Route::Stream(StreamOp::Chunk {
                id: "s00000000".into(),
                body: "R1\n".into()
            }))
        );
        assert_eq!(
            route(&req("GET", "/v1/stream/s0/curve", "")),
            Ok(Route::Stream(StreamOp::Curve {
                id: "s0".into(),
                policy: None
            }))
        );
        assert_eq!(
            route(&req("GET", "/v1/stream/s0/curve?policy=opt", "")),
            Ok(Route::Stream(StreamOp::Curve {
                id: "s0".into(),
                policy: Some("opt".into())
            }))
        );
        assert_eq!(
            route(&req("POST", "/v1/stream/s0/finish?policy=lru", "")),
            Ok(Route::Stream(StreamOp::Finish {
                id: "s0".into(),
                policy: Some("lru".into())
            }))
        );
        // Wrong methods and bad queries fail loudly.
        assert_eq!(
            route(&req("GET", "/v1/stream", "")).unwrap_err().status,
            405
        );
        assert_eq!(
            route(&req("GET", "/v1/stream/s0/chunk", ""))
                .unwrap_err()
                .status,
            405
        );
        assert_eq!(
            route(&req("POST", "/v1/stream/s0/curve", ""))
                .unwrap_err()
                .status,
            405
        );
        assert_eq!(
            route(&req("GET", "/v1/stream/s0/curve?bogus=1", ""))
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn body_limit_is_per_route() {
        assert_eq!(body_limit("POST", "/v1/stream/s0/chunk"), STREAM_MAX_BODY);
        assert_eq!(body_limit("GET", "/v1/stream/s0/chunk"), MAX_BODY);
        assert_eq!(body_limit("POST", "/v1/run"), MAX_BODY);
        assert_eq!(body_limit("POST", "/v1/stream"), MAX_BODY);
    }

    #[test]
    fn malformed_run_body_is_400() {
        assert_eq!(route(&req("POST", "/v1/run", "")).unwrap_err().status, 400);
        assert_eq!(
            route(&req("POST", "/v1/run", "nonsense"))
                .unwrap_err()
                .status,
            400
        );
    }
}
