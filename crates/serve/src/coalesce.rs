//! Singleflight: coalesce identical in-flight requests onto one
//! computation.
//!
//! The first caller to [`Singleflight::join`] a key becomes the
//! *leader* and owns the computation; every concurrent caller with the
//! same key becomes a *follower* that waits for the leader's value
//! instead of redoing the work — TCOR's never-redundant-work thesis
//! applied to the request plane. The leader's [`LeaderToken`] is a
//! drop guard: if the leader panics (or otherwise exits without
//! [`finish`](LeaderToken::finish)ing), the flight is marked abandoned
//! and every follower is woken with [`Waited::Abandoned`] rather than
//! hanging — mirroring the partial-entry recovery in
//! `tcor_runner::ArtifactStore`.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

enum FlightState<T> {
    Pending,
    Done(T),
    Abandoned,
}

struct Flight<T> {
    state: Mutex<FlightState<T>>,
    settled: Condvar,
}

impl<T> Flight<T> {
    fn lock(&self) -> MutexGuard<'_, FlightState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The in-flight map. `T` is the flight's result; it is cloned to each
/// follower, so use something cheap ([`Arc`]-wrapped).
pub struct Singleflight<T: Clone> {
    flights: Mutex<HashMap<u64, Arc<Flight<T>>>>,
}

impl<T: Clone> Default for Singleflight<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// What [`Singleflight::join`] made of the caller.
pub enum Join<'a, T: Clone> {
    /// First in: compute, then [`LeaderToken::finish`].
    Leader(LeaderToken<'a, T>),
    /// Someone is already computing: [`FollowerHandle::wait`].
    Follower(FollowerHandle<T>),
}

/// Outcome of a follower's wait.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Waited<T> {
    /// The leader finished; here is its (cloned) result.
    Done(T),
    /// The leader vanished without publishing (panic) — retry or fail.
    Abandoned,
    /// The caller's deadline expired first; the flight continues.
    TimedOut,
}

impl<T: Clone> Singleflight<T> {
    /// An empty in-flight map.
    pub fn new() -> Self {
        Singleflight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, Arc<Flight<T>>>> {
        self.flights.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// everyone else a follower of that leader's flight.
    pub fn join(&self, key: u64) -> Join<'_, T> {
        let mut flights = self.lock();
        if let Some(flight) = flights.get(&key) {
            return Join::Follower(FollowerHandle {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            settled: Condvar::new(),
        });
        flights.insert(key, Arc::clone(&flight));
        Join::Leader(LeaderToken {
            owner: self,
            key,
            flight,
            finished: false,
        })
    }

    /// Number of in-flight keys (racy; for metrics only).
    pub fn in_flight(&self) -> usize {
        self.lock().len()
    }

    fn settle(&self, key: u64, flight: &Flight<T>, state: FlightState<T>) {
        // Remove from the map first: a new request for the key after
        // settling starts a fresh flight instead of reading stale state.
        self.lock().remove(&key);
        *flight.lock() = state;
        flight.settled.notify_all();
    }
}

/// Leadership of one flight. Publish with [`finish`](Self::finish);
/// dropping without finishing abandons the flight (panic path).
pub struct LeaderToken<'a, T: Clone> {
    owner: &'a Singleflight<T>,
    key: u64,
    flight: Arc<Flight<T>>,
    finished: bool,
}

impl<T: Clone> LeaderToken<'_, T> {
    /// Publishes the result to every follower and retires the flight.
    pub fn finish(mut self, value: T) {
        self.finished = true;
        self.owner
            .settle(self.key, &self.flight, FlightState::Done(value));
    }
}

impl<T: Clone> Drop for LeaderToken<'_, T> {
    fn drop(&mut self) {
        if !self.finished {
            self.owner
                .settle(self.key, &self.flight, FlightState::Abandoned);
        }
    }
}

/// A follower's handle on someone else's computation.
pub struct FollowerHandle<T: Clone> {
    flight: Arc<Flight<T>>,
}

impl<T: Clone> FollowerHandle<T> {
    /// Waits for the flight to settle, up to `timeout` (`None` = no
    /// limit). On [`Waited::TimedOut`] the flight itself keeps running
    /// — only this follower gives up.
    pub fn wait(self, timeout: Option<Duration>) -> Waited<T> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.flight.lock();
        loop {
            match &*state {
                FlightState::Done(v) => return Waited::Done(v.clone()),
                FlightState::Abandoned => return Waited::Abandoned,
                FlightState::Pending => match deadline {
                    None => {
                        state = self
                            .flight
                            .settled
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Waited::TimedOut;
                        }
                        let (guard, _) = self
                            .flight
                            .settled
                            .wait_timeout(state, deadline - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        state = guard;
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn leader_computes_followers_share() {
        let sf: Singleflight<Arc<String>> = Singleflight::new();
        let computes = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| match sf.join(1) {
                    Join::Leader(token) => {
                        computes.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(15));
                        token.finish(Arc::new("value".to_string()));
                    }
                    Join::Follower(h) => {
                        let Waited::Done(v) = h.wait(None) else {
                            panic!("leader must publish")
                        };
                        assert_eq!(*v, "value");
                    }
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1);
        assert_eq!(sf.in_flight(), 0, "flight retired after finish");
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let sf: Singleflight<u32> = Singleflight::new();
        let Join::Leader(a) = sf.join(1) else {
            panic!("first join leads")
        };
        let Join::Leader(b) = sf.join(2) else {
            panic!("distinct key also leads")
        };
        assert_eq!(sf.in_flight(), 2);
        a.finish(10);
        b.finish(20);
        // Both retired: a re-join leads again.
        assert!(matches!(sf.join(1), Join::Leader(_)));
    }

    #[test]
    fn abandoned_leader_wakes_followers() {
        let sf: Singleflight<u32> = Singleflight::new();
        std::thread::scope(|s| {
            let Join::Leader(token) = sf.join(9) else {
                panic!("leads")
            };
            let follower = {
                let Join::Follower(h) = sf.join(9) else {
                    panic!("follows")
                };
                s.spawn(move || h.wait(None))
            };
            drop(token); // leader "panics"
            assert_eq!(follower.join().unwrap(), Waited::Abandoned);
        });
        // The key is free again for a clean retry.
        assert!(matches!(sf.join(9), Join::Leader(_)));
    }

    #[test]
    fn follower_timeout_leaves_flight_running() {
        let sf: Singleflight<u32> = Singleflight::new();
        let Join::Leader(token) = sf.join(5) else {
            panic!("leads")
        };
        let Join::Follower(h) = sf.join(5) else {
            panic!("follows")
        };
        assert_eq!(h.wait(Some(Duration::from_millis(5))), Waited::TimedOut);
        // The leader can still publish to later followers.
        let Join::Follower(late) = sf.join(5) else {
            panic!("still in flight")
        };
        token.finish(7);
        assert_eq!(late.wait(None), Waited::Done(7));
    }
}
