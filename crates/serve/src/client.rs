//! Blocking loopback HTTP client: CI probe and loadgen substrate.
//!
//! One request per connection, mirroring the server's
//! `Connection: close` contract: write the request, read to EOF, parse.
//! Used by `tcor-sim serve-req` (the ci.sh smoke probe) and
//! `tcor-sim bench-serve` (the deterministic loadgen).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use tcor_common::{ErrorKind, TcorError, TcorResult};

/// A parsed response.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Lowercased header names with values.
    pub headers: Vec<(String, String)>,
    /// Response body bytes, as a string.
    pub body: String,
}

impl HttpReply {
    /// First value of the (case-insensitively named) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one `method path` request to `addr` ("127.0.0.1:8080") and
/// reads the full response.
///
/// # Errors
///
/// Serve-class errors for connect/transport failures, timeout expiry,
/// or an unparseable response.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> TcorResult<HttpReply> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| TcorError::with_source(ErrorKind::Serve, format!("connecting {addr}"), e))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| TcorError::with_source(ErrorKind::Serve, "setting socket timeouts", e))?;
    let mut stream = stream;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| TcorError::with_source(ErrorKind::Serve, "writing request", e))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| TcorError::with_source(ErrorKind::Serve, "reading response", e))?;
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> TcorResult<HttpReply> {
    let text = std::str::from_utf8(raw).map_err(|_| TcorError::serve("response is not UTF-8"))?;
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(TcorError::serve("response has no header/body separator"));
    };
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| TcorError::serve(format!("bad status line `{status_line}`")))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(HttpReply {
        status,
        headers,
        body: body.to_string(),
    })
}

/// The `p`-th percentile (0–100) of `samples`, by nearest-rank on a
/// sorted copy. Returns 0.0 for an empty slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nX-Tcor-Cache: hit\r\n\r\nok\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-tcor-cache"), Some("hit"));
        assert_eq!(reply.body, "ok\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&s, 50.0), 5.0);
        assert_eq!(percentile(&s, 95.0), 10.0);
        assert_eq!(percentile(&s, 100.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
    }
}
